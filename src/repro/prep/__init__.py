"""Data integration, cleaning, and preparation primitives (paper section 3.2).

Vectorised native kernels behind the DML builtins ``transformencode`` /
``transformapply`` / ``detectSchema``; higher-level cleaning and preparation
(imputation, outlier handling, scaling, winsorisation) is implemented as
DML-bodied builtins on top (see ``repro/builtins/scripts/``).  Transform
metadata is returned as a frame, keeping the system stateless: rules and
pre-trained transformations travel as data (paper's key design choice).
"""

from repro.prep.transform import TransformSpec, transform_apply, transform_encode
from repro.prep.schema import detect_schema

__all__ = ["TransformSpec", "detect_schema", "transform_apply", "transform_encode"]
