"""Schema detection for raw frames (paper section 3.2).

``detect_schema`` inspects string-typed frame columns and infers the
tightest value type (boolean < int < double < string), returned as a
1 x ncol frame of type names — the shape SystemDS' ``detectSchema``
builtin uses, so the result can drive ``applySchema``-style casts.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Frame
from repro.types import ValueType

_TYPE_NAMES = {
    ValueType.BOOLEAN: "BOOLEAN",
    ValueType.INT32: "INT32",
    ValueType.INT64: "INT64",
    ValueType.FP32: "FP32",
    ValueType.FP64: "FP64",
    ValueType.STRING: "STRING",
}


def _infer_string_column(column: np.ndarray) -> ValueType:
    is_bool = True
    is_int = True
    is_float = True
    for value in column:
        text = str(value).strip()
        if text == "":
            continue
        if text in ("TRUE", "FALSE", "true", "false"):
            is_int = is_float = False
            continue
        is_bool = False
        try:
            number = float(text)
        except ValueError:
            return ValueType.STRING
        if not number.is_integer() or "." in text or "e" in text.lower():
            is_int = False
    if is_bool:
        return ValueType.BOOLEAN
    if is_int:
        return ValueType.INT64
    if is_float:
        return ValueType.FP64
    return ValueType.STRING


def detect_schema(frame: Frame) -> Frame:
    """The inferred schema of a frame as a 1 x ncol frame of type names."""
    detected = []
    for column, declared in zip(frame.columns, frame.schema):
        if declared == ValueType.STRING:
            detected.append(_infer_string_column(column))
        else:
            detected.append(declared)
    names = [_TYPE_NAMES[vt] for vt in detected]
    return Frame(
        [np.asarray([name], dtype=object) for name in names],
        [ValueType.STRING] * len(names),
        list(frame.names),
    )


def apply_schema(frame: Frame, schema_frame: Frame) -> Frame:
    """Cast a frame's columns to the types named in a detectSchema result."""
    reverse = {name: vt for vt, name in _TYPE_NAMES.items()}
    columns = []
    schema = []
    for j, column in enumerate(frame.columns):
        type_name = str(schema_frame.get(0, j)).upper()
        vt = reverse.get(type_name)
        if vt is None:
            raise ValueError(f"unknown schema type name {type_name!r}")
        if vt == ValueType.BOOLEAN:
            converted = np.asarray(
                [str(v).strip().lower() == "true" for v in column]
            )
        elif vt == ValueType.STRING:
            converted = column.astype(object)
        else:
            converted = np.asarray([float(str(v)) for v in column]).astype(vt.numpy_dtype)
        columns.append(converted)
        schema.append(vt)
    return Frame(columns, schema, list(frame.names))
