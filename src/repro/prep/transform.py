"""Feature transformations: recode, dummy-code, binning, feature hashing.

``transform_encode`` fits the transformations declared in a JSON spec on a
frame and returns (encoded matrix, metadata frame); ``transform_apply``
re-applies fitted metadata to new data — training/serving consistency with
the metadata travelling as a frame, not hidden state.

Spec format (a JSON object, SystemDS-style)::

    {
      "recode":    ["city"],
      "dummycode": ["city"],
      "bin":   [{"name": "age", "method": "equi-width", "numbins": 5}],
      "hash":  [{"name": "domain", "num_features": 64}]
    }

Unlisted numeric columns pass through unchanged; unlisted string columns
are an error (no silent coercion).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.tensor import BasicTensorBlock, Frame
from repro.types import ValueType


class TransformSpec:
    """Parsed transformation specification."""

    def __init__(self, recode: List[str], dummycode: List[str],
                 bins: List[dict], hashes: List[dict]):
        self.recode = list(recode)
        self.dummycode = list(dummycode)
        self.bins = list(bins)
        self.hashes = list(hashes)

    @classmethod
    def parse(cls, text: str) -> "TransformSpec":
        if not text.strip():
            return cls([], [], [], [])
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed transform spec: {exc}") from exc
        return cls(
            raw.get("recode", []),
            raw.get("dummycode", []),
            raw.get("bin", []),
            raw.get("hash", []),
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "recode": self.recode,
                "dummycode": self.dummycode,
                "bin": self.bins,
                "hash": self.hashes,
            }
        )


def transform_encode(frame: Frame, spec_text: str) -> Tuple[BasicTensorBlock, Frame]:
    """Fit and apply a transform spec; returns (matrix, metadata frame)."""
    spec = TransformSpec.parse(spec_text)
    meta: Dict[str, dict] = {"spec": json.loads(spec.to_json()), "columns": {}}
    columns, names = _encode_columns(frame, spec, meta, fit=True)
    matrix = BasicTensorBlock.from_numpy(np.column_stack(columns)) if columns else \
        BasicTensorBlock.from_numpy(np.zeros((frame.num_rows, 0)))
    meta_frame = _meta_to_frame(meta)
    return matrix, meta_frame


def transform_apply(frame: Frame, meta_frame: Frame, spec_text: str = "") -> BasicTensorBlock:
    """Apply previously fitted transform metadata to new data."""
    meta = _meta_from_frame(meta_frame)
    spec = TransformSpec.parse(json.dumps(meta["spec"]))
    columns, __ = _encode_columns(frame, spec, meta, fit=False)
    if not columns:
        return BasicTensorBlock.from_numpy(np.zeros((frame.num_rows, 0)))
    return BasicTensorBlock.from_numpy(np.column_stack(columns))


# ---------------------------------------------------------------------------
# encoding engine
# ---------------------------------------------------------------------------


def _encode_columns(frame: Frame, spec: TransformSpec, meta: dict, fit: bool):
    bin_specs = {entry["name"]: entry for entry in spec.bins}
    hash_specs = {entry["name"]: entry for entry in spec.hashes}
    dummy = set(spec.dummycode)
    recode = set(spec.recode) | dummy  # dummycode implies recode first
    outputs: List[np.ndarray] = []
    out_names: List[str] = []
    for name, vt in zip(frame.names, frame.schema):
        column = frame.column(name)
        if name in hash_specs:
            encoded = _hash_encode(column, hash_specs[name]["num_features"])
            outputs.append(encoded)
            out_names.extend(f"{name}_h{j}" for j in range(encoded.shape[1]))
        elif name in recode:
            codes = _recode(column, name, meta, fit)
            if name in dummy:
                encoded = _dummy_encode(codes, name, meta, fit)
                outputs.append(encoded)
                out_names.extend(f"{name}_{j + 1}" for j in range(encoded.shape[1]))
            else:
                outputs.append(codes.reshape(-1, 1).astype(np.float64))
                out_names.append(name)
        elif name in bin_specs:
            binned = _bin(column.astype(np.float64), name, bin_specs[name], meta, fit)
            outputs.append(binned.reshape(-1, 1))
            out_names.append(name)
        elif vt == ValueType.STRING:
            raise ValidationError(
                f"string column {name!r} has no transform; add it to recode/hash"
            )
        else:
            outputs.append(column.astype(np.float64).reshape(-1, 1))
            out_names.append(name)
    return outputs, out_names


def _recode(column: np.ndarray, name: str, meta: dict, fit: bool) -> np.ndarray:
    """Map distinct values to 1-based dense codes."""
    if fit:
        distinct = sorted({str(v) for v in column})
        mapping = {value: code + 1 for code, value in enumerate(distinct)}
        meta["columns"].setdefault(name, {})["recode"] = mapping
    else:
        mapping = meta["columns"].get(name, {}).get("recode")
        if mapping is None:
            raise ValidationError(f"no fitted recode map for column {name!r}")
    codes = np.zeros(len(column), dtype=np.int64)
    for i, value in enumerate(column):
        code = mapping.get(str(value))
        if code is None:
            code = 0  # unseen category
        codes[i] = code
    return codes


def _dummy_encode(codes: np.ndarray, name: str, meta: dict, fit: bool) -> np.ndarray:
    if fit:
        num_codes = int(codes.max()) if codes.size else 0
        meta["columns"].setdefault(name, {})["dummy_domain"] = num_codes
    else:
        num_codes = meta["columns"].get(name, {}).get("dummy_domain")
        if num_codes is None:
            raise ValidationError(f"no fitted dummy-code domain for column {name!r}")
    out = np.zeros((len(codes), max(num_codes, 1)), dtype=np.float64)
    valid = (codes >= 1) & (codes <= num_codes)
    out[np.flatnonzero(valid), codes[valid] - 1] = 1.0
    return out


def _bin(column: np.ndarray, name: str, entry: dict, meta: dict, fit: bool) -> np.ndarray:
    num_bins = int(entry.get("numbins", 10))
    method = entry.get("method", "equi-width")
    if fit:
        if method == "equi-width":
            lo, hi = float(np.nanmin(column)), float(np.nanmax(column))
            edges = np.linspace(lo, hi, num_bins + 1)
        elif method == "equi-height":
            quantiles = np.linspace(0, 1, num_bins + 1)
            edges = np.nanquantile(column, quantiles)
        else:
            raise ValidationError(f"unknown binning method {method!r}")
        meta["columns"].setdefault(name, {})["bin_edges"] = [float(e) for e in edges]
    else:
        edges_list = meta["columns"].get(name, {}).get("bin_edges")
        if edges_list is None:
            raise ValidationError(f"no fitted bin edges for column {name!r}")
        edges = np.asarray(edges_list)
    # 1-based bin ids; values outside the fitted range clamp to edge bins
    ids = np.digitize(column, edges[1:-1], right=False) + 1
    ids = np.clip(ids, 1, len(edges) - 1)
    return ids.astype(np.float64)


def _hash_encode(column: np.ndarray, num_features: int) -> np.ndarray:
    """Feature hashing: stateless, so identical at fit and apply time."""
    import hashlib

    out = np.zeros((len(column), num_features), dtype=np.float64)
    for i, value in enumerate(column):
        digest = hashlib.blake2b(str(value).encode(), digest_size=8).digest()
        slot = int.from_bytes(digest, "little") % num_features
        out[i, slot] += 1.0
    return out


# ---------------------------------------------------------------------------
# metadata frame (de)serialisation
# ---------------------------------------------------------------------------


def _meta_to_frame(meta: dict) -> Frame:
    """Serialise fitted metadata as a single-column string frame.

    The frame representation keeps the system stateless: the rules travel
    with the data and can be written/read like any other frame.
    """
    payload = json.dumps(meta)
    return Frame(
        [np.asarray([payload], dtype=object)], [ValueType.STRING], ["transform_meta"]
    )


def _meta_from_frame(frame: Frame) -> dict:
    if frame.num_cols < 1 or frame.num_rows < 1:
        raise ValidationError("empty transform metadata frame")
    try:
        return json.loads(str(frame.get(0, 0)))
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed transform metadata: {exc}") from exc
