"""Rendering and adapters for the runtime statistics layer.

``render_report`` turns one ``StatsRegistry.snapshot()`` dict into the
text report ``repro-dml --stats`` prints — a heavy-hitter instruction
table followed by one section per subsystem, mirroring the layout of
SystemDS' ``-stats`` output.

The ``attach_*`` helpers wire the pre-existing ad-hoc metric dicts
(buffer pool, reuse cache, simulated Spark, federated sites, serving)
into a registry as live section probes.
"""

from __future__ import annotations

import json
from typing import List

from repro.obs.registry import CANONICAL_SECTIONS, StatsRegistry

_SECTION_TITLES = {
    "bufferpool": "Buffer pool",
    "reuse": "Lineage reuse cache",
    "spark": "Distributed backend (shuffle)",
    "federated": "Federated sites",
    "transport": "Transport",
    "serving": "Serving",
    "resilience": "Resilience",
    "checkpoint": "Checkpoint",
    "trace": "Trace compilation",
    "qa": "Differential fuzzing",
}


# ---------------------------------------------------------------------------
# adapters: fold existing subsystem metric dicts into a registry
# ---------------------------------------------------------------------------


def attach_pool(registry: StatsRegistry, pool) -> None:
    """Feed ``BufferPool.stats`` (+ live occupancy) into ``bufferpool``."""

    def probe() -> dict:
        stats = dict(pool.stats)
        stats["used_bytes"] = pool.used
        stats["budget_bytes"] = pool.budget
        stats["entries"] = pool.num_entries
        return stats

    registry.attach("bufferpool", probe)


def attach_reuse(registry: StatsRegistry, cache) -> None:
    """Feed ``ReuseCache.snapshot()`` into the ``reuse`` section."""
    registry.attach("reuse", cache.snapshot)


def attach_spark(registry: StatsRegistry, context_or_probe) -> None:
    """Feed ``SimSparkContext.metrics`` into the ``spark`` section.

    Accepts either a live ``SimSparkContext`` or a zero-argument callable
    returning one (or None) — the execution context creates its simulated
    cluster lazily, so the probe must re-resolve it at snapshot time.
    """

    def probe() -> dict:
        sc = context_or_probe() if callable(context_or_probe) else context_or_probe
        return dict(sc.metrics) if sc is not None else {}

    registry.attach("spark", probe)


def attach_federated(registry: StatsRegistry, worker_registry=None) -> None:
    """Feed per-site transfer accounting into the ``federated`` section."""

    def probe() -> dict:
        from repro.federated.site import FederatedWorkerRegistry

        sites = worker_registry or FederatedWorkerRegistry.default()
        with sites._lock:
            hosted = dict(sites._sites)
        # metrics reads happen outside the registry lock: against a proc
        # transport each one is an RPC to the hosting worker process
        per_site = {
            address: dict(site.metrics) for address, site in hosted.items()
        }
        totals = {
            "sites": len(per_site),
            "requests": sum(m["requests"] for m in per_site.values()),
            "bytes_sent": sum(m["bytes_sent"] for m in per_site.values()),
            "bytes_received": sum(m["bytes_received"] for m in per_site.values()),
            "local_flops": sum(m["local_flops"] for m in per_site.values()),
        }
        return {"totals": totals, "sites": per_site} if per_site else {}

    registry.attach("federated", probe)


def attach_transport(registry: StatsRegistry, transport) -> None:
    """Feed a ``repro.net.Transport.snapshot()`` into ``transport``."""
    registry.attach("transport", transport.snapshot)


def attach_serving(registry: StatsRegistry, metrics) -> None:
    """Feed ``ServingMetrics.snapshot()`` into the ``serving`` section."""
    registry.attach("serving", metrics.snapshot)


def attach_resilience(registry: StatsRegistry, manager) -> None:
    """Feed a ``ResilienceManager.snapshot()`` into the ``resilience`` section."""
    registry.attach("resilience", manager.snapshot)


def attach_qa(registry: StatsRegistry, stats) -> None:
    """Feed a ``repro.qa.FuzzStats.snapshot()`` into the ``qa`` section."""
    registry.attach("qa", stats.snapshot)


def attach_checkpoint(registry: StatsRegistry, manager) -> None:
    """Feed a ``CheckpointManager.snapshot()`` into ``checkpoint``."""
    registry.attach("checkpoint", manager.snapshot)


def attach_trace(registry: StatsRegistry, cache) -> None:
    """Feed a ``repro.trace.TraceCache.snapshot()`` into ``trace``."""
    registry.attach("trace", cache.snapshot)


def observe_context(registry: StatsRegistry, ctx) -> None:
    """Attach the standard probes of one execution context's services."""
    attach_pool(registry, ctx.pool)
    if ctx.reuse is not None:
        attach_reuse(registry, ctx.reuse)
    attach_spark(registry, lambda: ctx._spark)
    if getattr(ctx, "transport", None) is not None:
        attach_transport(registry, ctx.transport)
        attach_federated(registry, ctx.transport.registry())
    if getattr(ctx, "faults", None) is not None:
        attach_resilience(registry, ctx.faults)
    if getattr(ctx, "checkpoints", None) is not None:
        attach_checkpoint(registry, ctx.checkpoints)
    if getattr(ctx, "traces", None) is not None:
        attach_trace(registry, ctx.traces)


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:,.0f}{unit}" if unit == "B" else f"{value:,.1f}{unit}"
        value /= 1024.0
    return f"{n}B"


def _kv_line(section: dict) -> str:
    parts = []
    for key, value in section.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        else:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def render_heavy_hitters(instructions: List[dict], top_k: int = 10) -> str:
    """The top-K opcode table (count, total/mean time, output bytes)."""
    lines = [f"Heavy hitter instructions (top {min(top_k, max(len(instructions), 1))}):"]
    header = f"  {'#':>3}  {'opcode':<24} {'count':>8} {'time(s)':>10} {'mean(ms)':>10} {'bytes':>12}"
    lines.append(header)
    if not instructions:
        lines.append("  (no instructions executed)")
        return "\n".join(lines)
    for rank, stat in enumerate(instructions[:top_k], start=1):
        lines.append(
            f"  {rank:>3}  {stat['opcode']:<24} {stat['count']:>8} "
            f"{stat['total_s']:>10.4f} {stat['mean_ms']:>10.3f} "
            f"{_fmt_bytes(stat['bytes']):>12}"
        )
    return "\n".join(lines)


def _render_serving(section: dict, lines: List[str]) -> None:
    lines.append(f"  queue_depth={section.get('queue_depth', 0)}")
    for name, entry in sorted(section.get("models", {}).items()):
        latency = entry.get("latency_ms", {})
        lines.append(
            f"  {name}: submitted={entry.get('submitted', 0)} "
            f"completed={entry.get('completed', 0)} "
            f"rejected={entry.get('rejected', 0)} "
            f"timeouts={entry.get('timeouts', 0)} "
            f"errors={entry.get('errors', 0)} "
            f"p50={latency.get('p50', 0.0):.2f}ms "
            f"p99={latency.get('p99', 0.0):.2f}ms"
        )
    for name, entry in sorted(section.get("tenants", {}).items()):
        lines.append(
            f"  tenant {name}: submitted={entry.get('submitted', 0)} "
            f"completed={entry.get('completed', 0)} "
            f"throttled={entry.get('throttled', 0)} "
            f"rejected={entry.get('rejected', 0)}"
        )
    for worker, entry in sorted(section.get("workers", {}).items()):
        lines.append(
            f"  worker {worker}: batches={entry.get('batches', 0)} "
            f"requests={entry.get('requests', 0)} "
            f"deaths={entry.get('deaths', 0)} "
            f"respawns={entry.get('respawns', 0)} "
            f"shm={entry.get('shm_segments_attached', 0)}/"
            f"{entry.get('shm_checksums_verified', 0)}"
        )


def _render_resilience(section: dict, lines: List[str]) -> None:
    scalars = {k: v for k, v in section.items() if not isinstance(v, dict)}
    lines.append("  " + _kv_line(scalars))
    injected = section.get("injected_by_point", {})
    if injected:
        lines.append(
            "  injected: "
            + "  ".join(f"{point}={n}" for point, n in sorted(injected.items()))
        )
    breakers = section.get("breakers", {})
    if breakers:
        lines.append(
            "  breakers: "
            + "  ".join(f"{key}={state}" for key, state in sorted(breakers.items()))
        )


def _render_federated(section: dict, lines: List[str]) -> None:
    totals = section.get("totals", {})
    lines.append("  " + _kv_line(totals))
    for address, metrics in sorted(section.get("sites", {}).items()):
        lines.append(f"  {address}: {_kv_line(metrics)}")


def render_report(snapshot: dict, top_k: int = 10) -> str:
    """The full ``--stats`` text report for one snapshot dict."""
    lines = ["=== runtime statistics (repro.obs) ==="]
    lines.append(f"Elapsed time:       {snapshot.get('elapsed_s', 0.0):.3f} sec")
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        lines.append(f"{name + ':':<20}{counters[name]}")
    timers = snapshot.get("timers", {})
    for name in sorted(timers):
        cell = timers[name]
        lines.append(
            f"time[{name}]:        {cell['total_s']:.4f} sec ({cell['count']} calls)"
        )
    lines.append("")
    lines.append(render_heavy_hitters(snapshot.get("instructions", []), top_k))
    for section in CANONICAL_SECTIONS:
        data = snapshot.get(section, {})
        lines.append("")
        lines.append(f"{_SECTION_TITLES[section]}:")
        if not data:
            lines.append("  (inactive)")
        elif section == "serving":
            _render_serving(data, lines)
        elif section == "federated":
            _render_federated(data, lines)
        elif section == "resilience":
            _render_resilience(data, lines)
        else:
            lines.append("  " + _kv_line(data))
    return "\n".join(lines)


def render_json(snapshot: dict) -> str:
    """The snapshot as pretty-printed JSON (for dashboards / CI artifacts)."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)
