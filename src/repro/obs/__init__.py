"""``repro.obs`` — unified runtime statistics (SystemDS ``-stats``).

A :class:`StatsRegistry` aggregates counters, nested-scope timers, and
per-instruction heavy-hitter profiles; section probes fold in the metric
dicts of the buffer pool, reuse cache, simulated Spark context, federated
sites, and the serving layer, so one ``snapshot()``/``report()`` shows
every layer of the system at once.

Module-level ``snapshot()``/``report()`` operate on the process-wide
default registry for ad-hoc use::

    from repro import obs
    with obs.default_registry().time("train"):
        ...
    print(obs.report())
"""

from repro.obs.registry import (
    CANONICAL_SECTIONS,
    InstructionStat,
    StatsRegistry,
    Timer,
    default_registry,
)
from repro.obs.report import (
    attach_federated,
    attach_pool,
    attach_qa,
    attach_resilience,
    attach_reuse,
    attach_serving,
    attach_spark,
    attach_trace,
    attach_transport,
    observe_context,
    render_heavy_hitters,
    render_json,
    render_report,
)

__all__ = [
    "CANONICAL_SECTIONS",
    "InstructionStat",
    "StatsRegistry",
    "Timer",
    "default_registry",
    "snapshot",
    "report",
    "attach_pool",
    "attach_reuse",
    "attach_spark",
    "attach_federated",
    "attach_resilience",
    "attach_serving",
    "attach_qa",
    "attach_trace",
    "attach_transport",
    "observe_context",
    "render_heavy_hitters",
    "render_report",
    "render_json",
]


def snapshot(top_k: int = 10) -> dict:
    """Snapshot of the process-wide default registry."""
    return default_registry().snapshot(top_k)


def report(top_k: int = 10) -> str:
    """Text report of the process-wide default registry."""
    return default_registry().report(top_k)
