"""Process-wide runtime statistics registry (SystemDS ``-stats`` model).

One :class:`StatsRegistry` collects three kinds of data:

* **counters** — monotonically increasing named integers (cheap,
  thread-safe increments on hot paths);
* **timers** — named wall-time accumulators fed by the nested-scope
  :class:`Timer` context manager (``with stats.time("compile"):``); scope
  names nest (``compile/parse``) via a per-thread stack, mirroring the
  phase breakdown of SystemDS' ``-stats`` header;
* **instruction records** — per-opcode execution count, total wall time,
  and output bytes, from which :meth:`StatsRegistry.heavy_hitters`
  derives the top-K table the paper prints for Figure-5-style runs.

Subsystems with their own ad-hoc metric dicts (buffer pool, reuse cache,
simulated Spark, federated sites, serving) are folded in through
*section probes*: ``attach(name, probe)`` registers a zero-argument
callable whose dict result appears under ``snapshot()[name]``.  Probes
are called at snapshot time, so sections are never stale.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

#: Section names every snapshot carries, probe attached or not.  Keeping
#: the set fixed lets ``report()`` always print the same section skeleton.
CANONICAL_SECTIONS = (
    "bufferpool", "reuse", "spark", "federated", "transport", "serving",
    "resilience", "checkpoint", "trace", "qa",
)


class InstructionStat:
    """Accumulated cost of one opcode (guarded by the registry lock)."""

    __slots__ = ("opcode", "count", "total_s", "bytes_out", "max_s")

    def __init__(self, opcode: str):
        self.opcode = opcode
        self.count = 0
        self.total_s = 0.0
        self.bytes_out = 0
        self.max_s = 0.0

    def as_dict(self) -> dict:
        mean_ms = (self.total_s / self.count) * 1e3 if self.count else 0.0
        return {
            "opcode": self.opcode,
            "count": self.count,
            "total_s": self.total_s,
            "mean_ms": mean_ms,
            "max_ms": self.max_s * 1e3,
            "bytes": self.bytes_out,
        }


class Timer:
    """Nested-scope wall timer; records into the registry on exit.

    Scopes stack per thread: a ``Timer("b")`` entered while ``Timer("a")``
    is active records under ``a/b``.  Re-entrant use of one Timer object
    is not supported — ask the registry for a fresh scope each time.
    """

    __slots__ = ("_registry", "_name", "_full", "_start")

    def __init__(self, registry: "StatsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._full: Optional[str] = None
        self._start = 0.0

    def __enter__(self) -> "Timer":
        stack = self._registry._scope_stack()
        stack.append(self._name)
        self._full = "/".join(stack)
        self._start = self._registry._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = self._registry._clock() - self._start
        stack = self._registry._scope_stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._registry._record_timer(self._full or self._name, elapsed)


class StatsRegistry:
    """Thread-safe counters, timers, and per-instruction profiles."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [count, total_s]
        self._instructions: Dict[str, InstructionStat] = {}
        self._probes: Dict[str, Callable[[], dict]] = {}
        self._local = threading.local()
        #: Injectable time source: tests pass a fake clock so timer
        #: assertions never depend on real wall time.
        self._clock = clock
        self._created = self._clock()

    # --- counters -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (thread-safe, hot-path cheap)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # --- timers -------------------------------------------------------------

    def time(self, name: str) -> Timer:
        """A nested-scope timer context manager for a named phase."""
        return Timer(self, name)

    def _scope_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_timer(self, name: str, elapsed: float) -> None:
        with self._lock:
            cell = self._timers.get(name)
            if cell is None:
                cell = self._timers[name] = [0, 0.0]
            cell[0] += 1
            cell[1] += elapsed

    def timer_total(self, name: str) -> float:
        with self._lock:
            cell = self._timers.get(name)
            return cell[1] if cell else 0.0

    # --- per-instruction profiling -----------------------------------------

    def record_instruction(self, opcode: str, elapsed_s: float,
                           bytes_out: int = 0) -> None:
        """Fold one instruction execution into its opcode's accumulator."""
        with self._lock:
            stat = self._instructions.get(opcode)
            if stat is None:
                stat = self._instructions[opcode] = InstructionStat(opcode)
            stat.count += 1
            stat.total_s += elapsed_s
            stat.bytes_out += bytes_out
            if elapsed_s > stat.max_s:
                stat.max_s = elapsed_s

    def heavy_hitters(self, k: int = 10) -> List[dict]:
        """Top-k opcodes by total wall time (the SystemDS -stats table)."""
        with self._lock:
            stats = sorted(
                self._instructions.values(),
                key=lambda s: s.total_s,
                reverse=True,
            )[: max(k, 0)]
            return [s.as_dict() for s in stats]

    # --- section probes -----------------------------------------------------

    def attach(self, section: str, probe: Callable[[], dict]) -> None:
        """Register (or replace) the probe feeding one snapshot section."""
        with self._lock:
            self._probes[section] = probe

    def detach(self, section: str) -> None:
        with self._lock:
            self._probes.pop(section, None)

    # --- snapshot / report --------------------------------------------------

    def snapshot(self, top_k: int = 10) -> dict:
        """One consistent, JSON-serialisable view of every layer's stats."""
        with self._lock:
            counters = dict(self._counters)
            timers = {
                name: {"count": cell[0], "total_s": cell[1]}
                for name, cell in self._timers.items()
            }
            probes = dict(self._probes)
            elapsed = self._clock() - self._created
        result = {
            "elapsed_s": elapsed,
            "counters": counters,
            "timers": timers,
            "instructions": self.heavy_hitters(top_k),
        }
        for section in CANONICAL_SECTIONS:
            result[section] = {}
        for section, probe in probes.items():
            try:
                result[section] = probe() or {}
            except Exception as exc:  # pragma: no cover - defensive
                result[section] = {"error": repr(exc)}
        return result

    def report(self, top_k: int = 10) -> str:
        """The SystemDS-style text report of :meth:`snapshot`."""
        from repro.obs.report import render_report

        return render_report(self.snapshot(top_k), top_k=top_k)

    def reset(self) -> None:
        """Zero all counters/timers/instruction records (probes survive)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._instructions.clear()
            self._created = self._clock()


# ---------------------------------------------------------------------------
# process-wide default registry
# ---------------------------------------------------------------------------

_GLOBAL: Optional[StatsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def default_registry() -> StatsRegistry:
    """The process-wide registry (created on first use)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = StatsRegistry()
        return _GLOBAL
