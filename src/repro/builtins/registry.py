"""Registry of DML-bodied builtin functions.

Each file ``scripts/<name>.dml`` defines the function ``<name>`` (plus any
private helpers, prefixed with the builtin's name to avoid collisions).
The registry parses scripts lazily and caches the resulting function ASTs;
the compiler's builtin-resolution pass calls :func:`lookup_builtin_function`
for every referenced name it cannot otherwise resolve.
"""

from __future__ import annotations

import copy
import os
import threading
from typing import Dict, List, Optional

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.parser import parse

SCRIPTS_DIR = os.path.join(os.path.dirname(__file__), "scripts")

_cache: Dict[str, Dict[str, ast.FunctionDef]] = {}
_lock = threading.Lock()


def available_builtins() -> List[str]:
    """Names of all DML-bodied builtins shipped with the package."""
    names = []
    for entry in sorted(os.listdir(SCRIPTS_DIR)):
        if entry.endswith(".dml"):
            names.append(entry[: -len(".dml")])
    return names


def lookup_builtin_function(name: str) -> Optional[Dict[str, ast.FunctionDef]]:
    """The function definitions provided by builtin ``name`` (or None).

    Returns a fresh deep copy per call: the compiler's IPA pass mutates
    function bodies (inlining), so cached ASTs must never leak.
    """
    with _lock:
        cached = _cache.get(name)
        if cached is None:
            path = os.path.join(SCRIPTS_DIR, f"{name}.dml")
            if not os.path.exists(path):
                return None
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            program = parse(source)
            if name not in program.functions:
                raise CompileError(
                    f"builtin script {name}.dml does not define function {name!r}"
                )
            cached = program.functions
            _cache[name] = cached
        return copy.deepcopy(cached)


def clear_cache() -> None:
    """Drop parsed script caches (test helper)."""
    with _lock:
        _cache.clear()
