"""DML-bodied builtin functions (paper section 2.2).

SystemDS registers builtin functions written in DML itself; scripts that
call e.g. ``steplm`` or ``lm`` transparently pull the corresponding
function definitions from :mod:`repro.builtins.registry`, which loads and
parses the ``scripts/*.dml`` files shipped with the package.
"""

from repro.builtins.registry import available_builtins, lookup_builtin_function

__all__ = ["available_builtins", "lookup_builtin_function"]
