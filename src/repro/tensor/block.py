"""The homogeneous ``BasicTensorBlock`` abstraction (paper section 2.4).

A basic tensor block is a multi-dimensional array of a single value type
with interchangeable dense and sparse physical representations.  It serves
both as the local in-memory tensor and as one tile of a distributed blocked
tensor.  Representation changes are transparent: the runtime asks for
``to_numpy()`` / ``to_scipy()`` when a kernel needs a specific layout, and
``compact()`` re-evaluates the layout decision after an operation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.dense import DenseStore
from repro.tensor.sparse import SparseStore
from repro.types import ValueType

#: Blocks whose sparsity falls below this threshold are stored sparse
#: (SystemDS uses the same default for matrix blocks).
SPARSITY_TURN_POINT = 0.4

#: Tiny blocks always stay dense; sparse bookkeeping overheads dominate.
MIN_SPARSE_SIZE = 256


class BasicTensorBlock:
    """A homogeneous, optionally sparse, n-dimensional tensor block."""

    __slots__ = ("store",)

    def __init__(self, store: Union[DenseStore, SparseStore]):
        self.store = store

    # --- constructors -----------------------------------------------------------

    @classmethod
    def from_numpy(cls, array: np.ndarray, value_type: Optional[ValueType] = None) -> "BasicTensorBlock":
        array = np.asarray(array)
        if array.ndim == 0:
            array = array.reshape(1, 1)
        if value_type is not None and array.dtype != value_type.numpy_dtype:
            array = array.astype(value_type.numpy_dtype)
        block = cls(DenseStore.from_numpy(array))
        return block.compact()

    @classmethod
    def from_scipy(cls, matrix) -> "BasicTensorBlock":
        return cls(SparseStore.from_scipy(matrix))

    @classmethod
    def zeros(cls, shape: Sequence[int], value_type: ValueType = ValueType.FP64) -> "BasicTensorBlock":
        shape = tuple(int(d) for d in shape)
        size = int(np.prod(shape)) if shape else 1
        if value_type.is_numeric and size >= MIN_SPARSE_SIZE:
            return cls(SparseStore.empty(shape, value_type))
        return cls(DenseStore.zeros(shape, value_type))

    @classmethod
    def full(cls, shape: Sequence[int], value, value_type: ValueType = ValueType.FP64) -> "BasicTensorBlock":
        if value == 0 and value_type.is_numeric:
            return cls.zeros(shape, value_type)
        return cls(DenseStore.full(shape, value, value_type))

    @classmethod
    def rand(
        cls,
        shape: Sequence[int],
        min_value: float = 0.0,
        max_value: float = 1.0,
        sparsity: float = 1.0,
        seed: Optional[int] = None,
        pdf: str = "uniform",
    ) -> "BasicTensorBlock":
        """Generate a random block (the DML ``rand()`` data generator)."""
        rng = np.random.default_rng(seed)
        shape = tuple(int(d) for d in shape)
        if pdf == "uniform":
            data = rng.uniform(min_value, max_value, size=shape)
        elif pdf == "normal":
            data = rng.standard_normal(size=shape)
        elif pdf == "poisson":
            data = rng.poisson(lam=max(max_value, 0.0) or 1.0, size=shape).astype(np.float64)
        else:
            raise ValueError(f"unknown pdf: {pdf!r}")
        if sparsity < 1.0:
            mask = rng.random(size=shape) < sparsity
            data = np.where(mask, data, 0.0)
        return cls.from_numpy(data)

    @classmethod
    def scalar(cls, value: float) -> "BasicTensorBlock":
        """A 1x1 block holding a single value (for as.matrix of scalars)."""
        return cls(DenseStore.from_numpy(np.asarray([[float(value)]])))

    # --- basic properties ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.store.shape

    @property
    def ndim(self) -> int:
        return len(self.store.shape)

    @property
    def num_rows(self) -> int:
        return self.store.shape[0] if self.ndim >= 1 else 1

    @property
    def num_cols(self) -> int:
        return self.store.shape[1] if self.ndim >= 2 else 1

    @property
    def value_type(self) -> ValueType:
        return self.store.value_type

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.store, SparseStore)

    @property
    def is_compressed(self) -> bool:
        """True while the payload is a still-compressed restored spill."""
        return self.store.compressed

    @property
    def size(self) -> int:
        return self.store.size

    @property
    def nnz(self) -> int:
        return self.store.nnz

    @property
    def sparsity(self) -> float:
        return self.nnz / self.size if self.size else 0.0

    def memory_size(self) -> int:
        return self.store.memory_size()

    # --- representation control -------------------------------------------------------

    def compact(self) -> "BasicTensorBlock":
        """Re-evaluate the dense/sparse layout decision in place.

        Works on the store directly (no property chains): this runs once
        per materialized intermediate, making it one of the hottest
        scalar-code paths in the runtime.
        """
        store = self.store
        if store.compressed:
            # layout decision is deferred until the block inflates: the
            # compressed form is strictly smaller than either layout
            return self
        if type(store) is DenseStore:
            array = store.array
            if array.size >= MIN_SPARSE_SIZE and store.value_type.is_numeric:
                # one scan serves both the layout decision and the nnz
                # cache — exports (MatrixObject.from_block, trace exits)
                # then read the count without rescanning the array
                nnz = int(np.count_nonzero(array))
                store._nnz = nnz
                if nnz < array.size * SPARSITY_TURN_POINT:
                    self.store = SparseStore.from_numpy(array, store.value_type)
        elif (
            store.nnz >= store.size * SPARSITY_TURN_POINT
            or store.size < MIN_SPARSE_SIZE
        ):
            self.store = DenseStore(store.to_numpy(), store.value_type)
        return self

    def to_dense(self) -> "BasicTensorBlock":
        if self.is_sparse:
            self.store = DenseStore(self.store.to_numpy(), self.value_type)
        return self

    def to_sparse(self) -> "BasicTensorBlock":
        if not self.is_sparse and self.value_type.is_numeric:
            self.store = SparseStore.from_numpy(self.store.to_numpy(), self.value_type)
        return self

    # --- access & conversion --------------------------------------------------------------

    def get(self, index: Tuple[int, ...]):
        return self.store.get(index)

    def set(self, index: Tuple[int, ...], value) -> None:
        if self.store.compressed:
            self.inflate()
        self.store.set(index, value)

    def inflate(self) -> "BasicTensorBlock":
        """Decompress a restored-compressed payload in place (no-op
        otherwise).  The swapped-in dense store carries the exact bits
        and the nnz metadata the spill recorded."""
        store = self.store
        if store.compressed:
            self.store = store.inflate()
        return self

    def to_numpy(self) -> np.ndarray:
        store = self.store
        if store.compressed:
            store = self.store = store.inflate()
        return store.to_numpy()

    def to_scipy(self) -> sp.csr_matrix:
        """CSR view for 2D blocks (converts dense blocks on demand)."""
        if isinstance(self.store, SparseStore) and self.store.csr is not None:
            return self.store.csr
        if self.ndim != 2:
            raise ValueError("to_scipy requires a 2D block")
        return sp.csr_matrix(self.to_numpy())

    def astype(self, value_type: ValueType) -> "BasicTensorBlock":
        if value_type == self.value_type:
            return self
        if value_type == ValueType.STRING and self.is_sparse:
            return BasicTensorBlock(DenseStore(self.to_numpy().astype(object), value_type))
        return BasicTensorBlock(self.store.astype(value_type))

    def copy(self) -> "BasicTensorBlock":
        return BasicTensorBlock(self.store.copy())

    def reshape(self, shape: Sequence[int]) -> "BasicTensorBlock":
        shape = tuple(int(d) for d in shape)
        if int(np.prod(shape)) != self.size:
            raise ValueError(f"cannot reshape {self.shape} into {shape}")
        return BasicTensorBlock.from_numpy(self.to_numpy().reshape(shape))

    def as_scalar(self) -> float:
        if self.size != 1:
            raise ValueError(f"as.scalar on block of shape {self.shape}")
        return float(self.to_numpy().reshape(-1)[0])

    # --- equality (structural, for tests) ----------------------------------------------------

    def equals(self, other: "BasicTensorBlock", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        if self.shape != other.shape:
            return False
        if self.value_type == ValueType.STRING or other.value_type == ValueType.STRING:
            return bool(np.array_equal(self.to_numpy(), other.to_numpy()))
        return bool(
            np.allclose(
                self.to_numpy().astype(np.float64),
                other.to_numpy().astype(np.float64),
                rtol=rtol,
                atol=atol,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"BasicTensorBlock(shape={self.shape}, vt={self.value_type.value},"
            f" {kind}, nnz={self.nnz})"
        )
