"""2D frames: tables with a per-column schema and optional column names.

Frames are the input side of the data-preparation pipeline (paper sections
2.1/L4 and 3.2): raw heterogeneous data is read into frames, cleaned and
transformed (recode, dummy-code, binning, ...) and only then becomes a
numeric matrix for training.  A frame is a thin columnar container; the
transform logic itself lives in :mod:`repro.prep.transform`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.tensor.block import BasicTensorBlock
from repro.types import ValueType


class Frame:
    """A columnar 2D table with schema."""

    __slots__ = ("columns", "schema", "names")

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        schema: Sequence[ValueType],
        names: Optional[Sequence[str]] = None,
    ):
        if len(columns) != len(schema):
            raise ValueError("one column per schema entry required")
        lengths = {len(col) for col in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.columns: List[np.ndarray] = [self._coerce(col, vt) for col, vt in zip(columns, schema)]
        self.schema: List[ValueType] = list(schema)
        if names is None:
            names = [f"C{i + 1}" for i in range(len(schema))]
        if len(names) != len(schema):
            raise ValueError("one name per column required")
        self.names: List[str] = list(names)

    @staticmethod
    def _coerce(column: np.ndarray, value_type: ValueType) -> np.ndarray:
        column = np.asarray(column)
        if value_type == ValueType.STRING:
            return column.astype(object)
        return column.astype(value_type.numpy_dtype)

    # --- constructors -----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Iterable], schema: Optional[Sequence[ValueType]] = None) -> "Frame":
        names = list(data.keys())
        columns = [np.asarray(list(values)) for values in data.values()]
        if schema is None:
            schema = [cls._infer_value_type(col) for col in columns]
        return cls(columns, schema, names)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence],
        schema: Sequence[ValueType],
        names: Optional[Sequence[str]] = None,
    ) -> "Frame":
        n_cols = len(schema)
        columns = [np.asarray([row[j] for row in rows]) for j in range(n_cols)]
        return cls(columns, schema, names)

    @staticmethod
    def _infer_value_type(column: np.ndarray) -> ValueType:
        if column.dtype.kind in ("U", "S", "O"):
            return ValueType.STRING
        if column.dtype.kind == "b":
            return ValueType.BOOLEAN
        if column.dtype.kind in ("i", "u"):
            return ValueType.INT64
        return ValueType.FP64

    # --- basic properties ----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_cols(self) -> int:
        return len(self.columns)

    @property
    def shape(self):
        return (self.num_rows, self.num_cols)

    def memory_size(self) -> int:
        total = 0
        for column, vt in zip(self.columns, self.schema):
            if vt == ValueType.STRING:
                total += sum(len(str(v)) + 8 for v in column)
            else:
                total += column.nbytes
        return total

    # --- access ------------------------------------------------------------------------

    def column(self, key) -> np.ndarray:
        """A column by name or 0-based position."""
        if isinstance(key, str):
            try:
                key = self.names.index(key)
            except ValueError:
                raise KeyError(f"no column named {key!r}") from None
        return self.columns[key]

    def get(self, row: int, col: int):
        value = self.columns[col][row]
        return value.item() if hasattr(value, "item") else value

    def set(self, row: int, col: int, value) -> None:
        self.columns[col][row] = value

    def row(self, index: int) -> list:
        return [self.get(index, j) for j in range(self.num_cols)]

    # --- structural operations --------------------------------------------------------------

    def select_columns(self, keys: Sequence) -> "Frame":
        positions = []
        for key in keys:
            positions.append(self.names.index(key) if isinstance(key, str) else key)
        return Frame(
            [self.columns[p].copy() for p in positions],
            [self.schema[p] for p in positions],
            [self.names[p] for p in positions],
        )

    def slice_rows(self, start: int, stop: int) -> "Frame":
        return Frame([col[start:stop] for col in self.columns], self.schema, self.names)

    def filter_rows(self, mask: np.ndarray) -> "Frame":
        mask = np.asarray(mask, dtype=bool)
        return Frame([col[mask] for col in self.columns], self.schema, self.names)

    def rbind(self, other: "Frame") -> "Frame":
        if self.schema != other.schema:
            raise ValueError("rbind requires identical schemas")
        columns = [np.concatenate([a, b]) for a, b in zip(self.columns, other.columns)]
        return Frame(columns, self.schema, self.names)

    def cbind(self, other: "Frame") -> "Frame":
        if self.num_rows != other.num_rows:
            raise ValueError("cbind requires identical row counts")
        names = self.names + [
            name if name not in self.names else f"{name}_r" for name in other.names
        ]
        return Frame(self.columns + other.columns, self.schema + other.schema, names)

    def copy(self) -> "Frame":
        return Frame([col.copy() for col in self.columns], self.schema, self.names)

    # --- conversion ------------------------------------------------------------------------------

    def to_matrix(self) -> BasicTensorBlock:
        """All-numeric frames as an FP64 matrix block."""
        data = np.empty((self.num_rows, self.num_cols), dtype=np.float64)
        for j, (column, vt) in enumerate(zip(self.columns, self.schema)):
            if vt == ValueType.STRING:
                try:
                    data[:, j] = column.astype(np.float64)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"column {self.names[j]!r} is not numeric; apply a transform first"
                    ) from None
            else:
                data[:, j] = column.astype(np.float64)
        return BasicTensorBlock.from_numpy(data)

    @classmethod
    def from_matrix(cls, block: BasicTensorBlock, names: Optional[Sequence[str]] = None) -> "Frame":
        data = block.to_numpy()
        if data.ndim != 2:
            raise ValueError("from_matrix requires a 2D block")
        columns = [data[:, j].copy() for j in range(data.shape[1])]
        schema = [block.value_type] * data.shape[1]
        return cls(columns, schema, names)

    def equals(self, other: "Frame") -> bool:
        if self.shape != other.shape or self.schema != other.schema:
            return False
        return all(np.array_equal(a, b) for a, b in zip(self.columns, other.columns))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{n}:{vt.value}" for n, vt in zip(self.names[:6], self.schema[:6]))
        suffix = ", ..." if self.num_cols > 6 else ""
        return f"Frame({self.num_rows}x{self.num_cols}; {cols}{suffix})"
