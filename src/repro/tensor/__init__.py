"""Heterogeneous tensor data model (paper section 2.4).

The central abstraction is the :class:`~repro.tensor.block.BasicTensorBlock`,
a homogeneous multi-dimensional array with dense and sparse physical
representations, complemented by the heterogeneous
:class:`~repro.tensor.data.DataTensorBlock` (schema on the second dimension)
and 2D :class:`~repro.tensor.frame.Frame` tables used for feature transforms.
Local single- and multi-threaded kernels live in :mod:`repro.tensor.ops`.
"""

from repro.tensor.block import BasicTensorBlock
from repro.tensor.data import DataTensorBlock
from repro.tensor.dense import DenseStore
from repro.tensor.frame import Frame
from repro.tensor.sparse import SparseStore

__all__ = [
    "BasicTensorBlock",
    "DataTensorBlock",
    "DenseStore",
    "Frame",
    "SparseStore",
]
