"""Lossless column compression for linear algebra (paper section 3.4).

A simplified reproduction of Compressed Linear Algebra (CLA, [20] in the
paper): columns are dictionary-encoded — a small dictionary of distinct
values plus a per-row code array — and selected linear-algebra operations
execute directly on the compressed representation:

* ``matvec`` (``X %*% v``): per column, the contribution is a dictionary
  lookup scaled by ``v[j]`` — no decompression;
* ``vecmat`` (``t(X) %*% v``): the CLA headline trick — ``bincount`` the
  codes weighted by ``v`` once per column, then one tiny dot with the
  dictionary (O(n + #distinct) instead of O(n) multiply-adds with reads
  of decompressed values);
* ``col_sums`` and elementwise scalar ops: run on the dictionary only,
  O(#distinct) per column.

Columns whose dictionaries would not pay for themselves stay uncompressed
(an "uncompressed column group"), mirroring CLA's per-group decisions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

import numpy as np

from repro.tensor.block import BasicTensorBlock

#: Columns with more distinct values than this fraction of rows stay dense.
_MAX_DISTINCT_FRACTION = 0.5


@dataclasses.dataclass
class DictColumn:
    """One dictionary-encoded column: values[codes] reconstructs it."""

    values: np.ndarray  # (d,) distinct values
    codes: np.ndarray  # (n,) uint indexes into values

    def memory_size(self) -> int:
        return int(self.values.nbytes + self.codes.nbytes)

    def decompress(self) -> np.ndarray:
        return self.values[self.codes]


@dataclasses.dataclass
class DenseColumn:
    """An uncompressed column group (dictionary would not pay off)."""

    data: np.ndarray  # (n,)

    def memory_size(self) -> int:
        return int(self.data.nbytes)

    def decompress(self) -> np.ndarray:
        return self.data


Column = Union[DictColumn, DenseColumn]


class CompressedBlock:
    """A column-compressed matrix supporting compressed-space operations."""

    def __init__(self, columns: List[Column], num_rows: int):
        self.columns = columns
        self.num_rows = num_rows

    # --- construction -----------------------------------------------------------

    @classmethod
    def compress(cls, block: BasicTensorBlock) -> "CompressedBlock":
        """Compress a matrix block column by column (lossless)."""
        data = block.to_numpy().astype(np.float64, copy=False)
        if data.ndim != 2:
            raise ValueError("compression requires a 2D block")
        n = data.shape[0]
        columns: List[Column] = []
        for j in range(data.shape[1]):
            column = np.ascontiguousarray(data[:, j])
            values, codes = np.unique(column, return_inverse=True)
            if len(values) > max(1, int(n * _MAX_DISTINCT_FRACTION)):
                columns.append(DenseColumn(column.copy()))
                continue
            code_dtype = np.uint8 if len(values) <= 256 else (
                np.uint16 if len(values) <= 65536 else np.uint32
            )
            columns.append(DictColumn(values, codes.astype(code_dtype)))
        return cls(columns, n)

    # --- metadata ---------------------------------------------------------------------

    @property
    def num_cols(self) -> int:
        return len(self.columns)

    @property
    def shape(self):
        return (self.num_rows, self.num_cols)

    def memory_size(self) -> int:
        return sum(column.memory_size() for column in self.columns)

    def compression_ratio(self) -> float:
        """Dense bytes divided by compressed bytes (higher is better)."""
        dense = self.num_rows * self.num_cols * 8
        return dense / max(self.memory_size(), 1)

    def num_compressed_columns(self) -> int:
        return sum(1 for column in self.columns if isinstance(column, DictColumn))

    # --- compressed-space operations ------------------------------------------------------

    def decompress(self) -> BasicTensorBlock:
        data = np.column_stack([column.decompress() for column in self.columns])
        return BasicTensorBlock.from_numpy(data)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``X %*% v`` without decompressing (v: (m,) or (m, 1))."""
        weights = np.asarray(v, dtype=np.float64).reshape(-1)
        if weights.shape[0] != self.num_cols:
            raise ValueError(f"matvec expects length {self.num_cols}, got {weights.shape[0]}")
        out = np.zeros(self.num_rows)
        for column, weight in zip(self.columns, weights):
            if weight == 0.0:
                continue
            if isinstance(column, DictColumn):
                out += (column.values * weight)[column.codes]
            else:
                out += column.data * weight
        return out.reshape(-1, 1)

    def vecmat(self, v: np.ndarray) -> np.ndarray:
        """``t(X) %*% v`` via code-weighted bincounts (the CLA trick)."""
        weights = np.asarray(v, dtype=np.float64).reshape(-1)
        if weights.shape[0] != self.num_rows:
            raise ValueError(f"vecmat expects length {self.num_rows}, got {weights.shape[0]}")
        out = np.zeros(self.num_cols)
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                bucket_weights = np.bincount(
                    column.codes, weights=weights, minlength=len(column.values)
                )
                out[j] = float(bucket_weights @ column.values)
            else:
                out[j] = float(column.data @ weights)
        return out.reshape(-1, 1)

    def col_sums(self) -> np.ndarray:
        out = np.zeros(self.num_cols)
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                counts = np.bincount(column.codes, minlength=len(column.values))
                out[j] = float(counts @ column.values)
            else:
                out[j] = float(column.data.sum())
        return out.reshape(1, -1)

    def scalar_op(self, op: str, scalar: float) -> "CompressedBlock":
        """Elementwise scalar op applied to dictionaries only (O(#distinct))."""
        funcs = {
            "+": lambda a: a + scalar,
            "-": lambda a: a - scalar,
            "*": lambda a: a * scalar,
            "/": lambda a: a / scalar,
            "^": lambda a: a ** scalar,
        }
        func = funcs.get(op)
        if func is None:
            raise ValueError(f"unsupported compressed scalar op {op!r}")
        columns: List[Column] = []
        for column in self.columns:
            if isinstance(column, DictColumn):
                columns.append(DictColumn(func(column.values), column.codes))
            else:
                columns.append(DenseColumn(func(column.data)))
        return CompressedBlock(columns, self.num_rows)

    def sum(self) -> float:
        return float(self.col_sums().sum())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompressedBlock({self.num_rows}x{self.num_cols},"
            f" ratio={self.compression_ratio():.1f}x,"
            f" dict_cols={self.num_compressed_columns()})"
        )
