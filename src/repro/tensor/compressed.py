"""Lossless column compression for linear algebra (paper section 3.4).

A simplified reproduction of Compressed Linear Algebra (CLA, [20] in the
paper): columns are dictionary-encoded — a small dictionary of distinct
values plus a per-row code array — and selected linear-algebra operations
execute directly on the compressed representation:

* ``matvec`` (``X %*% v``): per column, the contribution is a dictionary
  lookup scaled by ``v[j]`` — no decompression;
* ``vecmat`` (``t(X) %*% v``): the CLA headline trick — ``bincount`` the
  codes weighted by ``v`` once per column, then one tiny dot with the
  dictionary (O(n + #distinct) instead of O(n) multiply-adds with reads
  of decompressed values);
* ``matmult_dense`` / ``t_matmult_dense``: matmul with a dense right-hand
  side, one (#distinct x k) dictionary product per column — the
  decompressed left operand is never materialised;
* ``col_sums``, full aggregates (sum/min/max/mean) and elementwise scalar
  ops: run on the dictionary only, O(#distinct) per column.

Columns whose dictionaries would not pay for themselves stay uncompressed
(an "uncompressed column group"), mirroring CLA's per-group decisions.

Two properties matter for the buffer pool, which (PR 9) spills eligible
blocks in this format:

* **Bit-exactness.**  Dictionaries are built over the *uint64 bit
  patterns* of the float64 cells, not their numeric values: ``-0.0`` vs
  ``0.0`` and distinct NaN payloads survive a compress/decompress round
  trip bit-for-bit, which is what lets chaos lattice configs compare
  spilled runs bitwise against in-memory baselines.
* **Metadata.**  A block's ``value_type`` and ``nnz`` ride along (and
  through pickle), so a restore can seed the dense nnz cache instead of
  rescanning the decompressed array.

:class:`CompressedStore` adapts a :class:`CompressedBlock` to the
``BasicTensorBlock`` store protocol: a restored block stays compressed
until a kernel actually needs the dense array (lazy inflation), and
kernels listed in :data:`COMPRESSED_OP_ELIGIBILITY` execute on the
compressed form directly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.tensor.block import BasicTensorBlock
from repro.tensor.dense import DenseStore
from repro.types import ValueType

#: Columns with more distinct values than this fraction of rows stay dense.
_MAX_DISTINCT_FRACTION = 0.5

#: Which operations may run directly on a compressed block.  Keys are
#: ``"<kind>:<op>"``; anything absent (or False) falls back to lazy
#: inflation followed by the ordinary dense kernel.  Compressed-space
#: execution legally reorders float reductions, so it is only enabled
#: when ``ReproConfig.compressed_exec`` is on (tolerance-compared in the
#: qa lattice, never on a bitwise config).
COMPRESSED_OP_ELIGIBILITY: Dict[str, bool] = {
    # elementwise scalar arithmetic: applied to dictionaries only; the
    # same scalar op on the same input bits yields the same output bits,
    # so these are even bitwise-safe
    "scalar:+": True,
    "scalar:-": True,
    "scalar:*": True,
    "scalar:/": True,
    "scalar:^": True,
    # full aggregates: O(#distinct) per column via code histograms
    "agg:sum": True,
    "agg:min": True,
    "agg:max": True,
    "agg:mean": True,
    # var/sd/prod need a different dictionary reduction shape; inflate
    "agg:var": False,
    "agg:sd": False,
    "agg:prod": False,
    # column sums reuse the full-aggregate histogram machinery
    "agg_col:sum": True,
    # matmul with a dense RHS (X %*% B and t(X) %*% B); sparse RHS and
    # tsmm inflate — the sparse kernels want a concrete CSR operand
    "matmult:dense_rhs": True,
    "matmult:transpose_left": True,
    "matmult:sparse_rhs": False,
    "matmult:tsmm": False,
}


def compressed_eligible(kind: str, op: str) -> bool:
    """True when ``op`` may execute on the compressed representation."""
    return COMPRESSED_OP_ELIGIBILITY.get(f"{kind}:{op}", False)


@dataclasses.dataclass
class DictColumn:
    """One dictionary-encoded column: values[codes] reconstructs it."""

    values: np.ndarray  # (d,) distinct values
    codes: np.ndarray  # (n,) uint indexes into values

    def memory_size(self) -> int:
        return int(self.values.nbytes + self.codes.nbytes)

    def decompress(self) -> np.ndarray:
        return self.values[self.codes]

    def count_nonzero(self) -> int:
        """Non-zero cells without decompressing (code histogram)."""
        zero_values = self.values == 0.0
        if not zero_values.any():
            return int(self.codes.shape[0])
        counts = np.bincount(self.codes, minlength=len(self.values))
        return int(self.codes.shape[0] - counts[zero_values].sum())


@dataclasses.dataclass
class DenseColumn:
    """An uncompressed column group (dictionary would not pay off)."""

    data: np.ndarray  # (n,)

    def memory_size(self) -> int:
        return int(self.data.nbytes)

    def decompress(self) -> np.ndarray:
        return self.data

    def count_nonzero(self) -> int:
        return int(np.count_nonzero(self.data))


Column = Union[DictColumn, DenseColumn]


class CompressedBlock:
    """A column-compressed matrix supporting compressed-space operations."""

    def __init__(self, columns: List[Column], num_rows: int,
                 value_type: ValueType = ValueType.FP64,
                 nnz: Optional[int] = None):
        self._columns: Optional[List[Column]] = columns
        self._num_cols = len(columns)
        self.num_rows = num_rows
        #: Value type of the source block (compression coerces to FP64;
        #: the recorded type is what a restore reconstructs).
        self.value_type = value_type
        #: Non-zero count of the source block, carried through spills so
        #: restores seed the dense nnz cache instead of rescanning.
        self._nnz = nnz
        #: Set by the vectorised encoders: ``(values, codes2d)`` when all
        #: columns share one global dictionary (codes2d is Fortran-order,
        #: the columns are views of it), ``(values, None)`` for a constant
        #: block (implicit all-zero codes).  Enables single-gather
        #: decompression and a compact pickle form; None for blocks built
        #: by the per-column encoder.
        self._dict: Optional[Tuple[np.ndarray, Optional[np.ndarray]]] = None

    # --- construction -----------------------------------------------------------

    @classmethod
    def compress(cls, block: BasicTensorBlock) -> "CompressedBlock":
        """Compress a matrix block column by column (lossless, bit-exact).

        Dictionaries are keyed on the uint64 *bit patterns* of the float64
        cells: ``np.unique`` over raw floats would collapse ``-0.0`` into
        ``0.0`` and canonicalise NaN payloads, breaking the bitwise
        spill/restore invariant the buffer pool relies on.

        Encoding is tiered for spill-path latency: a constant block is
        recognised with one vectorised comparison, a low-cardinality block
        gets a single *global* dictionary from one ``np.unique`` over the
        whole array (columns become views of a shared code matrix), and
        only blocks with high-cardinality columns fall back to the
        per-column encoder that keeps those columns dense.
        """
        data = block.to_numpy().astype(np.float64, copy=False)
        if data.ndim != 2:
            raise ValueError("compression requires a 2D block")
        data = np.ascontiguousarray(data)
        n, m = data.shape
        bits = data.view(np.uint64)
        nnz = int(block.nnz)
        flat = bits.ravel()

        # tier 1: constant block — one comparison, nothing but the value
        if n * m > 0 and (flat == flat[0]).all():
            values = flat[:1].copy().view(np.float64)
            shared_codes = np.zeros(n, dtype=np.uint8)
            columns = [DictColumn(values, shared_codes) for _ in range(m)]
            result = cls(columns, n, ValueType.FP64, nnz)
            result._dict = (values, None)
            return result

        # tier 2: one global dictionary when every column is guaranteed
        # below the distinct-fraction cap (global distinct <= cap implies
        # per-column distinct <= cap)
        unique_bits, codes = np.unique(flat, return_inverse=True)
        K = len(unique_bits)
        if K <= max(1, int(n * _MAX_DISTINCT_FRACTION)):
            code_dtype = np.uint8 if K <= 256 else (
                np.uint16 if K <= 65536 else np.uint32
            )
            values = unique_bits.view(np.float64)
            codes2d = np.asfortranarray(
                codes.reshape(n, m).astype(code_dtype)
            )
            # per-column dictionaries stay *minimal* (a constant column
            # keeps a 1-entry dictionary): derive which global values each
            # column actually uses with one bincount + cumsum remap
            # instead of m per-column sorts
            keys = codes2d.astype(np.int64) + np.arange(m, dtype=np.int64) * K
            used = np.bincount(keys.ravel(), minlength=m * K).reshape(m, K) > 0
            if used.all():
                columns = [DictColumn(values, codes2d[:, j]) for j in range(m)]
            else:
                remap = (np.cumsum(used, axis=1) - 1).astype(code_dtype)
                columns = [
                    DictColumn(values[used[j]],
                               np.ascontiguousarray(remap[j][codes2d[:, j]]))
                    for j in range(m)
                ]
            result = cls(columns, n, ValueType.FP64, nnz)
            result._dict = (values, codes2d)
            return result

        # tier 3: per-column dictionaries, dense fallback per column
        columns: List[Column] = []
        for j in range(m):
            column = np.ascontiguousarray(data[:, j])
            col_bits = column.view(np.uint64)
            unique_bits, codes = np.unique(col_bits, return_inverse=True)
            if len(unique_bits) > max(1, int(n * _MAX_DISTINCT_FRACTION)):
                columns.append(DenseColumn(column.copy()))
                continue
            code_dtype = np.uint8 if len(unique_bits) <= 256 else (
                np.uint16 if len(unique_bits) <= 65536 else np.uint32
            )
            values = unique_bits.view(np.float64)
            columns.append(DictColumn(values, codes.astype(code_dtype)))
        return cls(columns, n, ValueType.FP64, nnz)

    # --- pickling ----------------------------------------------------------------
    # The shared-dictionary forms serialise as one values array plus one
    # code matrix (or nothing, for constants) instead of per-column
    # objects: spill blobs stay small and fast to build either way.

    def __getstate__(self):
        if self._dict is not None:
            values, codes2d = self._dict
            return ("shared", values, codes2d, self.num_rows,
                    self._num_cols, self.value_type, self._nnz)
        return ("columns", self.columns, self.num_rows,
                self.value_type, self._nnz)

    def __setstate__(self, state) -> None:
        if state[0] == "shared":
            __, values, codes2d, self.num_rows, m, self.value_type, self._nnz = state
            self._dict = (values, codes2d)
            self._num_cols = m
            # column views rebuild lazily: the common restore path (lazy
            # inflation to dense) reads the global form and never needs them
            self._columns = None
        else:
            __, self._columns, self.num_rows, self.value_type, self._nnz = state
            self._num_cols = len(self._columns)
            self._dict = None

    @property
    def columns(self) -> List[Column]:
        if self._columns is None:
            values, codes2d = self._dict
            if codes2d is None:
                shared_codes = np.zeros(self.num_rows, dtype=np.uint8)
                self._columns = [DictColumn(values, shared_codes)
                                 for _ in range(self._num_cols)]
            else:
                self._columns = [DictColumn(values, codes2d[:, j])
                                 for j in range(self._num_cols)]
        return self._columns

    # --- metadata ---------------------------------------------------------------------

    @property
    def num_cols(self) -> int:
        return self._num_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        """Non-zero cells, computed compressed-space on first use."""
        if self._nnz is None:
            self._nnz = sum(column.count_nonzero() for column in self.columns)
        return self._nnz

    def memory_size(self) -> int:
        if self._dict is not None:
            # shared dictionary: count values once, not once per column
            values, codes2d = self._dict
            codes_bytes = codes2d.nbytes if codes2d is not None else self.num_rows
            return int(values.nbytes + codes_bytes)
        return sum(column.memory_size() for column in self.columns)

    def compression_ratio(self) -> float:
        """Dense bytes divided by compressed bytes (higher is better)."""
        dense = self.num_rows * self.num_cols * 8
        return dense / max(self.memory_size(), 1)

    def num_compressed_columns(self) -> int:
        return sum(1 for column in self.columns if isinstance(column, DictColumn))

    # --- compressed-space operations ------------------------------------------------------

    def to_dense_array(self) -> np.ndarray:
        """The exact dense float64 array (bit-for-bit the compressed input)."""
        if self._dict is not None:
            values, codes2d = self._dict
            if codes2d is None:
                # constant block: broadcast the 1-element dictionary (array
                # assignment, not a Python scalar round trip — NaN payloads
                # and -0.0 keep their bits)
                out = np.empty((self.num_rows, self.num_cols), dtype=np.float64)
                out[...] = values[:1]
                return out
            return np.ascontiguousarray(values[codes2d])
        out = np.empty((self.num_rows, self.num_cols), dtype=np.float64)
        for j, column in enumerate(self.columns):
            out[:, j] = column.decompress()
        return out

    def to_dense_store(self) -> DenseStore:
        """A dense store with the nnz cache seeded from the metadata."""
        return DenseStore(self.to_dense_array(), self.value_type, self._nnz)

    def decompress(self) -> BasicTensorBlock:
        return BasicTensorBlock.from_numpy(self.to_dense_array())

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``X %*% v`` without decompressing (v: (m,) or (m, 1))."""
        weights = np.asarray(v, dtype=np.float64).reshape(-1)
        if weights.shape[0] != self.num_cols:
            raise ValueError(f"matvec expects length {self.num_cols}, got {weights.shape[0]}")
        out = np.zeros(self.num_rows)
        for column, weight in zip(self.columns, weights):
            if weight == 0.0:
                continue
            if isinstance(column, DictColumn):
                out += (column.values * weight)[column.codes]
            else:
                out += column.data * weight
        return out.reshape(-1, 1)

    def vecmat(self, v: np.ndarray) -> np.ndarray:
        """``t(X) %*% v`` via code-weighted bincounts (the CLA trick)."""
        weights = np.asarray(v, dtype=np.float64).reshape(-1)
        if weights.shape[0] != self.num_rows:
            raise ValueError(f"vecmat expects length {self.num_rows}, got {weights.shape[0]}")
        out = np.zeros(self.num_cols)
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                bucket_weights = np.bincount(
                    column.codes, weights=weights, minlength=len(column.values)
                )
                out[j] = float(bucket_weights @ column.values)
            else:
                out[j] = float(column.data @ weights)
        return out.reshape(-1, 1)

    def matmult_dense(self, rhs: np.ndarray) -> np.ndarray:
        """``X %*% B`` with a dense RHS, never materialising dense X.

        Per column the contribution is an outer product of the dictionary
        with one RHS row, gathered through the codes: a (#distinct x k)
        temporary instead of the (n x m) decompressed operand.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            rhs = rhs.reshape(-1, 1)
        if rhs.shape[0] != self.num_cols:
            raise ValueError(
                f"matmult_dense expects {self.num_cols} RHS rows, got {rhs.shape[0]}"
            )
        if rhs.shape[1] == 1:
            return self.matvec(rhs)
        out = np.zeros((self.num_rows, rhs.shape[1]))
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                out += np.outer(column.values, rhs[j])[column.codes]
            else:
                out += np.outer(column.data, rhs[j])
        return out

    def t_matmult_dense(self, rhs: np.ndarray) -> np.ndarray:
        """``t(X) %*% B`` with a dense RHS: one weighted bincount per
        (column, RHS column) pair, then tiny dictionary dots."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            rhs = rhs.reshape(-1, 1)
        if rhs.shape[0] != self.num_rows:
            raise ValueError(
                f"t_matmult_dense expects {self.num_rows} RHS rows, got {rhs.shape[0]}"
            )
        out = np.zeros((self.num_cols, rhs.shape[1]))
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                d = len(column.values)
                for c in range(rhs.shape[1]):
                    bucket = np.bincount(
                        column.codes, weights=rhs[:, c], minlength=d
                    )
                    out[j, c] = float(bucket @ column.values)
            else:
                out[j] = column.data @ rhs
        return out

    def col_sums(self) -> np.ndarray:
        out = np.zeros(self.num_cols)
        for j, column in enumerate(self.columns):
            if isinstance(column, DictColumn):
                counts = np.bincount(column.codes, minlength=len(column.values))
                out[j] = float(counts @ column.values)
            else:
                out[j] = float(column.data.sum())
        return out.reshape(1, -1)

    def scalar_op(self, op: str, scalar: float,
                  scalar_left: bool = False) -> "CompressedBlock":
        """Elementwise scalar op applied to dictionaries only (O(#distinct))."""
        funcs: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
            "+": (lambda a: scalar + a) if scalar_left else (lambda a: a + scalar),
            "-": (lambda a: scalar - a) if scalar_left else (lambda a: a - scalar),
            "*": (lambda a: scalar * a) if scalar_left else (lambda a: a * scalar),
            "/": (lambda a: scalar / a) if scalar_left else (lambda a: a / scalar),
            "^": (lambda a: scalar ** a) if scalar_left else (lambda a: a ** scalar),
        }
        func = funcs.get(op)
        if func is None:
            raise ValueError(f"unsupported compressed scalar op {op!r}")
        if self._dict is not None:
            # shared dictionary: O(#distinct) per column on tiny value
            # arrays, code arrays reused by identity; the same elementwise
            # op on the same bits gives the same bits, so the global form
            # stays consistent with the per-column dictionaries
            values, codes2d = self._dict
            columns = [DictColumn(func(column.values), column.codes)
                       for column in self.columns]
            result = CompressedBlock(columns, self.num_rows, ValueType.FP64, None)
            result._dict = (func(values), codes2d)
            return result
        columns: List[Column] = []
        for column in self.columns:
            if isinstance(column, DictColumn):
                columns.append(DictColumn(func(column.values), column.codes))
            else:
                columns.append(DenseColumn(func(column.data)))
        return CompressedBlock(columns, self.num_rows, ValueType.FP64, None)

    def sum(self) -> float:
        return float(self.col_sums().sum())

    def min(self) -> float:
        """Full min over dictionaries (every dictionary value occurs)."""
        return float(np.min([
            np.min(column.values if isinstance(column, DictColumn) else column.data)
            for column in self.columns
        ]))

    def max(self) -> float:
        return float(np.max([
            np.max(column.values if isinstance(column, DictColumn) else column.data)
            for column in self.columns
        ]))

    def mean(self) -> float:
        return self.sum() / (self.num_rows * self.num_cols)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompressedBlock({self.num_rows}x{self.num_cols},"
            f" ratio={self.compression_ratio():.1f}x,"
            f" dict_cols={self.num_compressed_columns()})"
        )


class CompressedStore:
    """Store-protocol adapter so a :class:`BasicTensorBlock` can hold a
    still-compressed payload.

    A restored spill stays in this form until a kernel asks for the dense
    array (``BasicTensorBlock`` inflates the store in place on first
    ``to_numpy``) or an eligible kernel executes compressed-space.  The
    optional ``on_event`` hook lets the owning buffer pool count
    inflations and compressed-space kernel dispatches.
    """

    __slots__ = ("block", "value_type", "_nnz", "on_event")

    #: Store-protocol flag checked by BasicTensorBlock hot paths (class
    #: attribute so DenseStore/SparseStore pay one attr lookup, no isinstance).
    compressed = True

    def __init__(self, block: CompressedBlock,
                 value_type: Optional[ValueType] = None,
                 nnz: Optional[int] = None,
                 on_event: Optional[Callable[[str], None]] = None):
        self.block = block
        self.value_type = value_type if value_type is not None else block.value_type
        self._nnz = nnz if nnz is not None else block._nnz
        self.on_event = on_event

    # --- store protocol -------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self.block.shape

    @property
    def ndim(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self.block.num_rows * self.block.num_cols

    @property
    def nnz(self) -> int:
        if self._nnz is None:
            self._nnz = self.block.nnz
        return self._nnz

    def memory_size(self) -> int:
        return self.block.memory_size()

    def count(self, event: str) -> None:
        """Report a pool-visible event (no-op outside a pool)."""
        if self.on_event is not None:
            self.on_event(event)

    def inflate(self) -> DenseStore:
        """The exact dense store (counts a ``lazy_inflates`` pool event)."""
        self.count("lazy_inflates")
        return DenseStore(self.block.to_dense_array(), self.value_type, self.nnz)

    def to_numpy(self) -> np.ndarray:
        return self.block.to_dense_array()

    def get(self, index):
        row, col = (int(index[0]), int(index[1])) if len(index) == 2 else (int(index[0]), 0)
        column = self.block.columns[col]
        if isinstance(column, DictColumn):
            return float(column.values[column.codes[row]])
        return float(column.data[row])

    def set(self, index, value) -> None:
        raise TypeError(
            "compressed stores are immutable; inflate the block before writing"
        )

    def astype(self, value_type: ValueType):
        if value_type == self.value_type:
            return self
        return self.inflate().astype(value_type)

    def copy(self) -> "CompressedStore":
        # the compressed payload is never mutated in place (scalar ops
        # return new blocks; writes inflate first), so sharing it is safe
        return CompressedStore(self.block, self.value_type, self._nnz, self.on_event)

    # --- pickling -------------------------------------------------------------
    # on_event closes over the owning pool and must not travel through
    # spills/checkpoints; it is re-attached by whoever deserialises.

    def __getstate__(self):
        return (self.block, self.value_type, self._nnz)

    def __setstate__(self, state) -> None:
        self.block, self.value_type, self._nnz = state
        self.on_event = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompressedStore({self.block!r})"
