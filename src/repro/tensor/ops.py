"""Local tensor-block operation library (paper Figure 3, "TensorBlock Library").

All local CP instructions bottom out here.  Every kernel consumes and
produces :class:`BasicTensorBlock` so layout decisions (dense vs. sparse)
stay inside the tensor layer.  Dense matrix multiplication has two code
paths mirroring the paper's SysDS vs. SysDS-B distinction:

* ``native_blas=True`` — one BLAS call (``numpy.dot``), modelling native
  MKL dispatch;
* ``native_blas=False`` — a tiled, cache-conscious kernel driven from the
  interpreter, modelling SystemDS' multi-threaded Java matmult (good, but
  measurably slower than one fused BLAS call).

Sparse 2D kernels use CSR fast paths throughout.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor.block import BasicTensorBlock
from repro.tensor.compressed import CompressedStore, compressed_eligible
from repro.types import Direction, ValueType

Block = BasicTensorBlock


# ---------------------------------------------------------------------------
# compressed-space execution (paper section 3.4, CLA)
# ---------------------------------------------------------------------------
#
# When the buffer pool restores a spilled block in compressed form
# (``ReproConfig.compressed_exec``), eligible kernels below execute on
# the dictionaries directly; anything not eligible — or any compressed
# kernel that fails — transparently inflates through ``to_numpy`` and
# takes the ordinary dense path (guarded fallback).


def _compressed_scalar(store: CompressedStore, op: str, scalar: float,
                       scalar_left: bool) -> Optional[Block]:
    if not compressed_eligible("scalar", op):
        return None
    try:
        result = store.block.scalar_op(op, float(scalar), scalar_left)
    except Exception:  # noqa: BLE001 - guarded fallback to the dense kernel
        store.count("compressed_kernel_fallbacks")
        return None
    store.count("compressed_kernel_ops")
    return Block(CompressedStore(result, on_event=store.on_event))


def _compressed_aggregate(store: CompressedStore, op: str, direction: Direction):
    if direction == Direction.FULL:
        if not compressed_eligible("agg", op):
            return None
        try:
            value = getattr(store.block, op)()
        except Exception:  # noqa: BLE001
            store.count("compressed_kernel_fallbacks")
            return None
        store.count("compressed_kernel_ops")
        return float(value)
    if direction == Direction.COL and compressed_eligible("agg_col", op):
        try:
            sums = store.block.col_sums()
        except Exception:  # noqa: BLE001
            store.count("compressed_kernel_fallbacks")
            return None
        store.count("compressed_kernel_ops")
        return Block.from_numpy(sums)
    return None


def _compressed_matmult(store: CompressedStore, right: Block,
                        transpose_left: bool = False) -> Optional[Block]:
    kind = "transpose_left" if transpose_left else "dense_rhs"
    if not compressed_eligible("matmult", kind):
        return None
    try:
        rhs = right.to_numpy()
        if transpose_left:
            result = store.block.t_matmult_dense(rhs)
        else:
            result = store.block.matmult_dense(rhs)
    except Exception:  # noqa: BLE001
        store.count("compressed_kernel_fallbacks")
        return None
    store.count("compressed_kernel_ops")
    return Block.from_numpy(result)


# ---------------------------------------------------------------------------
# elementwise binary operations
# ---------------------------------------------------------------------------

_BINARY_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
    "%%": np.mod,
    "%/%": np.floor_divide,
    "min": np.minimum,
    "max": np.maximum,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
    "&": np.logical_and,
    "|": np.logical_or,
    "xor": np.logical_xor,
    "log": lambda a, b: np.log(a) / np.log(b),
}

#: Operations whose result is 0/1 regardless of input types.
_COMPARISON_OPS = frozenset({"<", "<=", ">", ">=", "==", "!=", "&", "|", "xor"})

#: Sparse-safe operations: zero op zero == zero, so sparse*sparse can skip fill-in.
_SPARSE_SAFE = frozenset({"+", "-", "*", "min", "max"})


def binary_op(op: str, left: Block, right: Block) -> Block:
    """Elementwise ``left op right`` with R-style broadcasting.

    Row vectors (1 x m), column vectors (n x 1), and 1x1 blocks broadcast
    against matrices, exactly as in DML.
    """
    func = _BINARY_OPS.get(op)
    if func is None:
        raise ValueError(f"unknown binary op: {op!r}")
    if (
        op in ("*", "+", "-")
        and left.is_sparse
        and right.is_sparse
        and left.ndim == 2
        and left.shape == right.shape
    ):
        a, b = left.to_scipy(), right.to_scipy()
        if op == "*":
            result = a.multiply(b)
        elif op == "+":
            result = a + b
        else:
            result = a - b
        return Block.from_scipy(sp.csr_matrix(result)).compact()
    if op == "*" and left.is_sparse and left.ndim == 2 and not right.is_sparse:
        dense = right.to_numpy()
        if dense.shape == left.shape:
            return Block.from_scipy(sp.csr_matrix(left.to_scipy().multiply(dense))).compact()
    result = func(_numeric(left), _numeric(right))
    return _from_result(result, op)


def binary_scalar(op: str, block: Block, scalar: float, scalar_left: bool = False) -> Block:
    """Elementwise op between a block and a scalar (matrix-scalar instruction)."""
    func = _BINARY_OPS.get(op)
    if func is None:
        raise ValueError(f"unknown binary op: {op!r}")
    if block.store.compressed:
        compressed = _compressed_scalar(block.store, op, scalar, scalar_left)
        if compressed is not None:
            return compressed
    if block.is_sparse and block.ndim == 2 and op == "*" and not scalar_left:
        return Block.from_scipy(block.to_scipy() * scalar).compact()
    if block.is_sparse and block.ndim == 2 and op == "/" and not scalar_left:
        return Block.from_scipy(block.to_scipy() / scalar).compact()
    data = _numeric(block)
    result = func(scalar, data) if scalar_left else func(data, scalar)
    return _from_result(result, op)


def _numeric(block: Block) -> np.ndarray:
    if not block.value_type.is_numeric:
        raise ValueError(f"numeric kernel on {block.value_type.value} block")
    return block.to_numpy()


def _from_result(result: np.ndarray, op: str) -> Block:
    if op in _COMPARISON_OPS:
        result = result.astype(np.float64)
    if result.dtype == np.bool_:
        result = result.astype(np.float64)
    return Block.from_numpy(np.atleast_2d(result) if result.ndim < 2 else result)


# ---------------------------------------------------------------------------
# elementwise unary operations
# ---------------------------------------------------------------------------

_UNARY_OPS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "uminus": np.negative,
    "!": lambda a: np.logical_not(a).astype(np.float64),
    "sigmoid": lambda a: 1.0 / (1.0 + np.exp(-a)),
    "sprop": lambda a: a * (1.0 - a),  # sample proportion, used in logreg
    "isnan": lambda a: np.isnan(a).astype(np.float64),
}

#: Unary ops with f(0) == 0 keep sparse blocks sparse.
_UNARY_SPARSE_SAFE = frozenset({"abs", "round", "floor", "ceil", "sign", "sqrt", "sin", "tan", "uminus", "sinh", "tanh", "asin", "atan", "sprop"})


def unary_op(op: str, block: Block) -> Block:
    func = _UNARY_OPS.get(op)
    if func is None:
        raise ValueError(f"unknown unary op: {op!r}")
    if block.is_sparse and block.ndim == 2 and op in _UNARY_SPARSE_SAFE:
        csr = block.to_scipy().copy()
        csr.data = func(csr.data)
        return Block.from_scipy(csr).compact()
    return Block.from_numpy(func(_numeric(block)).astype(np.float64))


def cumulative_op(op: str, block: Block) -> Block:
    """Column-wise cumulative aggregates (cumsum, cumprod, cummin, cummax)."""
    funcs = {
        "cumsum": np.cumsum,
        "cumprod": np.cumprod,
        "cummin": np.minimum.accumulate,
        "cummax": np.maximum.accumulate,
    }
    func = funcs.get(op)
    if func is None:
        raise ValueError(f"unknown cumulative op: {op!r}")
    return Block.from_numpy(func(_numeric(block), axis=0).astype(np.float64))


# ---------------------------------------------------------------------------
# aggregations
# ---------------------------------------------------------------------------

_AGGREGATE_FUNCS = {
    "sum": np.sum,
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
    "var": lambda a, axis: np.var(a, axis=axis, ddof=1),
    "sd": lambda a, axis: np.std(a, axis=axis, ddof=1),
    "prod": np.prod,
}


def aggregate(op: str, block: Block, direction: Direction = Direction.FULL):
    """Full/row/column aggregates.

    Full aggregates return a Python float; partial aggregates return a
    vector block (row aggregates -> n x 1, column aggregates -> 1 x m).
    """
    if block.store.compressed:
        compressed = _compressed_aggregate(block.store, op, direction)
        if compressed is not None:
            return compressed
    if block.is_sparse and block.ndim == 2:
        return _aggregate_sparse(op, block, direction)
    data = _numeric(block)
    axis = None if direction == Direction.FULL else (1 if direction == Direction.ROW else 0)
    func = _AGGREGATE_FUNCS.get(op)
    if func is None:
        raise ValueError(f"unknown aggregate: {op!r}")
    result = func(data, axis=axis)
    if direction == Direction.FULL:
        return float(result)
    if direction == Direction.ROW:
        return Block.from_numpy(np.asarray(result, dtype=np.float64).reshape(-1, 1))
    return Block.from_numpy(np.asarray(result, dtype=np.float64).reshape(1, -1))


def _aggregate_dense_array(op: str, data: np.ndarray, direction: Direction):
    axis = None if direction == Direction.FULL else (1 if direction == Direction.ROW else 0)
    funcs = {
        "sum": np.sum,
        "mean": np.mean,
        "min": np.min,
        "max": np.max,
        "var": lambda a, axis: np.var(a, axis=axis, ddof=1),
        "sd": lambda a, axis: np.std(a, axis=axis, ddof=1),
        "prod": np.prod,
    }
    result = funcs[op](data, axis=axis)
    if direction == Direction.FULL:
        return float(result)
    shape = (-1, 1) if direction == Direction.ROW else (1, -1)
    return Block.from_numpy(np.asarray(result, dtype=np.float64).reshape(shape))


def _aggregate_sparse(op: str, block: Block, direction: Direction):
    csr = block.to_scipy()
    axis = None if direction == Direction.FULL else (1 if direction == Direction.ROW else 0)
    if op == "sum":
        result = csr.sum(axis=axis)
    elif op == "mean":
        result = csr.mean(axis=axis)
    elif op in ("min", "max", "var", "sd", "prod"):
        # no CSR fast path: densify once and aggregate on the raw array
        return _aggregate_dense_array(op, block.to_numpy(), direction)
    else:
        raise ValueError(f"unknown aggregate: {op!r}")
    if direction == Direction.FULL:
        return float(result)
    result = np.asarray(result, dtype=np.float64)
    shape = (-1, 1) if direction == Direction.ROW else (1, -1)
    return Block.from_numpy(result.reshape(shape))


def row_index_extreme(block: Block, use_max: bool = True) -> Block:
    """1-based index of the row-wise max (rowIndexMax) or min (rowIndexMin)."""
    data = _numeric(block)
    indices = np.argmax(data, axis=1) if use_max else np.argmin(data, axis=1)
    return Block.from_numpy((indices + 1).astype(np.float64).reshape(-1, 1))


def trace(block: Block) -> float:
    data = _numeric(block)
    if data.ndim != 2 or data.shape[0] != data.shape[1]:
        raise ValueError(f"trace requires a square matrix, got {block.shape}")
    return float(np.trace(data))


# ---------------------------------------------------------------------------
# matrix multiplication (the SysDS / SysDS-B distinction)
# ---------------------------------------------------------------------------


def matmult(
    left: Block,
    right: Block,
    native_blas: bool = True,
    tile: int = 64,
) -> Block:
    """``left %*% right`` with sparse fast paths and two dense kernels."""
    if left.ndim != 2 or right.ndim != 2:
        raise ValueError("matmult requires 2D blocks")
    if left.num_cols != right.num_rows:
        raise ValueError(f"dimension mismatch: {left.shape} %*% {right.shape}")
    if left.store.compressed and not right.is_sparse:
        compressed = _compressed_matmult(left.store, right)
        if compressed is not None:
            return compressed
    if left.is_sparse or right.is_sparse:
        a = left.to_scipy() if left.is_sparse else left.to_numpy()
        b = right.to_scipy() if right.is_sparse else right.to_numpy()
        result = a @ b
        if sp.issparse(result):
            return Block.from_scipy(sp.csr_matrix(result)).compact()
        return Block.from_numpy(np.asarray(result))
    a = left.to_numpy().astype(np.float64, copy=False)
    b = right.to_numpy().astype(np.float64, copy=False)
    if native_blas:
        return Block.from_numpy(a @ b)
    return Block.from_numpy(_tiled_matmult(a, b, tile))


def _tiled_matmult(a: np.ndarray, b: np.ndarray, tile: int) -> np.ndarray:
    """Cache-conscious tiled matmult driven from the interpreter.

    Models SystemDS' Java kernels: well-blocked, multi-thread-friendly, but
    without one fused native BLAS call — per-tile dispatch overhead makes it
    a constant factor slower, matching the ~2.1x gap reported in the paper.
    """
    n, k = a.shape
    m = b.shape[1]
    out = np.zeros((n, m), dtype=np.float64)
    for i0 in range(0, n, tile):
        i1 = min(i0 + tile, n)
        for k0 in range(0, k, tile):
            k1 = min(k0 + tile, k)
            a_tile = a[i0:i1, k0:k1]
            for j0 in range(0, m, tile):
                j1 = min(j0 + tile, m)
                out[i0:i1, j0:j1] += a_tile @ b[k0:k1, j0:j1]
    return out


def tsmm(block: Block, native_blas: bool = True, tile: int = 64) -> Block:
    """Fused transpose-self matrix multiply ``t(X) %*% X``.

    The fused form avoids materialising ``t(X)`` — the optimisation the
    paper had to apply by hand in TensorFlow.
    """
    if block.is_sparse:
        csr = block.to_scipy()
        return Block.from_numpy(np.asarray((csr.T @ csr).todense()))
    data = block.to_numpy().astype(np.float64, copy=False)
    if native_blas:
        return Block.from_numpy(data.T @ data)
    return Block.from_numpy(_tiled_matmult(np.ascontiguousarray(data.T), data, tile))


def mapmm_transpose_left(left: Block, right: Block, native_blas: bool = True, tile: int = 64) -> Block:
    """Fused ``t(left) %*% right`` without materialising the transpose."""
    if left.store.compressed and not right.is_sparse:
        compressed = _compressed_matmult(left.store, right, transpose_left=True)
        if compressed is not None:
            return compressed
    if left.is_sparse:
        a = left.to_scipy().T
        b = right.to_scipy() if right.is_sparse else right.to_numpy()
        result = a @ b
        if sp.issparse(result):
            return Block.from_scipy(sp.csr_matrix(result)).compact()
        return Block.from_numpy(np.asarray(result))
    a = left.to_numpy().astype(np.float64, copy=False).T
    b = right.to_numpy() if not right.is_sparse else np.asarray(right.to_scipy().todense())
    if native_blas:
        return Block.from_numpy(a @ b)
    return Block.from_numpy(_tiled_matmult(np.ascontiguousarray(a), np.asarray(b, dtype=np.float64), tile))


# ---------------------------------------------------------------------------
# reorganisation
# ---------------------------------------------------------------------------


def transpose(block: Block) -> Block:
    if block.ndim != 2:
        raise ValueError("transpose requires a 2D block")
    if block.is_sparse:
        return Block.from_scipy(block.to_scipy().T.tocsr())
    return Block.from_numpy(np.ascontiguousarray(block.to_numpy().T))


def rev(block: Block) -> Block:
    """Reverse the row order."""
    return Block.from_numpy(block.to_numpy()[::-1].copy())


def diag(block: Block) -> Block:
    """Vector -> diagonal matrix; matrix -> main-diagonal column vector."""
    data = _numeric(block)
    if data.ndim != 2:
        raise ValueError("diag requires a 2D block")
    if data.shape[1] == 1:
        return Block.from_numpy(np.diagflat(data[:, 0]))
    return Block.from_numpy(np.diagonal(data).astype(np.float64).reshape(-1, 1).copy())


def reshape(block: Block, rows: int, cols: int, byrow: bool = True) -> Block:
    data = block.to_numpy()
    order = "C" if byrow else "F"
    return Block.from_numpy(data.reshape((rows, cols), order=order).copy())


def cbind(blocks: Sequence[Block]) -> Block:
    rows = {b.num_rows for b in blocks}
    if len(rows) > 1:
        raise ValueError(f"cbind with mismatching row counts: {sorted(rows)}")
    if all(b.is_sparse and b.ndim == 2 for b in blocks):
        return Block.from_scipy(sp.hstack([b.to_scipy() for b in blocks]).tocsr()).compact()
    return Block.from_numpy(np.concatenate([_as_2d(b) for b in blocks], axis=1))


def rbind(blocks: Sequence[Block]) -> Block:
    cols = {b.num_cols for b in blocks}
    if len(cols) > 1:
        raise ValueError(f"rbind with mismatching column counts: {sorted(cols)}")
    if all(b.is_sparse and b.ndim == 2 for b in blocks):
        return Block.from_scipy(sp.vstack([b.to_scipy() for b in blocks]).tocsr()).compact()
    return Block.from_numpy(np.concatenate([_as_2d(b) for b in blocks], axis=0))


def _as_2d(block: Block) -> np.ndarray:
    data = block.to_numpy()
    return data if data.ndim == 2 else np.atleast_2d(data)


# ---------------------------------------------------------------------------
# indexing
# ---------------------------------------------------------------------------


def right_index(block: Block, ranges: Sequence[Tuple[int, int]]) -> Block:
    """Range indexing ``X[rl:ru, cl:cu, ...]`` with 0-based half-open ranges.

    The language layer converts DML's 1-based inclusive ranges before
    calling this kernel.
    """
    if len(ranges) != block.ndim:
        raise ValueError(f"{len(ranges)} ranges for {block.ndim}D block")
    for d, (lo, hi) in enumerate(ranges):
        if not 0 <= lo < hi <= block.shape[d]:
            raise IndexError(f"range {lo}:{hi} out of bounds for dim {d} of size {block.shape[d]}")
    if block.is_sparse and block.ndim == 2:
        (rl, ru), (cl, cu) = ranges
        return Block.from_scipy(block.to_scipy()[rl:ru, cl:cu]).compact()
    selector = tuple(slice(lo, hi) for lo, hi in ranges)
    return Block.from_numpy(block.to_numpy()[selector].copy(), block.value_type)


def left_index(target: Block, source: Block, ranges: Sequence[Tuple[int, int]]) -> Block:
    """Left indexing ``X[rl:ru, cl:cu] = Y`` (copy-on-write semantics)."""
    if len(ranges) != target.ndim:
        raise ValueError(f"{len(ranges)} ranges for {target.ndim}D block")
    expected = tuple(hi - lo for lo, hi in ranges)
    if source.shape != expected:
        raise ValueError(f"left-index source shape {source.shape} != range shape {expected}")
    data = target.to_numpy().copy()
    selector = tuple(slice(lo, hi) for lo, hi in ranges)
    data[selector] = source.to_numpy()
    return Block.from_numpy(data, target.value_type)


def left_index_scalar(target: Block, value: float, ranges: Sequence[Tuple[int, int]]) -> Block:
    data = target.to_numpy().copy()
    selector = tuple(slice(lo, hi) for lo, hi in ranges)
    data[selector] = value
    return Block.from_numpy(data, target.value_type)


# ---------------------------------------------------------------------------
# linear solvers and decompositions
# ---------------------------------------------------------------------------


def solve(a: Block, b: Block) -> Block:
    """Solve the linear system ``a %*% x = b``."""
    a_dense = _numeric(a) if not a.is_sparse else a.to_numpy()
    b_dense = _numeric(b) if not b.is_sparse else b.to_numpy()
    return Block.from_numpy(np.linalg.solve(a_dense.astype(np.float64), b_dense.astype(np.float64)))


def inverse(block: Block) -> Block:
    return Block.from_numpy(np.linalg.inv(_numeric(block).astype(np.float64)))


def cholesky(block: Block) -> Block:
    return Block.from_numpy(np.linalg.cholesky(_numeric(block).astype(np.float64)))


def eigen(block: Block) -> Tuple[Block, Block]:
    """Eigenvalues (descending, as column vector) and eigenvectors of a symmetric matrix."""
    values, vectors = np.linalg.eigh(_numeric(block).astype(np.float64))
    order = np.argsort(values)[::-1]
    return (
        Block.from_numpy(values[order].reshape(-1, 1)),
        Block.from_numpy(np.ascontiguousarray(vectors[:, order])),
    )


def svd(block: Block) -> Tuple[Block, Block, Block]:
    u, s, vt_arr = np.linalg.svd(_numeric(block).astype(np.float64), full_matrices=False)
    return (
        Block.from_numpy(u),
        Block.from_numpy(s.reshape(-1, 1)),
        Block.from_numpy(np.ascontiguousarray(vt_arr.T)),
    )


# ---------------------------------------------------------------------------
# data-centric reorganisation (table, order, removeEmpty, replace, ...)
# ---------------------------------------------------------------------------


def table(
    rows: Block,
    cols: Block,
    weights: Optional[Block] = None,
    out_rows: Optional[int] = None,
    out_cols: Optional[int] = None,
) -> Block:
    """Contingency table: out[i, j] = sum of weights where rows==i+1, cols==j+1.

    ``out_rows``/``out_cols`` fix the output dimensions (entries beyond them
    are dropped), matching DML's ``table(a, b, dim1, dim2)``.
    """
    r = _numeric(rows).reshape(-1).astype(np.int64)
    c = _numeric(cols).reshape(-1).astype(np.int64)
    if r.shape != c.shape:
        raise ValueError("table requires equal-length inputs")
    if r.size and (r.min() < 1 or c.min() < 1):
        raise ValueError("table requires positive (1-based) category ids")
    w = _numeric(weights).reshape(-1) if weights is not None else np.ones_like(r, dtype=np.float64)
    n_rows = out_rows if out_rows is not None else (int(r.max()) if r.size else 0)
    n_cols = out_cols if out_cols is not None else (int(c.max()) if c.size else 0)
    out = np.zeros((max(n_rows, 1), max(n_cols, 1)), dtype=np.float64)
    keep = (r <= out.shape[0]) & (c <= out.shape[1])
    np.add.at(out, (r[keep] - 1, c[keep] - 1), w[keep])
    return Block.from_numpy(out)


def order(block: Block, by: int = 1, decreasing: bool = False, index_return: bool = False) -> Block:
    """Sort rows by one column (1-based); optionally return 1-based permutation."""
    data = _numeric(block)
    if not 1 <= by <= data.shape[1]:
        raise ValueError(f"order by column {by} out of range")
    key = data[:, by - 1]
    perm = np.argsort(key, kind="stable")
    if decreasing:
        perm = perm[::-1]
    if index_return:
        return Block.from_numpy((perm + 1).astype(np.float64).reshape(-1, 1))
    return Block.from_numpy(data[perm].copy())


def remove_empty(block: Block, margin: str = "rows", select: Optional[Block] = None) -> Block:
    """Remove empty (all-zero) rows or columns, optionally via a select vector."""
    data = block.to_numpy()
    axis = 1 if margin == "rows" else 0
    if select is not None:
        mask = _numeric(select).reshape(-1) != 0
    else:
        mask = np.any(data != 0, axis=axis)
    if margin == "rows":
        result = data[mask]
        if result.shape[0] == 0:
            result = np.zeros((1, data.shape[1]))
    else:
        result = data[:, mask]
        if result.shape[1] == 0:
            result = np.zeros((data.shape[0], 1))
    return Block.from_numpy(result.copy())


def replace(block: Block, pattern: float, replacement: float) -> Block:
    data = block.to_numpy().astype(np.float64).copy()
    if math.isnan(pattern):
        data[np.isnan(data)] = replacement
    else:
        data[data == pattern] = replacement
    return Block.from_numpy(data)


def outer(left: Block, right: Block, op: str = "*") -> Block:
    func = _BINARY_OPS.get(op)
    if func is None:
        raise ValueError(f"unknown outer op: {op!r}")
    a = _numeric(left).reshape(-1, 1)
    b = _numeric(right).reshape(1, -1)
    return _from_result(func(a, b), op)


def ternary_ifelse(cond: Block, then_val, else_val) -> Block:
    """Elementwise ifelse; then/else may be blocks or scalars."""
    mask = _numeric(cond) != 0
    then_arr = then_val.to_numpy() if isinstance(then_val, Block) else then_val
    else_arr = else_val.to_numpy() if isinstance(else_val, Block) else else_val
    return Block.from_numpy(np.where(mask, then_arr, else_arr).astype(np.float64))


def quantile(block: Block, probabilities: Block) -> Block:
    data = np.sort(_numeric(block).reshape(-1))
    probs = _numeric(probabilities).reshape(-1)
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("quantile probabilities must be in [0, 1]")
    # R type-1 (inverse ECDF) quantiles, as in SystemDS
    n = data.size
    positions = np.maximum(np.ceil(probs * n).astype(int) - 1, 0)
    return Block.from_numpy(data[positions].reshape(-1, 1))


def seq(start: float, stop: float, step: float = 1.0) -> Block:
    """The DML ``seq(from, to, incr)`` column vector (inclusive bounds)."""
    if step == 0:
        raise ValueError("seq step must be non-zero")
    count = int(math.floor((stop - start) / step + 1e-10)) + 1
    if count <= 0:
        return Block.from_numpy(np.zeros((0, 1)))
    values = start + step * np.arange(count, dtype=np.float64)
    return Block.from_numpy(values.reshape(-1, 1))


def sample(population: int, size: int, replace_draws: bool = False, seed: Optional[int] = None) -> Block:
    rng = np.random.default_rng(seed)
    values = rng.choice(np.arange(1, population + 1), size=size, replace=replace_draws)
    return Block.from_numpy(values.astype(np.float64).reshape(-1, 1))
