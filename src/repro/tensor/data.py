"""The heterogeneous ``DataTensorBlock`` (paper section 2.4, Figure 4(a)).

A data tensor is a multi-dimensional array whose *second* dimension carries a
schema: each index along dimension 2 has its own value type (e.g., sensor
readings as FP64, flags as BOOLEAN, categories as STRING).  This generalises
2D datasets to n dimensions while keeping range indexing well-defined.

Internally the block is composed of multiple :class:`BasicTensorBlock`
instances — one per maximal run of equally-typed schema positions — exactly
as the paper describes ("composed of multiple basic tensors for the given
schema").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.tensor.block import BasicTensorBlock
from repro.types import ValueType


def _column_groups(schema: Sequence[ValueType]) -> List[Tuple[int, int, ValueType]]:
    """Split the schema into maximal (start, stop, value_type) runs."""
    groups = []
    start = 0
    for i in range(1, len(schema) + 1):
        if i == len(schema) or schema[i] != schema[start]:
            groups.append((start, i, schema[start]))
            start = i
    return groups


class DataTensorBlock:
    """A heterogeneous tensor with a schema on the second dimension."""

    __slots__ = ("_shape", "schema", "groups", "blocks")

    def __init__(self, shape: Sequence[int], schema: Sequence[ValueType], blocks: List[BasicTensorBlock]):
        self._shape = tuple(int(d) for d in shape)
        if len(self._shape) < 2:
            raise ValueError("data tensors require at least 2 dimensions")
        if len(schema) != self._shape[1]:
            raise ValueError(
                f"schema length {len(schema)} does not match dim-2 size {self._shape[1]}"
            )
        self.schema = list(schema)
        self.groups = _column_groups(self.schema)
        if len(blocks) != len(self.groups):
            raise ValueError("one basic tensor per schema group required")
        for block, (start, stop, vt) in zip(blocks, self.groups):
            expected = self._shape[:1] + (stop - start,) + self._shape[2:]
            if block.shape != expected:
                raise ValueError(f"group block shape {block.shape} != expected {expected}")
            if block.value_type != vt:
                raise ValueError("group block value type does not match schema")
        self.blocks = blocks

    # --- constructors -----------------------------------------------------------

    @classmethod
    def zeros(cls, shape: Sequence[int], schema: Sequence[ValueType]) -> "DataTensorBlock":
        shape = tuple(int(d) for d in shape)
        blocks = []
        for start, stop, vt in _column_groups(list(schema)):
            group_shape = shape[:1] + (stop - start,) + shape[2:]
            blocks.append(BasicTensorBlock.zeros(group_shape, vt))
        return cls(shape, list(schema), blocks)

    @classmethod
    def from_columns(cls, columns: Sequence[np.ndarray], schema: Sequence[ValueType]) -> "DataTensorBlock":
        """Build a 2D data tensor from per-column arrays."""
        if len(columns) != len(schema):
            raise ValueError("one column per schema entry required")
        n_rows = len(columns[0]) if columns else 0
        shape = (n_rows, len(columns))
        blocks = []
        for start, stop, vt in _column_groups(list(schema)):
            group = np.column_stack([np.asarray(columns[j]) for j in range(start, stop)])
            if vt == ValueType.STRING:
                group = group.astype(object)
            else:
                group = group.astype(vt.numpy_dtype)
            blocks.append(BasicTensorBlock.from_numpy(group, vt))
        return cls(shape, list(schema), blocks)

    # --- basic properties ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def num_rows(self) -> int:
        return self._shape[0]

    def memory_size(self) -> int:
        return sum(block.memory_size() for block in self.blocks)

    # --- cell access -------------------------------------------------------------------

    def _locate(self, schema_index: int) -> Tuple[int, int]:
        """Map a dim-2 index to (group number, offset within group)."""
        for g, (start, stop, _vt) in enumerate(self.groups):
            if start <= schema_index < stop:
                return g, schema_index - start
        raise IndexError(f"schema index {schema_index} out of range")

    def get(self, index: Tuple[int, ...]):
        group, offset = self._locate(index[1])
        inner = index[:1] + (offset,) + index[2:]
        return self.blocks[group].get(inner)

    def set(self, index: Tuple[int, ...], value) -> None:
        group, offset = self._locate(index[1])
        inner = index[:1] + (offset,) + index[2:]
        self.blocks[group].set(inner, value)

    # --- projections ----------------------------------------------------------------------

    def column(self, schema_index: int) -> BasicTensorBlock:
        """The basic tensor holding one dim-2 slice (shape n x 1 x ...)."""
        group, offset = self._locate(schema_index)
        data = self.blocks[group].to_numpy()
        selector = (slice(None), slice(offset, offset + 1)) + (slice(None),) * (self.ndim - 2)
        return BasicTensorBlock.from_numpy(data[selector], self.schema[schema_index])

    def numeric_view(self) -> BasicTensorBlock:
        """All numeric schema positions as one homogeneous FP64 tensor.

        This is the bridge from prepared heterogeneous data into linear
        algebra: string positions are excluded.
        """
        pieces = []
        for block, (_start, _stop, vt) in zip(self.blocks, self.groups):
            if vt.is_numeric:
                pieces.append(block.to_numpy().astype(np.float64))
        if not pieces:
            raise ValueError("data tensor has no numeric schema positions")
        return BasicTensorBlock.from_numpy(np.concatenate(pieces, axis=1))

    def slice_rows(self, start: int, stop: int) -> "DataTensorBlock":
        shape = (stop - start,) + self._shape[1:]
        blocks = []
        for block in self.blocks:
            data = block.to_numpy()[start:stop]
            blocks.append(BasicTensorBlock.from_numpy(data, block.value_type))
        return DataTensorBlock(shape, self.schema, blocks)

    def equals(self, other: "DataTensorBlock") -> bool:
        if self._shape != other.shape or self.schema != other.schema:
            return False
        return all(a.equals(b) for a, b in zip(self.blocks, other.blocks))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        types = ",".join(vt.value for vt in self.schema[:8])
        suffix = ",..." if len(self.schema) > 8 else ""
        return f"DataTensorBlock(shape={self._shape}, schema=[{types}{suffix}])"
