"""Sparse physical representation of a tensor block.

Two layouts are used, mirroring SystemDS' split between optimised 2D sparse
matrix blocks and generic sparse tensors:

* 2D blocks are stored in CSR form (``scipy.sparse.csr_matrix``) so that the
  compute-heavy sparse kernels (sparse-dense matmult, row aggregates) run on
  optimised code.
* N-dimensional blocks (ndim != 2) are stored in coordinate (COO) form as a
  ``(coords, values)`` pair of NumPy arrays.

Both layouts expose the same small protocol consumed by
:class:`~repro.tensor.block.BasicTensorBlock`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.types import ValueType


class SparseStore:
    """Sparse storage for one tensor block (CSR for 2D, COO otherwise)."""

    __slots__ = ("_shape", "value_type", "csr", "coords", "values")

    #: Store-protocol flag: only CompressedStore payloads are compressed.
    compressed = False

    def __init__(
        self,
        shape: Sequence[int],
        value_type: ValueType,
        csr: sp.csr_matrix = None,
        coords: np.ndarray = None,
        values: np.ndarray = None,
    ):
        if not value_type.is_numeric:
            raise ValueError("sparse blocks support numeric value types only")
        self._shape = tuple(int(d) for d in shape)
        self.value_type = value_type
        if len(self._shape) == 2:
            if csr is None:
                csr = sp.csr_matrix(self._shape, dtype=value_type.numpy_dtype)
            self.csr = csr
            self.coords = None
            self.values = None
        else:
            if coords is None:
                coords = np.zeros((0, len(self._shape)), dtype=np.int64)
                values = np.zeros(0, dtype=value_type.numpy_dtype)
            self.csr = None
            self.coords = coords
            self.values = values

    # --- constructors ---------------------------------------------------------

    @classmethod
    def from_numpy(cls, array: np.ndarray, value_type: ValueType = None) -> "SparseStore":
        array = np.asarray(array)
        if value_type is None:
            value_type = ValueType.from_numpy_dtype(array.dtype)
        if array.ndim == 2:
            return cls(array.shape, value_type, csr=sp.csr_matrix(array))
        coords = np.argwhere(array != 0).astype(np.int64)
        values = array[tuple(coords.T)] if coords.size else np.zeros(0, array.dtype)
        return cls(array.shape, value_type, coords=coords, values=np.asarray(values))

    @classmethod
    def from_scipy(cls, matrix, value_type: ValueType = None) -> "SparseStore":
        csr = matrix.tocsr()
        if value_type is None:
            value_type = ValueType.from_numpy_dtype(csr.dtype)
        return cls(csr.shape, value_type, csr=csr)

    @classmethod
    def empty(cls, shape: Sequence[int], value_type: ValueType = ValueType.FP64) -> "SparseStore":
        return cls(shape, value_type)

    # --- basic properties --------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def size(self) -> int:
        return int(np.prod(self._shape)) if self._shape else 1

    @property
    def nnz(self) -> int:
        if self.csr is not None:
            return int(self.csr.nnz)
        return int(self.values.shape[0])

    def memory_size(self) -> int:
        """Approximate in-memory footprint in bytes (CSR: 12 bytes/nnz + rows)."""
        cell = self.value_type.numpy_dtype.itemsize
        if self.csr is not None:
            return int(self.nnz * (cell + 4) + (self._shape[0] + 1) * 8)
        return int(self.nnz * (cell + 8 * self.ndim))

    # --- cell access ----------------------------------------------------------------

    def get(self, index: Tuple[int, ...]):
        if self.csr is not None:
            return self.csr[index[0], index[1]].item() if hasattr(
                self.csr[index[0], index[1]], "item"
            ) else self.csr[index[0], index[1]]
        mask = np.all(self.coords == np.asarray(index, dtype=np.int64), axis=1)
        hits = np.flatnonzero(mask)
        if hits.size == 0:
            return self.value_type.numpy_dtype.type(0).item()
        return self.values[hits[0]].item()

    def set(self, index: Tuple[int, ...], value) -> None:
        if self.csr is not None:
            lil = self.csr.tolil()
            lil[index[0], index[1]] = value
            self.csr = lil.tocsr()
            return
        mask = np.all(self.coords == np.asarray(index, dtype=np.int64), axis=1)
        hits = np.flatnonzero(mask)
        if hits.size:
            self.values[hits[0]] = value
        else:
            self.coords = np.vstack([self.coords, np.asarray([index], dtype=np.int64)])
            self.values = np.append(self.values, value)

    # --- conversions -----------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        if self.csr is not None:
            return np.asarray(self.csr.todense())
        dense = np.zeros(self._shape, dtype=self.value_type.numpy_dtype)
        if self.nnz:
            dense[tuple(self.coords.T)] = self.values
        return dense

    def to_scipy(self) -> sp.csr_matrix:
        if self.csr is None:
            raise ValueError("only 2D sparse blocks have a CSR representation")
        return self.csr

    def astype(self, value_type: ValueType) -> "SparseStore":
        if value_type == self.value_type:
            return self
        if self.csr is not None:
            return SparseStore(self._shape, value_type, csr=self.csr.astype(value_type.numpy_dtype))
        return SparseStore(
            self._shape,
            value_type,
            coords=self.coords.copy(),
            values=self.values.astype(value_type.numpy_dtype),
        )

    def copy(self) -> "SparseStore":
        if self.csr is not None:
            return SparseStore(self._shape, self.value_type, csr=self.csr.copy())
        return SparseStore(
            self._shape, self.value_type, coords=self.coords.copy(), values=self.values.copy()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SparseStore(shape={self._shape}, nnz={self.nnz}, vt={self.value_type.value})"
