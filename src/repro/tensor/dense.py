"""Dense physical representation of a tensor block.

A :class:`DenseStore` is a thin, typed wrapper around a contiguous NumPy
array.  Like SystemDS' ``DenseBlock`` it is a *linearised* multi-dimensional
array of one value type; all shape/type bookkeeping that the runtime relies
on lives here rather than leaking raw ``ndarray`` objects through the stack.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.types import ValueType


class DenseStore:
    """Dense, linearised storage for one :class:`BasicTensorBlock`."""

    __slots__ = ("array", "value_type", "_nnz")

    #: Store-protocol flag: only CompressedStore payloads are compressed.
    compressed = False

    def __init__(self, array: np.ndarray, value_type: ValueType,
                 nnz: Optional[int] = None):
        expected = value_type.numpy_dtype
        if array.dtype != expected:
            array = array.astype(expected)
        self.array = array
        self.value_type = value_type
        #: Cached non-zero count: computing it is a full-array scan, and the
        #: runtime asks for it repeatedly (metadata refresh on every
        #: MatrixObject bind, trace guards, plan signatures).  ``compact()``
        #: seeds it from the count it takes anyway; cell writes invalidate.
        self._nnz = nnz

    # --- constructors -------------------------------------------------------

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "DenseStore":
        array = np.asarray(array)
        return cls(array, ValueType.from_numpy_dtype(array.dtype))

    @classmethod
    def zeros(cls, shape: Sequence[int], value_type: ValueType = ValueType.FP64) -> "DenseStore":
        if value_type == ValueType.STRING:
            array = np.full(tuple(shape), "", dtype=object)
        else:
            array = np.zeros(tuple(shape), dtype=value_type.numpy_dtype)
        return cls(array, value_type)

    @classmethod
    def full(cls, shape: Sequence[int], value, value_type: ValueType = ValueType.FP64) -> "DenseStore":
        array = np.full(tuple(shape), value, dtype=value_type.numpy_dtype)
        return cls(array, value_type)

    # --- basic properties ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape

    @property
    def ndim(self) -> int:
        return self.array.ndim

    @property
    def size(self) -> int:
        return int(self.array.size)

    @property
    def nnz(self) -> int:
        """Number of non-zero (non-empty for strings) cells (cached)."""
        if self._nnz is None:
            if self.value_type == ValueType.STRING:
                self._nnz = int(np.count_nonzero(self.array != ""))
            else:
                self._nnz = int(np.count_nonzero(self.array))
        return self._nnz

    def memory_size(self) -> int:
        """Approximate in-memory footprint in bytes."""
        if self.value_type == ValueType.STRING:
            # object array: pointer per cell plus average string payload
            payload = sum(len(str(v)) for v in self.array.ravel()[:1024])
            sampled = min(self.size, 1024) or 1
            return self.size * (8 + payload // sampled)
        return int(self.array.nbytes)

    # --- cell access -----------------------------------------------------------

    def get(self, index: Tuple[int, ...]):
        value = self.array[tuple(index)]
        return value.item() if hasattr(value, "item") else value

    def set(self, index: Tuple[int, ...], value) -> None:
        self.array[tuple(index)] = value
        self._nnz = None  # cell write: the cached count is stale

    # --- conversions ----------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        return self.array

    def astype(self, value_type: ValueType) -> "DenseStore":
        if value_type == self.value_type:
            return self
        return DenseStore(self.array.astype(value_type.numpy_dtype), value_type)

    def copy(self) -> "DenseStore":
        return DenseStore(self.array.copy(), self.value_type, self._nnz)

    def iter_cells(self) -> Iterable[Tuple[Tuple[int, ...], object]]:
        """Iterate (index, value) over all cells (test/debug helper)."""
        for index in np.ndindex(*self.shape):
            yield index, self.get(index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DenseStore(shape={self.shape}, vt={self.value_type.value})"
