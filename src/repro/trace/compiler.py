"""Compilation of one hot basic block into a fused trace callable.

A compiled trace replaces the per-instruction interpreter loop with a flat
sequence of pre-bound step closures operating on a positional *slot* array:

* operand resolution (symbol-table dict lookups, literal unwrapping, the
  ``isinstance`` dispatch ladders of :mod:`repro.runtime.instructions.cp`)
  happens once, at compile time, against the kinds observed in the live
  symbol table;
* intermediate results stay raw :class:`BasicTensorBlock`/`ScalarObject`
  values in slots — block-local temporaries never touch the buffer pool or
  the symbol table;
* the stats/lineage/reuse hooks of ``execute_instruction`` are hoisted to
  trace entry/exit by the cache (lineage is replayed exactly, in
  instruction order, after the steps run — see
  :meth:`CompiledTrace.replay_lineage`).

Every step calls the *same* kernel functions the interpreter calls
(:mod:`repro.tensor.ops`, ``_scalar_binary``, the codegen region
functions), so a traced run is bit-identical to the interpreted run — the
guarantee the ``traced`` qa lattice config checks differentially.

Compilation is conservative: any instruction whose semantics cannot be
frozen against the observed operand kinds (side effects, seed-stream
consumers, nested interpretation, frames/lists, non-CP backends) raises
:class:`TraceVeto` and the block stays interpreted forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.data import MatrixObject, ScalarObject
from repro.runtime.instructions import cp
from repro.runtime.instructions.base import Operand
from repro.tensor import BasicTensorBlock
from repro.tensor import ops
from repro.types import Direction, ExecType

#: Compile-time operand kinds.  Only scalars and local matrices trace;
#: frames, lists, tensors, and non-local representations veto.
KIND_SCALAR = "scalar"
KIND_MATRIX = "matrix"


class TraceVeto(Exception):
    """Raised during compilation when a block cannot be traced."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CompiledTrace:
    """One basic block fused into guards + steps + exports."""

    __slots__ = (
        "config", "instructions", "n_slots", "template", "loads", "steps",
        "exports", "removes", "stat_slots", "temp_names", "n_instructions",
    )

    def __init__(self, config, instructions, n_slots, template, loads, steps,
                 exports, removes, stat_slots, temp_names):
        #: The config the trace was compiled against (identity guard).
        self.config = config
        #: Strong reference anchoring the instruction-list identity the
        #: cache keys on (and the source of the lineage replay).
        self.instructions = instructions
        self.n_slots = n_slots
        #: Slot array template with literal constants pre-placed.
        self.template = template
        #: Entry guards + loads: (name, slot, kind, shape, vtype, nnz).
        self.loads = loads
        self.steps = steps
        #: Net symbol-table effects: (name, slot, kind) to bind at exit.
        self.exports = exports
        #: Names the block net-removed (``rmvar`` without a rebind).
        self.removes = removes
        #: Per-instruction (stat_key, output_slot-or-None) for profiling.
        self.stat_slots = stat_slots
        #: Temps that would carry lineage items (cleaned after replay).
        self.temp_names = temp_names
        self.n_instructions = len(instructions)

    def execute(self, ctx) -> Optional[list]:
        """Guard, run the steps, and apply exports.

        Returns the final slot array on success (the cache reads output
        sizes from it for stats apportioning) or ``None`` on a guard
        failure — in which case the symbol table is untouched and the
        interpreter must run the block instead.

        The guards deliberately subsume the recompiler's plan-cache
        signature (config identity; per-load data type, value type, dims,
        nnz): a passing guard set proves ``recompile_basic_block`` would
        hand back the very plan this trace was compiled from, which is
        what lets the interpreter dispatch trace-first and skip the
        per-iteration plan-cache lookup entirely.
        """
        if ctx.config is not self.config:
            return None
        variables = ctx.variables
        slots = self.template[:]
        for name, slot, kind, shape, vtype, nnz in self.loads:
            value = variables.get(name)
            if kind is KIND_MATRIX:
                if (
                    type(value) is not MatrixObject
                    or not value.is_local
                    or value.shape != shape
                    or value.nnz != nnz
                    or value.value_type is not vtype
                ):
                    return None
                # pool restore on the single entry acquire: spill.read
                # faults still fire inside traced regions
                slots[slot] = value.acquire_local()
            else:
                if not isinstance(value, ScalarObject) or value.value_type is not vtype:
                    return None
                slots[slot] = value
        for step in self.steps:
            step(slots)
        pool = ctx.pool
        for name, slot, kind in self.exports:
            if kind is KIND_MATRIX:
                variables[name] = MatrixObject.from_block(slots[slot], pool)
            else:
                variables[name] = slots[slot]
        for name in self.removes:
            variables.pop(name, None)
        tracer = ctx.tracer
        if tracer is not None:
            self.replay_lineage(tracer)
        return slots

    def replay_lineage(self, tracer) -> None:
        """Re-derive lineage exactly as the interpreter would have.

        ``LineageTracer.trace`` is pure over (opcode, operands, params) and
        the tracer's name→item map, so replaying the instruction sequence
        in order after the fact produces the identical DAG.  ``rmvar``
        unbinds items inline (mirroring ``ctx.remove``), and temp items are
        dropped at the end (mirroring ``cleanup_temps``).
        """
        for instruction in self.instructions:
            if instruction.opcode == "rmvar":
                for name in instruction.params["names"]:
                    tracer.remove(name)
            else:
                tracer.trace(instruction)
        for name in self.temp_names:
            tracer.remove(name)


# ---------------------------------------------------------------------------
# step factories (module-level so closures bind per-instruction state once)
# ---------------------------------------------------------------------------


def _block_fetch(slot: int, kind: str):
    """A slots->block getter replicating ``Instruction.block_in`` dispatch."""
    if kind is KIND_SCALAR:
        return lambda slots: BasicTensorBlock.scalar(slots[slot].as_float())
    return lambda slots: slots[slot]


def _scalar_fetch(slot: int, kind: str):
    """A slots->ScalarObject getter replicating ``Instruction.scalar_in``."""
    if kind is KIND_MATRIX:
        return lambda slots: ScalarObject(slots[slot].as_scalar())
    return lambda slots: slots[slot]


class _TraceCompiler:
    """Symbolic single pass over the instruction sequence."""

    def __init__(self, instructions, ctx):
        self.instructions = instructions
        self.ctx = ctx
        self.n_slots = 0
        self.consts: List[Tuple[int, ScalarObject]] = []
        #: (name, slot, kind, shape, value_type, nnz) guard+load records
        self.loads: List[Tuple] = []
        self.steps: List = []
        #: name -> (slot, kind) of the currently bound value
        self.env: Dict[str, Tuple[int, str]] = {}
        self.removed: set = set()
        self.written: set = set()
        self.stat_slots: List[Tuple[str, Optional[int]]] = []

    # --- slot/operand management -------------------------------------------

    def _new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def _veto(self, reason: str):
        raise TraceVeto(reason)

    def _operand(self, operand: Operand) -> Tuple[int, str]:
        if operand.is_literal:
            slot = self._new_slot()
            self.consts.append((slot, operand.literal))
            return slot, KIND_SCALAR
        name = operand.name
        bound = self.env.get(name)
        if bound is not None:
            return bound
        value = self.ctx.variables.get(name)
        if isinstance(value, ScalarObject):
            kind = KIND_SCALAR
            shape = None
            nnz = -1
        elif type(value) is MatrixObject and value.is_local:
            kind = KIND_MATRIX
            shape = tuple(value.shape)
            nnz = value.nnz
        else:
            self._veto(f"input {name!r} is {type(value).__name__}")
        slot = self._new_slot()
        self.loads.append((name, slot, kind, shape, value.value_type, nnz))
        self.env[name] = (slot, kind)
        return slot, kind

    def _bind(self, name: str, kind: str) -> int:
        slot = self._new_slot()
        self.env[name] = (slot, kind)
        self.written.add(name)
        self.removed.discard(name)
        return slot

    def _alias(self, name: str, slot: int, kind: str) -> None:
        self.env[name] = (slot, kind)
        self.written.add(name)
        self.removed.discard(name)

    def _bfetch(self, operand: Operand):
        slot, kind = self._operand(operand)
        return _block_fetch(slot, kind)

    def _sfetch(self, operand: Operand):
        slot, kind = self._operand(operand)
        return _scalar_fetch(slot, kind)

    # --- top level ----------------------------------------------------------

    def compile(self) -> CompiledTrace:
        for instruction in self.instructions:
            if instruction.exec_type is not ExecType.CP:
                self._veto(f"non-CP instruction {instruction.stat_key}")
            out_slot = self._compile_instruction(instruction)
            self.stat_slots.append((instruction.stat_key, out_slot))
        template = [None] * self.n_slots
        for slot, value in self.consts:
            template[slot] = value
        exports = [
            (name, slot, kind)
            for name, (slot, kind) in self.env.items()
            if name in self.written and not name.startswith("_t")
        ]
        removes = sorted(
            name for name in self.removed if not name.startswith("_t")
        )
        temp_names = sorted(
            name for name in self.written if name.startswith("_t")
        )
        return CompiledTrace(
            self.ctx.config, self.instructions, self.n_slots, template,
            self.loads, self.steps, exports, removes, self.stat_slots,
            temp_names,
        )

    # --- per-instruction compilation ---------------------------------------

    def _compile_instruction(self, instr) -> Optional[int]:
        if isinstance(instr, cp.AssignVarInstruction):
            slot, kind = self._operand(instr.inputs[0])
            self._alias(instr.output, slot, kind)
            return slot
        if isinstance(instr, cp.RmVarInstruction):
            for name in instr.params["names"]:
                self.env.pop(name, None)
                self.written.discard(name)
                self.removed.add(name)
            return None
        if isinstance(instr, cp.BinaryInstruction):
            return self._compile_binary(instr)
        if isinstance(instr, cp.UnaryInstruction):
            return self._compile_unary(instr)
        if isinstance(instr, cp.FusedCellInstruction):
            return self._compile_fused(instr)
        if isinstance(instr, cp.AggregateUnaryInstruction):
            return self._compile_aggregate(instr)
        if isinstance(instr, cp.MatMultInstruction):
            return self._compile_matmult(instr)
        if isinstance(instr, cp.ReorgInstruction):
            return self._compile_reorg(instr)
        if isinstance(instr, cp.IndexingInstruction):
            return self._compile_rix(instr)
        if isinstance(instr, cp.LeftIndexingInstruction):
            return self._compile_lix(instr)
        if isinstance(instr, cp.TernaryInstruction):
            return self._compile_ternary(instr)
        if isinstance(instr, cp.NaryInstruction):
            return self._compile_nary(instr)
        if isinstance(instr, cp.DataGenInstruction):
            return self._compile_datagen(instr)
        # prints, persistent reads/writes, stop/assert, function calls,
        # eval, multi-return builtins, parameterised builtins, paramserv:
        # all have effects that cannot be hoisted past the block
        self._veto(f"untraceable opcode {instr.opcode!r}")

    def _compile_binary(self, instr) -> int:
        op = instr.opcode
        a, a_kind = self._operand(instr.inputs[0])
        b, b_kind = self._operand(instr.inputs[1])
        steps = self.steps
        if a_kind is KIND_SCALAR and b_kind is KIND_SCALAR:
            out = self._bind(instr.output, KIND_SCALAR)
            scalar_binary = cp._scalar_binary

            def step(slots):
                slots[out] = scalar_binary(op, slots[a], slots[b])

            steps.append(step)
            return out
        out = self._bind(instr.output, KIND_MATRIX)
        if op == "solve":
            fa = _block_fetch(a, a_kind)
            fb = _block_fetch(b, b_kind)

            def step(slots):
                slots[out] = ops.solve(fa(slots), fb(slots))

        elif b_kind is KIND_SCALAR:

            def step(slots):
                slots[out] = ops.binary_scalar(op, slots[a], slots[b].as_float())

        elif a_kind is KIND_SCALAR:

            def step(slots):
                slots[out] = ops.binary_scalar(
                    op, slots[b], slots[a].as_float(), scalar_left=True
                )

        else:

            def step(slots):
                slots[out] = ops.binary_op(op, slots[a], slots[b])

        steps.append(step)
        return out

    def _compile_unary(self, instr) -> int:
        op = instr.opcode
        a, kind = self._operand(instr.inputs[0])
        if op in ("nrow", "ncol", "length", "nnz"):
            out = self._bind(instr.output, KIND_SCALAR)
            if kind is KIND_SCALAR:
                self.steps.append(lambda slots: slots.__setitem__(out, ScalarObject(1)))
            elif op == "nrow":
                self.steps.append(
                    lambda slots: slots.__setitem__(out, ScalarObject(int(slots[a].num_rows)))
                )
            elif op == "ncol":
                self.steps.append(
                    lambda slots: slots.__setitem__(out, ScalarObject(int(slots[a].num_cols)))
                )
            elif op == "length":
                self.steps.append(
                    lambda slots: slots.__setitem__(
                        out, ScalarObject(int(slots[a].num_rows * slots[a].num_cols))
                    )
                )
            else:  # nnz
                self.steps.append(
                    lambda slots: slots.__setitem__(out, ScalarObject(int(slots[a].nnz)))
                )
            return out
        if op.startswith("cast_as_"):
            return self._compile_cast(instr, a, kind)
        if kind is KIND_SCALAR:
            func = cp._SCALAR_UNARY.get(op)
            if func is None:
                self._veto(f"scalar unary {op!r}")
            out = self._bind(instr.output, KIND_SCALAR)
            negate = op == "!"

            def step(slots):
                result = func(slots[a].as_float())
                slots[out] = ScalarObject(bool(result) if negate else float(result))

            self.steps.append(step)
            return out
        out = self._bind(instr.output, KIND_MATRIX)
        if op == "inv":
            self.steps.append(lambda slots: slots.__setitem__(out, ops.inverse(slots[a])))
        elif op == "cholesky":
            self.steps.append(lambda slots: slots.__setitem__(out, ops.cholesky(slots[a])))
        else:
            self.steps.append(lambda slots: slots.__setitem__(out, ops.unary_op(op, slots[a])))
        return out

    def _compile_cast(self, instr, a: int, kind: str) -> int:
        op = instr.opcode
        if op == "cast_as_scalar":
            if kind is KIND_SCALAR:
                self._alias(instr.output, a, KIND_SCALAR)
                return a
            out = self._bind(instr.output, KIND_SCALAR)
            self.steps.append(
                lambda slots: slots.__setitem__(out, ScalarObject(slots[a].as_scalar()))
            )
            return out
        if op == "cast_as_matrix":
            if kind is KIND_MATRIX:
                self._alias(instr.output, a, KIND_MATRIX)
                return a
            out = self._bind(instr.output, KIND_MATRIX)
            self.steps.append(
                lambda slots: slots.__setitem__(
                    out, BasicTensorBlock.scalar(slots[a].as_float())
                )
            )
            return out
        if op in ("cast_as_double", "cast_as_integer", "cast_as_boolean"):
            fetch = _scalar_fetch(a, kind)
            out = self._bind(instr.output, KIND_SCALAR)
            if op == "cast_as_double":
                convert = lambda s: ScalarObject(s.as_float())  # noqa: E731
            elif op == "cast_as_integer":
                convert = lambda s: ScalarObject(s.as_int())  # noqa: E731
            else:
                convert = lambda s: ScalarObject(s.as_bool())  # noqa: E731
            self.steps.append(lambda slots: slots.__setitem__(out, convert(fetch(slots))))
            return out
        self._veto(f"cast {op!r}")

    def _compile_fused(self, instr) -> int:
        func = instr._func
        getters = []
        for operand in instr.inputs:
            slot, kind = self._operand(operand)
            if kind is KIND_SCALAR:
                getters.append(lambda slots, i=slot: slots[i].as_float())
            else:
                getters.append(lambda slots, i=slot: slots[i].to_numpy())
        out = self._bind(instr.output, KIND_MATRIX)

        def step(slots):
            result = func(*[get(slots) for get in getters])
            slots[out] = BasicTensorBlock.from_numpy(np.atleast_2d(result))

        self.steps.append(step)
        return out

    def _compile_aggregate(self, instr) -> int:
        op = instr.opcode
        direction: Direction = instr.params["direction"]
        a, kind = self._operand(instr.inputs[0])
        if kind is KIND_SCALAR:
            if direction == Direction.FULL and op in ("sum", "mean", "min", "max", "prod"):
                out = self._bind(instr.output, KIND_SCALAR)
                self.steps.append(
                    lambda slots: slots.__setitem__(out, ScalarObject(slots[a].as_float()))
                )
                return out
            self._veto(f"aggregate {op!r} of a scalar")
        if op == "trace":
            out = self._bind(instr.output, KIND_SCALAR)
            self.steps.append(
                lambda slots: slots.__setitem__(out, ScalarObject(ops.trace(slots[a])))
            )
            return out
        if op.startswith("cum"):
            out = self._bind(instr.output, KIND_MATRIX)
            self.steps.append(
                lambda slots: slots.__setitem__(out, ops.cumulative_op(op, slots[a]))
            )
            return out
        if op in ("rowIndexMax", "rowIndexMin"):
            use_max = op == "rowIndexMax"
            out = self._bind(instr.output, KIND_MATRIX)
            self.steps.append(
                lambda slots: slots.__setitem__(
                    out, ops.row_index_extreme(slots[a], use_max=use_max)
                )
            )
            return out
        if direction == Direction.FULL:
            out = self._bind(instr.output, KIND_SCALAR)
            self.steps.append(
                lambda slots: slots.__setitem__(
                    out, ScalarObject(float(ops.aggregate(op, slots[a], direction)))
                )
            )
            return out
        out = self._bind(instr.output, KIND_MATRIX)
        self.steps.append(
            lambda slots: slots.__setitem__(out, ops.aggregate(op, slots[a], direction))
        )
        return out

    def _compile_matmult(self, instr) -> int:
        config = self.ctx.config
        native_blas = config.native_blas
        tile = config.matmult_tile
        out = self._bind(instr.output, KIND_MATRIX)
        if instr.opcode == "tsmm":
            fa = self._bfetch(instr.inputs[0])
            self.steps.append(
                lambda slots: slots.__setitem__(out, ops.tsmm(fa(slots), native_blas, tile))
            )
            return out
        fa = self._bfetch(instr.inputs[0])
        fb = self._bfetch(instr.inputs[1])
        kernel = ops.mapmm_transpose_left if instr.opcode == "tmm" else ops.matmult
        self.steps.append(
            lambda slots: slots.__setitem__(
                out, kernel(fa(slots), fb(slots), native_blas, tile)
            )
        )
        return out

    def _compile_reorg(self, instr) -> int:
        op = instr.opcode
        if op in ("t", "rev", "rdiag"):
            fa = self._bfetch(instr.inputs[0])
            kernel = {"t": ops.transpose, "rev": ops.rev, "rdiag": ops.diag}[op]
            out = self._bind(instr.output, KIND_MATRIX)
            self.steps.append(lambda slots: slots.__setitem__(out, kernel(fa(slots))))
            return out
        if op != "reshape":
            self._veto(f"reorg {op!r}")
        src_slot, src_kind = self._operand(instr.inputs[0])
        frows = self._sfetch(instr.inputs[1])
        fcols = self._sfetch(instr.inputs[2])
        fbyrow = self._sfetch(instr.inputs[3]) if len(instr.inputs) > 3 else None
        out = self._bind(instr.output, KIND_MATRIX)
        if src_kind is KIND_SCALAR:
            # matrix(s, rows, cols) over a scalar: a fill, not a reshape

            def step(slots):
                slots[out] = BasicTensorBlock.full(
                    (frows(slots).as_int(), fcols(slots).as_int()),
                    slots[src_slot].as_float(),
                )

        else:

            def step(slots):
                byrow = fbyrow(slots).as_bool() if fbyrow is not None else True
                slots[out] = ops.reshape(
                    slots[src_slot], frows(slots).as_int(), fcols(slots).as_int(), byrow
                )

        self.steps.append(step)
        return out

    def _compile_rix(self, instr) -> int:
        fa = self._bfetch(instr.inputs[0])
        bounds = [self._sfetch(instr.inputs[i]) for i in range(1, 5)]
        out = self._bind(instr.output, KIND_MATRIX)

        def step(slots):
            rl, ru, cl, cu = (fetch(slots).as_int() for fetch in bounds)
            slots[out] = ops.right_index(fa(slots), [(rl - 1, ru), (cl - 1, cu)])

        self.steps.append(step)
        return out

    def _compile_lix(self, instr) -> int:
        ftarget = self._bfetch(instr.inputs[0])
        src_slot, src_kind = self._operand(instr.inputs[1])
        bounds = [self._sfetch(instr.inputs[i]) for i in range(2, 6)]
        out = self._bind(instr.output, KIND_MATRIX)
        scalar_source = src_kind is KIND_SCALAR

        def step(slots):
            rl, ru, cl, cu = (fetch(slots).as_int() for fetch in bounds)
            ranges = [(rl - 1, ru), (cl - 1, cu)]
            if scalar_source:
                slots[out] = ops.left_index_scalar(
                    ftarget(slots), slots[src_slot].as_float(), ranges
                )
            else:
                slots[out] = ops.left_index(ftarget(slots), slots[src_slot], ranges)

        self.steps.append(step)
        return out

    def _compile_ternary(self, instr) -> int:
        op = instr.opcode
        if op == "ifelse":
            return self._compile_ifelse(instr)
        if op == "table":
            frows = self._bfetch(instr.inputs[0])
            fcols = self._bfetch(instr.inputs[1])
            dim_fetches = []
            weight_fetch = None
            for index in range(2, len(instr.inputs)):
                slot, kind = self._operand(instr.inputs[index])
                if kind is KIND_SCALAR:
                    dim_fetches.append(_scalar_fetch(slot, kind))
                else:
                    weight_fetch = _block_fetch(slot, kind)
            out = self._bind(instr.output, KIND_MATRIX)

            def step(slots):
                dims = [fetch(slots).as_int() for fetch in dim_fetches]
                weights = weight_fetch(slots) if weight_fetch is not None else None
                out_rows = dims[0] if dims else None
                out_cols = dims[1] if len(dims) > 1 else None
                slots[out] = ops.table(
                    frows(slots), fcols(slots), weights, out_rows, out_cols
                )

            self.steps.append(step)
            return out
        if op == "quantile":
            fdata = self._bfetch(instr.inputs[0])
            p_slot, p_kind = self._operand(instr.inputs[1])
            if p_kind is KIND_SCALAR:
                out = self._bind(instr.output, KIND_SCALAR)

                def step(slots):
                    probs = BasicTensorBlock.scalar(slots[p_slot].as_float())
                    result = ops.quantile(fdata(slots), probs)
                    slots[out] = ScalarObject(result.to_numpy()[0, 0])

            else:
                out = self._bind(instr.output, KIND_MATRIX)

                def step(slots):
                    slots[out] = ops.quantile(fdata(slots), slots[p_slot])

            self.steps.append(step)
            return out
        self._veto(f"ternary {op!r}")

    def _compile_ifelse(self, instr) -> int:
        c, c_kind = self._operand(instr.inputs[0])
        t, t_kind = self._operand(instr.inputs[1])
        e, e_kind = self._operand(instr.inputs[2])
        if c_kind is KIND_SCALAR:
            if t_kind is not e_kind:
                # the output kind depends on the runtime condition value;
                # later steps could not be compiled against a fixed kind
                self._veto("ifelse branches of mixed kinds")
            out = self._bind(instr.output, t_kind)

            def step(slots):
                slots[out] = slots[t] if slots[c].as_bool() else slots[e]

            self.steps.append(step)
            return out
        fthen = (
            (lambda slots: slots[t].as_float()) if t_kind is KIND_SCALAR
            else (lambda slots: slots[t])
        )
        felse = (
            (lambda slots: slots[e].as_float()) if e_kind is KIND_SCALAR
            else (lambda slots: slots[e])
        )
        out = self._bind(instr.output, KIND_MATRIX)
        self.steps.append(
            lambda slots: slots.__setitem__(
                out, ops.ternary_ifelse(slots[c], fthen(slots), felse(slots))
            )
        )
        return out

    def _compile_nary(self, instr) -> int:
        op = instr.opcode
        if op not in ("cbind", "rbind"):
            self._veto(f"nary {op!r}")
        fetches = [self._bfetch(operand) for operand in instr.inputs]
        kernel = ops.cbind if op == "cbind" else ops.rbind
        out = self._bind(instr.output, KIND_MATRIX)
        self.steps.append(
            lambda slots: slots.__setitem__(
                out, kernel([fetch(slots) for fetch in fetches])
            )
        )
        return out

    def _compile_datagen(self, instr) -> int:
        method = instr.params["method"]
        named = dict(zip(instr.params["names"], instr.inputs))
        if method == "fill":
            frows = self._sfetch(named["rows"])
            fcols = self._sfetch(named["cols"])
            fvalue = self._sfetch(named["value"])
            out = self._bind(instr.output, KIND_MATRIX)

            def step(slots):
                slots[out] = BasicTensorBlock.full(
                    (frows(slots).as_int(), fcols(slots).as_int()),
                    fvalue(slots).as_float(),
                )

            self.steps.append(step)
            return out
        if method == "seq":
            ffrom = self._sfetch(named["from"])
            fto = self._sfetch(named["to"])
            fincr = self._sfetch(named["incr"]) if "incr" in named else None
            out = self._bind(instr.output, KIND_MATRIX)

            def step(slots):
                start = ffrom(slots).as_float()
                stop = fto(slots).as_float()
                if fincr is not None:
                    increment = fincr(slots).as_float()
                else:
                    increment = 1.0 if stop >= start else -1.0
                slots[out] = ops.seq(start, stop, increment)

            self.steps.append(step)
            return out
        # rand/sample consume the deterministic per-context seed stream:
        # fusing them would reorder seed draws relative to interpretation
        self._veto(f"datagen {method!r}")


def compile_trace(instructions, ctx) -> CompiledTrace:
    """Compile one basic block's instruction sequence into a trace.

    Raises :class:`TraceVeto` when the block cannot be traced.  Must be
    called at block entry (before the block executes), so the symbol table
    reflects exactly the state the compiled loads will guard against.
    """
    if not instructions:
        raise TraceVeto("empty block")
    return _TraceCompiler(instructions, ctx).compile()
