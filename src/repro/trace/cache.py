"""The trace cache: hotness counting, compiled-trace storage, invalidation.

One :class:`TraceCache` lives per execution-context family (the main frame
plus its function/parfor children).  It keys on the *identity* of a basic
block's instruction list: the recompiler's plan cache hands back the same
list object for the same operand-size signature, so a stable plan yields a
stable key and a recompile to a new plan naturally misses.

Lifecycle of one block:

1. first ``threshold`` executions interpret normally (hotness counting);
2. on the threshold-th execution the block is compiled — or *vetoed*
   forever if it contains untraceable instructions;
3. subsequent executions guard-check and run the compiled trace;
4. a guard failure (shape/kind/config drift) drops the trace and resets
   the hotness counter — the block re-interprets and may re-heat;
5. a recompile of the block (plan-cache miss) or a checkpoint restore
   invalidates eagerly.

The cache also carries the subsystem's observability counters, exported
as the ``trace`` stats section.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import RuntimeDMLError
from repro.trace.compiler import CompiledTrace, TraceVeto, compile_trace


class _Entry:
    """Per-instruction-list cache state."""

    __slots__ = ("instructions", "block_id", "runs", "trace", "veto")

    def __init__(self, instructions, block_id: int):
        #: Strong reference keeping the keyed list's id() stable.
        self.instructions = instructions
        self.block_id = block_id
        self.runs = 0
        self.trace: Optional[CompiledTrace] = None
        self.veto: Optional[str] = None


class TraceCache:
    """Compiled traces for hot basic blocks, with guarded fallback."""

    def __init__(self, threshold: int = 8):
        if threshold < 1:
            raise ValueError("trace threshold must be >= 1")
        self.threshold = threshold
        self._entries: Dict[int, _Entry] = {}
        #: block id -> entry keys holding a live compiled trace; the
        #: trace-first dispatch index (see :meth:`execute_block`)
        self._by_block: Dict[int, list] = {}
        self._lock = threading.Lock()
        self.metrics = {
            "traces_compiled": 0,
            "trace_hits": 0,
            "guard_failures": 0,
            "fallbacks": 0,
            "vetoes": 0,
            "invalidations": 0,
            "invalidations_recompile": 0,
            "invalidations_shape": 0,
            "invalidations_resume": 0,
            "veto_reprobes": 0,
        }

    # --- hot path -----------------------------------------------------------

    def execute_block(self, block, ctx) -> bool:
        """Trace-first dispatch: run a live trace of the block if one guards.

        Called by the interpreter for dynamically recompiled blocks
        *before* the per-iteration plan-cache lookup.  The trace guards
        subsume the recompiler's statistics signature (config identity
        plus per-operand type/value-type/dims/nnz — see
        :meth:`CompiledTrace.execute`), so a guard match proves the
        recompiler would return the exact plan the trace fused, and the
        lookup can be skipped.  Returns False when no live trace guards
        against the current symbol table — the caller recompiles and
        interprets (and a failed candidate resets to re-heat, exactly as
        a post-recompile guard failure would).
        """
        with self._lock:
            keys = self._by_block.get(id(block))
            if not keys:
                return False
            traces = [self._entries[key].trace for key in keys]
        for trace in traces:
            if trace is not None and self._run(trace, id(trace.instructions), ctx):
                return True
        return False

    def execute(self, block, instructions, ctx) -> bool:
        """Try to run the block as a compiled trace.

        Returns True when the trace ran (symbol table already updated, all
        hoisted hooks applied); False when the caller must interpret the
        block — because it is not hot yet, is vetoed, or its guards failed.
        """
        key = id(instructions)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(instructions, id(block))
                self._entries[key] = entry
            entry.runs += 1
            if entry.veto is not None:
                return False
            trace = entry.trace
            if trace is None:
                if entry.runs < self.threshold:
                    return False
                # compile at block entry: the symbol table holds exactly the
                # live-in kinds/shapes the emitted guards will check
                try:
                    trace = compile_trace(instructions, ctx)
                except TraceVeto as veto:
                    entry.veto = veto.reason
                    self.metrics["vetoes"] += 1
                    return False
                entry.trace = trace
                self._by_block.setdefault(entry.block_id, []).append(key)
                self.metrics["traces_compiled"] += 1
        return self._run(trace, key, ctx)

    def _run(self, trace: CompiledTrace, key: int, ctx) -> bool:
        """Budget-check, execute, and account one compiled trace."""
        n = trace.n_instructions
        limit = ctx.config.max_instructions
        if limit is not None and ctx.metrics["instructions"] + n > limit:
            # the interpreter would trip the budget partway through this
            # block; raise its exact error rather than silently completing
            raise RuntimeDMLError(
                f"instruction budget exceeded (max_instructions={limit}); "
                f"likely a non-terminating loop"
            )
        stats = ctx.stats
        if stats is None:
            slots = trace.execute(ctx)
        else:
            start = time.perf_counter()
            slots = trace.execute(ctx)
            elapsed = time.perf_counter() - start
        if slots is None:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry.trace is trace:
                    entry.trace = None
                    entry.runs = 0
                    self._unindex(entry.block_id, key)
                self.metrics["guard_failures"] += 1
                self.metrics["fallbacks"] += 1
                self.metrics["invalidations"] += 1
                self.metrics["invalidations_shape"] += 1
            return False
        ctx.metrics["instructions"] += n
        with self._lock:
            self.metrics["trace_hits"] += 1
        if stats is not None:
            self._record_stats(stats, trace, slots, elapsed)
        return True

    def _unindex(self, block_id: int, key: int) -> None:
        """Drop one entry key from the trace-first index (lock held)."""
        keys = self._by_block.get(block_id)
        if keys is not None:
            if key in keys:
                keys.remove(key)
            if not keys:
                del self._by_block[block_id]

    @staticmethod
    def _record_stats(stats, trace: CompiledTrace, slots, elapsed: float) -> None:
        """Fold the trace run into the per-opcode heavy-hitter profile.

        Wall time is apportioned evenly across the fused instructions (the
        per-step timer is exactly the overhead tracing removes); output
        sizes are read from the final slot values.
        """
        share = elapsed / len(trace.stat_slots) if trace.stat_slots else 0.0
        for stat_key, out_slot in trace.stat_slots:
            bytes_out = 0
            if out_slot is not None:
                value = slots[out_slot]
                size_of = getattr(value, "memory_size", None)
                if size_of is not None:
                    bytes_out = int(size_of())
            stats.record_instruction(stat_key, share, bytes_out)

    # --- invalidation --------------------------------------------------------

    def on_recompile(self, block) -> None:
        """Drop every trace of a block whose plan cache just missed.

        Called by the recompiler *before* generating the new plan: the old
        instruction lists may still be reachable, but their shapes no
        longer reflect reality, so re-heating from scratch is the only
        safe option.
        """
        block_id = id(block)
        with self._lock:
            stale = [
                key for key, entry in self._entries.items()
                if entry.block_id == block_id
            ]
            for key in stale:
                del self._entries[key]
            self._by_block.pop(block_id, None)
            if stale:
                self.metrics["invalidations"] += len(stale)
                self.metrics["invalidations_recompile"] += len(stale)
            # Vetoed entries of *other* blocks get a second chance: veto
            # reasons are often transient (an operand that was distributed
            # or frame-typed at first contact, a callee whose own blocks
            # had not compiled yet), and a recompile anywhere signals the
            # program's plans are still shifting.  Clearing the veto makes
            # the block re-heat and re-attempt compilation; a genuinely
            # untraceable block simply vetoes again — at most one compile
            # attempt per ``threshold`` runs per recompile event.
            for entry in self._entries.values():
                if entry.veto is not None:
                    entry.veto = None
                    entry.runs = 0
                    self.metrics["veto_reprobes"] += 1

    def invalidate_all(self, reason: str = "resume") -> None:
        """Flush the whole cache (checkpoint restore, config change)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_block.clear()
            if dropped:
                self.metrics["invalidations"] += dropped
                key = f"invalidations_{reason}"
                if key in self.metrics:
                    self.metrics[key] += dropped

    # --- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            snap = dict(self.metrics)
            snap["entries"] = len(self._entries)
            snap["compiled"] = sum(
                1 for entry in self._entries.values() if entry.trace is not None
            )
            snap["vetoed"] = sum(
                1 for entry in self._entries.values() if entry.veto is not None
            )
        return snap
