"""Compiled instruction traces for hot loops (a poor-man's JIT).

After a basic block executes ``trace_threshold`` times with a stable plan
and stable operand kinds, its instruction sequence is fused into one
compiled callable (:mod:`repro.trace.compiler`) and cached
(:mod:`repro.trace.cache`).  Traced execution is bit-identical to
interpretation — verified differentially by the ``traced`` qa lattice
config — while skipping per-instruction dispatch, symbol-table traffic,
and buffer-pool round-trips for block-local temporaries.
"""

from repro.trace.cache import TraceCache
from repro.trace.compiler import CompiledTrace, TraceVeto, compile_trace

__all__ = ["TraceCache", "CompiledTrace", "TraceVeto", "compile_trace"]
