"""Lineage-based reuse cache with full and partial reuse (paper section 3.1).

Intermediates are cached under the canonical key of their lineage DAG.
Before executing a reuse-eligible instruction the interpreter probes the
cache:

* **full reuse** — the exact lineage key is cached: the instruction is
  skipped and the cached value bound;
* **partial reuse** — the requested result can be composed from a cached
  intermediate plus a cheap compensation plan.  Implemented for the
  ``steplm`` pattern of the paper's Example 1: a TSMM or transpose-side
  matmult over ``cbind(X, delta)`` reuses ``t(X)%*%X`` / ``t(X)%*%y`` and
  computes only the thin delta products.
"""

from __future__ import annotations

import collections
import threading
from typing import Optional

import numpy as np

from repro.lineage.item import LineageItem
from repro.tensor import BasicTensorBlock


class ReuseCache:
    """LRU cache of intermediates keyed by lineage."""

    def __init__(self, budget_bytes: int, allow_partial: bool = True):
        self.budget = budget_bytes
        self.allow_partial = allow_partial
        self._entries: "collections.OrderedDict[bytes, tuple]" = collections.OrderedDict()
        self._used = 0
        self._lock = threading.RLock()
        self.stats = {
            "probes": 0,
            "hits_full": 0,
            "hits_partial": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
        }

    # --- basic cache protocol ----------------------------------------------------

    def probe(self, item: LineageItem):
        """The cached value for a lineage key, or None."""
        with self._lock:
            self.stats["probes"] += 1
            entry = self._entries.get(item.key)
            if entry is None:
                self.stats["misses"] += 1
                return None
            self._entries.move_to_end(item.key)
            self.stats["hits_full"] += 1
            return entry[0]

    def put(self, item: LineageItem, value, size: int) -> None:
        with self._lock:
            if size > self.budget:
                return  # too large to ever pay off
            if item.key in self._entries:
                return
            self._entries[item.key] = (value, size)
            self._used += size
            self.stats["puts"] += 1
            while self._used > self.budget and self._entries:
                __, (___, evicted_size) = self._entries.popitem(last=False)
                self._used -= evicted_size
                self.stats["evictions"] += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used = 0

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """A consistent copy of the statistics plus the derived hit rate."""
        with self._lock:
            stats = dict(self.stats)
            stats["entries"] = len(self._entries)
            stats["used_bytes"] = self._used
        hits = stats["hits_full"] + stats["hits_partial"]
        stats["hit_rate"] = hits / stats["probes"] if stats["probes"] else 0.0
        return stats

    # --- partial reuse -------------------------------------------------------------------

    def probe_partial_tsmm(self, out_item: LineageItem, input_block: BasicTensorBlock) -> Optional[BasicTensorBlock]:
        """Compensate ``tsmm(cbind(A, d))`` from a cached ``tsmm(A)``.

        Returns the full ``t(X)%*%X`` of the cbound matrix, computing only
        the thin ``t(X)%*%d`` delta product.
        """
        if not self.allow_partial:
            return None
        source = out_item.inputs[0] if out_item.inputs else None
        if source is None or source.opcode != "cbind" or len(source.inputs) != 2:
            return None
        cached = self._probe_quiet(LineageItem("tsmm", [source.inputs[0]]))
        if not isinstance(cached, BasicTensorBlock):
            return None
        ka = cached.shape[0]
        k = input_block.num_cols
        if not 0 < ka < k:
            return None
        self._count_partial_hit()
        x = input_block.to_numpy() if not input_block.is_sparse else input_block.to_scipy()
        if input_block.is_sparse:
            delta = np.asarray(x[:, ka:].todense())
            thin = np.asarray((x.T @ delta))
        else:
            delta = x[:, ka:]
            thin = x.T @ delta
        out = np.empty((k, k), dtype=np.float64)
        out[:ka, :ka] = cached.to_numpy()
        out[:ka, ka:] = thin[:ka]
        out[ka:, :ka] = thin[:ka].T
        out[ka:, ka:] = thin[ka:]
        return BasicTensorBlock.from_numpy(out)

    def probe_partial_tmm(
        self,
        out_item: LineageItem,
        left_block: BasicTensorBlock,
        right_block: BasicTensorBlock,
    ) -> Optional[BasicTensorBlock]:
        """Compensate ``t(cbind(A, d)) %*% y`` from a cached ``t(A) %*% y``."""
        if not self.allow_partial:
            return None
        if len(out_item.inputs) != 2:
            return None
        left_item, right_item = out_item.inputs
        if left_item.opcode != "cbind" or len(left_item.inputs) != 2:
            return None
        cached = self._probe_quiet(LineageItem("tmm", [left_item.inputs[0], right_item]))
        if not isinstance(cached, BasicTensorBlock):
            return None
        ka = cached.shape[0]
        k = left_block.num_cols
        if not 0 < ka < k:
            return None
        self._count_partial_hit()
        if left_block.is_sparse:
            delta = left_block.to_scipy()[:, ka:]
            thin = np.asarray((delta.T @ right_block.to_numpy()))
        else:
            delta = left_block.to_numpy()[:, ka:]
            thin = delta.T @ right_block.to_numpy()
        out = np.vstack([cached.to_numpy(), thin])
        return BasicTensorBlock.from_numpy(out)

    def _count_partial_hit(self) -> None:
        """Reclassify the preceding full-probe miss as a partial hit.

        Partial probes run only after :meth:`probe` already counted the
        same lookup as a miss; without the decrement, ``misses`` overcounts
        and ``hit_rate`` in :meth:`snapshot` is skewed low.
        """
        with self._lock:
            self.stats["hits_partial"] += 1
            self.stats["misses"] = max(self.stats["misses"] - 1, 0)

    def _probe_quiet(self, item: LineageItem):
        # called from partial-reuse probes that run outside probe()'s lock
        with self._lock:
            entry = self._entries.get(item.key)
            if entry is None:
                return None
            self._entries.move_to_end(item.key)
            return entry[0]
