"""Lineage tracing and reuse of intermediates (paper section 3.1).

Fine-grained lineage of logical operations is traced per live variable as a
DAG of :class:`~repro.lineage.item.LineageItem` nodes.  The trace enables
reproducibility (replaying a computation), debugging (querying what an
intermediate was computed from), and — through
:class:`~repro.lineage.cache.ReuseCache` — full and partial reuse of
redundantly computed intermediates.
"""

from repro.lineage.item import LineageItem
from repro.lineage.tracer import LineageTracer
from repro.lineage.cache import ReuseCache

__all__ = ["LineageItem", "LineageTracer", "ReuseCache"]
