"""Query processing over lineage traces (paper section 3.1).

The paper positions lineage as the enabler of "debugging via query
processing over lineage traces of different runs".  This module provides
that query layer: structural search, trace statistics, diffing two traces
(e.g., two runs of a pipeline with different parameters), and a Graphviz
rendering for inspection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.lineage.item import LineageItem


def find(root: LineageItem, predicate: Callable[[LineageItem], bool]) -> List[LineageItem]:
    """All nodes of a lineage DAG matching a predicate (pre-order)."""
    return [item for item in root.iter_nodes() if predicate(item)]


def find_by_opcode(root: LineageItem, opcode: str) -> List[LineageItem]:
    """All operations of one kind in a trace, e.g. every matrix multiply."""
    return find(root, lambda item: item.opcode == opcode)


def inputs_of(root: LineageItem) -> List[LineageItem]:
    """The external inputs (leaves) a result was computed from."""
    return find(root, lambda item: item.is_leaf and item.opcode in ("input", "pread"))


def nondeterministic_ops(root: LineageItem) -> List[LineageItem]:
    """Data generators whose seeds were captured for reproducibility."""
    return find(root, lambda item: item.opcode == "datagen")


def opcode_histogram(root: LineageItem) -> Dict[str, int]:
    """How often each logical operation occurs in a trace."""
    histogram: Dict[str, int] = {}
    for item in root.iter_nodes():
        histogram[item.opcode] = histogram.get(item.opcode, 0) + 1
    return dict(sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0])))


def depends_on(root: LineageItem, leaf: LineageItem) -> bool:
    """True when the result transitively depends on the given item."""
    return any(item.key == leaf.key for item in root.iter_nodes())


# ---------------------------------------------------------------------------
# trace diffing
# ---------------------------------------------------------------------------


def diff(left: LineageItem, right: LineageItem) -> List[Tuple[str, LineageItem, Optional[LineageItem]]]:
    """Structural differences between two traces.

    Returns a list of (kind, left node, right node) records where kind is
    ``"opcode"`` (same position, different operation), ``"data"`` (same
    operation, different payload — e.g. a changed literal or seed), or
    ``"arity"`` (different input counts; subtrees are not descended).
    Identical subtrees (equal keys) are skipped wholesale.
    """
    differences: List[Tuple[str, LineageItem, Optional[LineageItem]]] = []
    stack = [(left, right)]
    seen = set()
    while stack:
        a, b = stack.pop()
        pair_key = (a.item_id, b.item_id)
        if pair_key in seen or a.key == b.key:
            continue
        seen.add(pair_key)
        if a.opcode != b.opcode:
            differences.append(("opcode", a, b))
            continue
        if a.data != b.data:
            differences.append(("data", a, b))
        if len(a.inputs) != len(b.inputs):
            differences.append(("arity", a, b))
            continue
        stack.extend(zip(a.inputs, b.inputs))
    return differences


def first_divergence(left: LineageItem, right: LineageItem) -> Optional[Tuple[LineageItem, LineageItem]]:
    """The deepest-first difference between two traces, or None if equal."""
    if left.key == right.key:
        return None
    if left.opcode == right.opcode and len(left.inputs) == len(right.inputs):
        for a, b in zip(left.inputs, right.inputs):
            deeper = first_divergence(a, b)
            if deeper is not None:
                return deeper
        if left.data != right.data:
            return (left, right)
    return (left, right)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def to_dot(root: LineageItem, max_nodes: int = 500) -> str:
    """A Graphviz rendering of a lineage DAG (for debugging sessions)."""
    lines = ["digraph lineage {", "  rankdir=BT;", "  node [shape=box, fontsize=10];"]
    count = 0
    for item in root.iter_nodes():
        if count >= max_nodes:
            lines.append('  truncated [label="... truncated ...", style=dashed];')
            break
        label = item.opcode
        if item.data:
            payload = item.data if len(item.data) <= 30 else item.data[:27] + "..."
            label += f"\\n{payload}"
        shape = ', style=filled, fillcolor="#e8f0fe"' if item.is_leaf else ""
        lines.append(f'  n{item.item_id} [label="{label}"{shape}];')
        for child in item.inputs:
            lines.append(f"  n{child.item_id} -> n{item.item_id};")
        count += 1
    lines.append("}")
    return "\n".join(lines)
