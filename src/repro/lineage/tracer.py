"""Per-execution lineage tracer.

The tracer maintains the lineage DAG of every live variable.  After each
instruction the interpreter calls :meth:`trace`, which derives the output
item from the opcode and the input items.  With deduplication enabled,
items are hash-consed: structurally identical subtrees (e.g. the trace of
every loop iteration that takes the same control-flow path) share one
object, so loops add O(1) new nodes per iteration instead of re-recording
the whole path (paper section 3.1).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.lineage.item import LineageItem, input_item, literal_item, pread_item


class LineageTracer:
    """Traces lineage DAGs of live variables during interpretation."""

    def __init__(self, dedup: bool = True):
        self.items: Dict[str, LineageItem] = {}
        self.dedup = dedup
        self._interned: Dict[bytes, LineageItem] = {}
        self.stats = {"traced": 0, "interned_hits": 0}

    # --- item construction -----------------------------------------------------

    def _intern(self, item: LineageItem) -> LineageItem:
        if not self.dedup:
            return item
        existing = self._interned.get(item.key)
        if existing is not None:
            self.stats["interned_hits"] += 1
            return existing
        self._interned[item.key] = item
        return existing or item

    def make(self, opcode: str, inputs: Sequence[LineageItem], data: str = "") -> LineageItem:
        return self._intern(LineageItem(opcode, inputs, data))

    def operand_item(self, operand) -> LineageItem:
        """The lineage item of one instruction operand."""
        if operand.is_literal:
            return self._intern(literal_item(operand.literal.value))
        item = self.items.get(operand.name)
        if item is None:
            # a variable bound outside traced execution (e.g. API input)
            item = input_item(operand.name)
            self.items[operand.name] = item
        return item

    # --- tracing entry points -------------------------------------------------------

    def trace(self, instruction) -> Optional[LineageItem]:
        """Derive and record the output lineage of one executed instruction."""
        outputs = instruction.output_names()
        if not outputs:
            return None
        self.stats["traced"] += 1
        opcode = instruction.opcode
        if opcode == "assignvar":
            item = self.operand_item(instruction.inputs[0])
            self.items[outputs[0]] = item
            return item
        inputs = [self.operand_item(operand) for operand in instruction.inputs]
        extra = self._instruction_data(instruction)
        if len(outputs) == 1:
            item = self.make(opcode, inputs, extra)
            self.items[outputs[0]] = item
            return item
        parent = self.make(opcode, inputs, extra)
        for index, name in enumerate(outputs):
            self.items[name] = self.make("fout", [parent], str(index))
        return parent

    @staticmethod
    def _instruction_data(instruction) -> str:
        params = instruction.params
        if not params:
            return ""
        parts = []
        for key in sorted(params):
            if key == "source":
                continue  # generated code is summarised by its signature
            value = params[key]
            if key in ("names", "outputs", "arg_names"):
                parts.append(f"{key}={','.join(str(v) for v in value)}")
            else:
                parts.append(f"{key}={value}")
        return ";".join(parts)

    def trace_datagen(self, name: str, instruction, seed: int) -> LineageItem:
        """Trace a data generator including its (possibly generated) seed."""
        data = f"{instruction.params.get('method')};seed={seed}"
        inputs = [self.operand_item(op) for op in instruction.inputs]
        item = self.make("datagen", inputs, data)
        self.items[name] = item
        return item

    def trace_pread(self, name: str, path: str) -> LineageItem:
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            mtime = -1.0
        item = self._intern(pread_item(path, mtime))
        self.items[name] = item
        return item

    def bind_input(self, name: str, guid: int) -> LineageItem:
        """Register an externally bound input under a stable object guid."""
        item = self._intern(input_item(name, guid))
        self.items[name] = item
        return item

    # --- queries ----------------------------------------------------------------------

    def get(self, name: str) -> Optional[LineageItem]:
        return self.items.get(name)

    def remove(self, name: str) -> None:
        self.items.pop(name, None)

    def copy_binding(self, source: str, target: str) -> None:
        item = self.items.get(source)
        if item is not None:
            self.items[target] = item
