"""Lineage items: nodes of the per-variable lineage DAGs.

Each item records one logical operation (or a leaf: input, literal, or
seeded data generation) and links to the items of its inputs.  Items are
immutable and carry a canonical 128-bit key (BLAKE2b over opcode, payload,
and child keys) used both for deduplication (hash-consing) and as the reuse
cache key.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterable, Optional, Sequence, Tuple

_ITEM_IDS = itertools.count(1)


class LineageItem:
    """One node of a lineage DAG."""

    __slots__ = ("item_id", "opcode", "data", "inputs", "key")

    def __init__(self, opcode: str, inputs: Sequence["LineageItem"] = (), data: str = ""):
        self.item_id = next(_ITEM_IDS)
        self.opcode = opcode
        self.data = data
        self.inputs: Tuple[LineageItem, ...] = tuple(inputs)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(opcode.encode())
        digest.update(b"\x00")
        digest.update(data.encode())
        for child in self.inputs:
            digest.update(b"\x01")
            digest.update(child.key)
        self.key = digest.digest()

    # --- structural helpers ----------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.inputs

    def iter_nodes(self) -> Iterable["LineageItem"]:
        """All nodes of this item's DAG (each exactly once)."""
        seen = set()
        stack = [self]
        while stack:
            item = stack.pop()
            if item.item_id in seen:
                continue
            seen.add(item.item_id)
            yield item
            stack.extend(item.inputs)

    def depth(self) -> int:
        if not self.inputs:
            return 1
        return 1 + max(child.depth() for child in self.inputs)

    def count_nodes(self) -> int:
        return sum(1 for __ in self.iter_nodes())

    # --- serialisation (debugging / lineage query processing) ---------------------

    def explain(self, max_nodes: int = 200) -> str:
        """A readable multi-line rendering of the lineage DAG (topological)."""
        lines = []
        seen = set()

        def visit(item: LineageItem) -> None:
            if item.item_id in seen or len(lines) >= max_nodes:
                return
            for child in item.inputs:
                visit(child)
            seen.add(item.item_id)
            refs = ",".join(str(child.item_id) for child in item.inputs)
            payload = f" {item.data}" if item.data else ""
            lines.append(f"({item.item_id}) {item.opcode}{payload} [{refs}]")

        visit(self)
        return "\n".join(lines)

    def __eq__(self, other) -> bool:
        return isinstance(other, LineageItem) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LineageItem({self.opcode}, key={self.key.hex()[:10]})"


def literal_item(value) -> LineageItem:
    """A leaf item for an inline literal."""
    return LineageItem("lit", (), f"{type(value).__name__}:{value!r}")


_GUID = itertools.count(1)


def input_item(name: str, guid: Optional[int] = None) -> LineageItem:
    """A leaf item for an external input (bound object or unknown variable).

    ``guid`` distinguishes different objects bound under the same name across
    executions; a fresh one is drawn when not supplied.
    """
    if guid is None:
        guid = next(_GUID)
    return LineageItem("input", (), f"{name}#{guid}")


def pread_item(path: str, mtime: float) -> LineageItem:
    """A leaf item for a persistent read, keyed by path and modification time."""
    return LineageItem("pread", (), f"{path}@{mtime}")
