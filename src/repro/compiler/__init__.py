"""Optimizing compiler: AST -> statement blocks -> HOP DAGs -> LOPs -> instructions.

The compilation chain mirrors SystemML/SystemDS (paper section 2.3(2)):
statement blocks delineated by control flow, per-block DAGs of high-level
operators, multiple rounds of rewrites and size propagation, memory-estimate
driven operator selection, and finally linear runtime instruction sequences
per program block.
"""

from repro.compiler.compile import compile_program, compile_script

__all__ = ["compile_program", "compile_script"]
