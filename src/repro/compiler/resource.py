"""What-if resource optimisation (paper section 3.4, "Cloud and Auto Scaling").

The paper argues that the stateless design plus size inference "enable
automatic resource optimization [29] in cloud environments": because the
compiler can estimate every operator's memory footprint *before* running,
it can compile the same script against candidate machine configurations and
pick the cheapest one whose plan is acceptable.

``optimize_resources`` does exactly that: for each candidate (memory
budget, price), it compiles the script, sums a cost proxy over the selected
operators (local operators are cheap; distributed operators pay a fixed
dispatch/shuffle penalty plus a data-volume term), and returns the
candidate minimising estimated money cost (time proxy x price).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.compiler import hops as H
from repro.compiler.blocks import BasicBlock, ForBlock, IfBlock, WhileBlock
from repro.compiler.compile import compile_script
from repro.compiler.sizes import VarStats, output_memory
from repro.config import ReproConfig
from repro.types import ExecType

#: Relative cost of dispatching one distributed operator (scheduling,
#: serialisation, shuffle) compared to one local operator.
SPARK_DISPATCH_PENALTY = 8.0

#: Cost per gigabyte of operator output (memory bandwidth proxy).
COST_PER_GB = 1.0

#: Assumed iterations for loops whose trip count is unknown at compile time.
DEFAULT_LOOP_ITERATIONS = 10


@dataclasses.dataclass(frozen=True)
class CandidateResource:
    """One machine configuration to evaluate."""

    name: str
    memory_budget: int
    price_per_hour: float


@dataclasses.dataclass
class ResourceEstimate:
    """Compile-time estimates for one candidate."""

    candidate: CandidateResource
    cp_operators: int
    spark_operators: int
    time_proxy: float
    money_proxy: float


@dataclasses.dataclass
class ResourcePlan:
    chosen: CandidateResource
    estimates: List[ResourceEstimate]

    def explain(self) -> str:
        lines = [f"{'candidate':>12} {'memory':>10} {'cp':>6} {'spark':>6}"
                 f" {'time~':>10} {'money~':>10}"]
        for estimate in self.estimates:
            marker = " *" if estimate.candidate is self.chosen else ""
            lines.append(
                f"{estimate.candidate.name:>12}"
                f" {estimate.candidate.memory_budget // (1024**2):>9}M"
                f" {estimate.cp_operators:>6} {estimate.spark_operators:>6}"
                f" {estimate.time_proxy:>10.2f} {estimate.money_proxy:>10.2f}{marker}"
            )
        return "\n".join(lines)


def _dag_cost(roots) -> Dict[str, float]:
    cp_ops = 0
    spark_ops = 0
    time_proxy = 0.0
    for hop in H.topological_order(roots):
        if isinstance(hop, (H.LiteralHop,)):
            continue
        if isinstance(hop, H.DataHop) and hop.op in ("tread", "twrite"):
            continue
        volume = output_memory(hop)
        if volume == float("inf"):
            volume = 0.0  # unknown sizes contribute the dispatch cost only
        gigabytes = volume / (1024**3)
        if hop.exec_type == ExecType.SPARK:
            spark_ops += 1
            time_proxy += SPARK_DISPATCH_PENALTY + gigabytes * COST_PER_GB * 2
        else:
            cp_ops += 1
            time_proxy += 1.0 + gigabytes * COST_PER_GB
    return {"cp": cp_ops, "spark": spark_ops, "time": time_proxy}


def _blocks_cost(blocks) -> Dict[str, float]:
    total = {"cp": 0, "spark": 0, "time": 0.0}

    def accumulate(cost, factor=1.0):
        total["cp"] += cost["cp"] * factor
        total["spark"] += cost["spark"] * factor
        total["time"] += cost["time"] * factor

    for block in blocks:
        if isinstance(block, BasicBlock):
            accumulate(_dag_cost(block.hop_roots))
        elif isinstance(block, IfBlock):
            then_cost = _blocks_cost(block.then_blocks)
            else_cost = _blocks_cost(block.else_blocks)
            # expected cost: average of the branches
            for key in total:
                total[key] += (then_cost[key] + else_cost[key]) / 2
        elif isinstance(block, (WhileBlock, ForBlock)):
            body = _blocks_cost(block.body)
            accumulate(body, DEFAULT_LOOP_ITERATIONS)
    return total


def _all_written_variables(script: str) -> List[str]:
    """Top-level assignment targets: kept live so nothing is DCE'd away."""
    from repro.lang import ast
    from repro.lang.parser import parse

    names = set()
    stack = list(parse(script).statements)
    while stack:
        statement = stack.pop()
        names |= ast.written_variables(statement)
        for attr in ("then_body", "else_body", "body"):
            stack.extend(getattr(statement, attr, []))
    return sorted(names)


def estimate_for_candidate(
    script: str,
    candidate: CandidateResource,
    input_stats: Optional[Dict[str, VarStats]] = None,
    base_config: Optional[ReproConfig] = None,
) -> ResourceEstimate:
    """Compile under one candidate's budget and estimate its cost."""
    base = base_config or ReproConfig()
    config = base.copy(memory_budget=candidate.memory_budget)
    program = compile_script(
        script, config, dict(input_stats or {}), outputs=_all_written_variables(script)
    )
    cost = _blocks_cost(program.blocks)
    for func in program.functions.values():
        function_cost = _blocks_cost(func.blocks)
        for key in cost:
            cost[key] += function_cost[key]
    money = cost["time"] * candidate.price_per_hour
    return ResourceEstimate(
        candidate=candidate,
        cp_operators=int(cost["cp"]),
        spark_operators=int(cost["spark"]),
        time_proxy=cost["time"],
        money_proxy=money,
    )


def optimize_resources(
    script: str,
    candidates: Sequence[CandidateResource],
    input_stats: Optional[Dict[str, VarStats]] = None,
    base_config: Optional[ReproConfig] = None,
) -> ResourcePlan:
    """Pick the candidate minimising estimated money cost for one script."""
    if not candidates:
        raise ValueError("at least one candidate resource required")
    estimates = [
        estimate_for_candidate(script, candidate, input_stats, base_config)
        for candidate in candidates
    ]
    chosen = min(estimates, key=lambda e: (e.money_proxy, e.candidate.memory_budget))
    return ResourcePlan(chosen=chosen.candidate, estimates=estimates)
