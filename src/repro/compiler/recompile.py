"""Dynamic recompilation of basic blocks (paper section 2.3(3)).

Blocks whose HOP DAGs had unknown sizes at compile time are recompiled
right before execution against the statistics of the live symbol table —
SystemDS' counterpart to adaptive query processing.  Recompilation rebuilds
the block's DAG from its statements (so it is thread-safe for parfor
workers), applies dynamic rewrites with the now-known sizes, and regenerates
the instruction sequence with fresh operator selections.

Because the generated plan depends only on the *statistics* of the read
variables (data type, dims, nnz), recompiled instruction sequences are
cached per (block, statistics signature): a loop whose inputs keep their
shapes pays for recompilation once, not per iteration.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Tuple

from repro.compiler.blocks import BasicBlock
from repro.compiler.builder import DagBuilder
from repro.compiler.instgen import generate_instructions
from repro.compiler.rewrites import apply_dynamic_rewrites, apply_rewrites
from repro.compiler.sizes import VarStats, propagate_dag
from repro.runtime.data import (
    FrameObject,
    ListObject,
    MatrixObject,
    ScalarObject,
)
from repro.types import DataType

_CACHE_LOCK = threading.Lock()
_PLAN_CACHE: "weakref.WeakKeyDictionary[BasicBlock, Dict[Tuple, List]]" = (
    weakref.WeakKeyDictionary()
)

#: Per-block cap on cached plans (loops over wildly varying shapes).
_MAX_PLANS_PER_BLOCK = 32


def stats_from_symbol_table(ctx) -> Dict[str, VarStats]:
    """Exact statistics of all live variables of one execution context."""
    stats: Dict[str, VarStats] = {}
    for name, value in ctx.variables.items():
        if isinstance(value, ScalarObject):
            stats[name] = VarStats.scalar(value.value_type)
        elif isinstance(value, MatrixObject):
            stats[name] = VarStats(
                value.data_type, value.value_type,
                value.num_rows, value.num_cols, value.nnz,
            )
        elif isinstance(value, FrameObject):
            stats[name] = VarStats(
                DataType.FRAME, value.frame.schema[0] if value.frame.schema else None,
                value.num_rows, value.num_cols, -1,
            )
        elif isinstance(value, ListObject):
            stats[name] = VarStats(DataType.LIST, None, len(value), 1, -1)
    return stats


def _live_signature(names: Tuple[str, ...], variables: Dict) -> Tuple:
    """A hashable key over the statistics the recompiled plan depends on.

    Built straight from the symbol table for just the block's read names —
    this sits on the per-iteration hot path of every loop (plan-cache
    lookups happen before each basic-block execution), so it avoids the
    full ``stats_from_symbol_table`` materialization on cache hits.  The
    tuples mirror ``VarStats`` field-for-field so equal statistics always
    map to equal keys.
    """
    parts = []
    for name in names:
        value = variables.get(name)
        if isinstance(value, ScalarObject):
            parts.append(
                (name, DataType.SCALAR.value, value.value_type.value, 0, 0, 0)
            )
        elif isinstance(value, MatrixObject):
            parts.append(
                (name, DataType.MATRIX.value, value.value_type.value,
                 value.num_rows, value.num_cols, value.nnz)
            )
        elif isinstance(value, FrameObject):
            schema = value.frame.schema
            parts.append(
                (name, DataType.FRAME.value,
                 schema[0].value if schema else None,
                 value.num_rows, value.num_cols, -1)
            )
        elif isinstance(value, ListObject):
            parts.append((name, DataType.LIST.value, None, len(value), 1, -1))
        else:
            parts.append((name, None))
    return tuple(parts)


_SORTED_READS: "weakref.WeakKeyDictionary[BasicBlock, Tuple[str, ...]]" = (
    weakref.WeakKeyDictionary()
)


def recompile_basic_block(block: BasicBlock, ctx) -> List:
    """Instructions for one basic block given live statistics (plan-cached)."""
    config = ctx.config
    names = _SORTED_READS.get(block)
    if names is None:
        names = _SORTED_READS[block] = tuple(sorted(block.reads()))
    signature = (_live_signature(names, ctx.variables), id(config))
    with _CACHE_LOCK:
        plans = _PLAN_CACHE.get(block)
        if plans is not None:
            cached = plans.get(signature)
            if cached is not None:
                return cached
    stats = stats_from_symbol_table(ctx)
    traces = getattr(ctx, "traces", None)
    if traces is not None:
        # plan-cache miss: the block's shapes drifted, so any compiled
        # trace over a previous plan of this block is stale
        traces.on_recompile(block)
    builder = DagBuilder(ctx.program.ast_functions)
    roots = builder.build_roots(block.statements, block.live_out)
    roots = apply_rewrites(roots, config)
    propagate_dag(roots, stats)
    roots = apply_dynamic_rewrites(roots, config)
    propagate_dag(roots, stats)
    instructions = generate_instructions(roots, config)
    with _CACHE_LOCK:
        plans = _PLAN_CACHE.setdefault(block, {})
        if len(plans) < _MAX_PLANS_PER_BLOCK:
            plans[signature] = instructions
    return instructions
