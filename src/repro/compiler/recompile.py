"""Dynamic recompilation of basic blocks (paper section 2.3(3)).

Blocks whose HOP DAGs had unknown sizes at compile time are recompiled
right before execution against the statistics of the live symbol table —
SystemDS' counterpart to adaptive query processing.  Recompilation rebuilds
the block's DAG from its statements (so it is thread-safe for parfor
workers), applies dynamic rewrites with the now-known sizes, and regenerates
the instruction sequence with fresh operator selections.

Because the generated plan depends only on the *statistics* of the read
variables (data type, dims, nnz), recompiled instruction sequences are
cached per (block, statistics signature): a loop whose inputs keep their
shapes pays for recompilation once, not per iteration.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Tuple

from repro.compiler.blocks import BasicBlock
from repro.compiler.builder import DagBuilder
from repro.compiler.instgen import generate_instructions
from repro.compiler.rewrites import apply_dynamic_rewrites, apply_rewrites
from repro.compiler.sizes import VarStats, propagate_dag
from repro.runtime.data import (
    FrameObject,
    ListObject,
    MatrixObject,
    ScalarObject,
)
from repro.types import DataType

_CACHE_LOCK = threading.Lock()
_PLAN_CACHE: "weakref.WeakKeyDictionary[BasicBlock, Dict[Tuple, List]]" = (
    weakref.WeakKeyDictionary()
)

#: Per-block cap on cached plans (loops over wildly varying shapes).
_MAX_PLANS_PER_BLOCK = 32


def stats_from_symbol_table(ctx) -> Dict[str, VarStats]:
    """Exact statistics of all live variables of one execution context."""
    stats: Dict[str, VarStats] = {}
    for name, value in ctx.variables.items():
        if isinstance(value, ScalarObject):
            stats[name] = VarStats.scalar(value.value_type)
        elif isinstance(value, MatrixObject):
            stats[name] = VarStats(
                value.data_type, value.value_type,
                value.num_rows, value.num_cols, value.nnz,
            )
        elif isinstance(value, FrameObject):
            stats[name] = VarStats(
                DataType.FRAME, value.frame.schema[0] if value.frame.schema else None,
                value.num_rows, value.num_cols, -1,
            )
        elif isinstance(value, ListObject):
            stats[name] = VarStats(DataType.LIST, None, len(value), 1, -1)
    return stats


def _stats_signature(block: BasicBlock, stats: Dict[str, VarStats]) -> Tuple:
    """A hashable key over the statistics the recompiled plan depends on."""
    parts = []
    for name in sorted(block.reads()):
        entry = stats.get(name)
        if entry is None:
            parts.append((name, None))
        else:
            parts.append(
                (name, entry.data_type.value, entry.value_type.value
                 if entry.value_type else None, entry.rows, entry.cols, entry.nnz)
            )
    return tuple(parts)


def recompile_basic_block(block: BasicBlock, ctx) -> List:
    """Instructions for one basic block given live statistics (plan-cached)."""
    config = ctx.config
    stats = stats_from_symbol_table(ctx)
    signature = (_stats_signature(block, stats), id(config))
    with _CACHE_LOCK:
        plans = _PLAN_CACHE.get(block)
        if plans is not None:
            cached = plans.get(signature)
            if cached is not None:
                return cached
    builder = DagBuilder(ctx.program.ast_functions)
    roots = builder.build_roots(block.statements, block.live_out)
    roots = apply_rewrites(roots, config)
    propagate_dag(roots, stats)
    roots = apply_dynamic_rewrites(roots, config)
    propagate_dag(roots, stats)
    instructions = generate_instructions(roots, config)
    with _CACHE_LOCK:
        plans = _PLAN_CACHE.setdefault(block, {})
        if len(plans) < _MAX_PLANS_PER_BLOCK:
            plans[signature] = instructions
    return instructions
