"""Statement blocks: the control-flow skeleton of a compiled program.

A DML script is partitioned into a hierarchy of statement blocks where
control-flow statements (if/while/for/parfor) delineate the blocks; all
statements of a basic (last-level) block compile into one HOP DAG (paper
section 2.3(2)).  This module defines the block classes and the backward
live-variable analysis that determines which DAG results must be exposed
as transient writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.lang import ast
from repro.lang.ast import read_variables, written_variables


class StatementBlock:
    """Base class: liveness sets shared by all block kinds."""

    def __init__(self):
        self.live_in: Set[str] = set()
        self.live_out: Set[str] = set()

    def reads(self) -> Set[str]:
        raise NotImplementedError

    def writes(self) -> Set[str]:
        raise NotImplementedError


class BasicBlock(StatementBlock):
    """A maximal run of straight-line statements compiled into one HOP DAG."""

    def __init__(self, statements: List[ast.Statement]):
        super().__init__()
        self.statements = statements
        self.hop_roots = []  # filled by the DAG builder
        self.instructions = []  # filled by instruction generation
        self.requires_recompile = False
        self._reads: Optional[frozenset] = None

    def reads(self) -> Set[str]:
        # memoized: statements are fixed at construction, but the dynamic
        # recompiler consults the read-set on every plan-cache lookup
        cached = self._reads
        if cached is None:
            names: Set[str] = set()
            defined: Set[str] = set()
            for statement in self.statements:
                names |= read_variables(statement) - defined
                defined |= written_variables(statement)
            cached = self._reads = frozenset(names)
        return cached

    def writes(self) -> Set[str]:
        names: Set[str] = set()
        for statement in self.statements:
            names |= written_variables(statement)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BasicBlock({len(self.statements)} stmts)"


class PredicateBlock(StatementBlock):
    """A condition/bound expression compiled into a tiny DAG of its own."""

    def __init__(self, expr: ast.Expr):
        super().__init__()
        self.expr = expr
        self.hop_root = None
        self.instructions = []
        self.requires_recompile = False

    def reads(self) -> Set[str]:
        statement = ast.ExprStatement(value=self.expr)
        return read_variables(statement)

    def writes(self) -> Set[str]:
        return set()


class IfBlock(StatementBlock):
    def __init__(self, predicate: PredicateBlock, then_blocks: List[StatementBlock],
                 else_blocks: List[StatementBlock]):
        super().__init__()
        self.predicate = predicate
        self.then_blocks = then_blocks
        self.else_blocks = else_blocks

    def reads(self) -> Set[str]:
        names = set(self.predicate.reads())
        for blocks in (self.then_blocks, self.else_blocks):
            defined: Set[str] = set()
            for block in blocks:
                names |= block.reads() - defined
                defined |= block.writes()
        return names

    def writes(self) -> Set[str]:
        names: Set[str] = set()
        for block in self.then_blocks + self.else_blocks:
            names |= block.writes()
        return names


class LoopBlock(StatementBlock):
    """Shared structure of while/for/parfor blocks."""

    def __init__(self, body: List[StatementBlock]):
        super().__init__()
        self.body = body

    def body_reads(self) -> Set[str]:
        names: Set[str] = set()
        defined: Set[str] = set()
        for block in self.body:
            names |= block.reads() - defined
            defined |= block.writes()
        # variables read on iteration 2+ after being written on iteration 1
        # are still live into the loop; be conservative and include all reads
        for block in self.body:
            names |= block.reads()
        return names

    def writes(self) -> Set[str]:
        names: Set[str] = set()
        for block in self.body:
            names |= block.writes()
        return names


class WhileBlock(LoopBlock):
    def __init__(self, predicate: PredicateBlock, body: List[StatementBlock]):
        super().__init__(body)
        self.predicate = predicate

    def reads(self) -> Set[str]:
        return self.predicate.reads() | self.body_reads()


class ForBlock(LoopBlock):
    def __init__(
        self,
        var: str,
        from_block: PredicateBlock,
        to_block: PredicateBlock,
        step_block: Optional[PredicateBlock],
        body: List[StatementBlock],
        parallel: bool = False,
        opts: Optional[Dict[str, ast.Expr]] = None,
    ):
        super().__init__(body)
        self.var = var
        self.from_block = from_block
        self.to_block = to_block
        self.step_block = step_block
        self.parallel = parallel
        self.opts = dict(opts or {})

    def reads(self) -> Set[str]:
        names = self.from_block.reads() | self.to_block.reads()
        if self.step_block is not None:
            names |= self.step_block.reads()
        for expr in self.opts.values():
            names |= read_variables(ast.ExprStatement(value=expr))
        names |= self.body_reads() - {self.var}
        return names

    def writes(self) -> Set[str]:
        return super().writes() | {self.var}


class FunctionBlocks:
    """The compiled body of one DML function.

    ``default_blocks`` maps parameter names to compiled predicate blocks for
    their default expressions, evaluated at call time for unbound params.
    """

    def __init__(self, name: str, params: List[ast.Param], returns: List[ast.Param],
                 blocks: List[StatementBlock],
                 default_blocks: Optional[Dict[str, "PredicateBlock"]] = None):
        self.name = name
        self.params = params
        self.returns = returns
        self.blocks = blocks
        self.default_blocks: Dict[str, PredicateBlock] = dict(default_blocks or {})


def build_blocks(statements: List[ast.Statement]) -> List[StatementBlock]:
    """Partition statements into the statement-block hierarchy."""
    blocks: List[StatementBlock] = []
    run: List[ast.Statement] = []

    def flush() -> None:
        if run:
            blocks.append(BasicBlock(list(run)))
            run.clear()

    for statement in statements:
        if isinstance(statement, ast.If):
            flush()
            blocks.append(
                IfBlock(
                    PredicateBlock(statement.condition),
                    build_blocks(statement.then_body),
                    build_blocks(statement.else_body),
                )
            )
        elif isinstance(statement, ast.While):
            flush()
            blocks.append(
                WhileBlock(PredicateBlock(statement.condition), build_blocks(statement.body))
            )
        elif isinstance(statement, (ast.For, ast.ParFor)):
            flush()
            step = PredicateBlock(statement.step_expr) if statement.step_expr is not None else None
            blocks.append(
                ForBlock(
                    statement.var,
                    PredicateBlock(statement.from_expr),
                    PredicateBlock(statement.to_expr),
                    step,
                    build_blocks(statement.body),
                    parallel=isinstance(statement, ast.ParFor),
                    opts=statement.opts if isinstance(statement, ast.ParFor) else None,
                )
            )
        else:
            run.append(statement)
    flush()
    return blocks


def _predicate_reads(block: StatementBlock) -> Set[str]:
    """Variables read by a loop's predicate/bound/option expressions."""
    if isinstance(block, WhileBlock):
        return block.predicate.reads()
    if isinstance(block, ForBlock):
        names = block.from_block.reads() | block.to_block.reads()
        if block.step_block is not None:
            names |= block.step_block.reads()
        for expr in block.opts.values():
            names |= read_variables(ast.ExprStatement(value=expr))
        return names
    return set()


def analyze_liveness(blocks: List[StatementBlock], live_at_end: Set[str]) -> Set[str]:
    """Backward liveness over a block sequence; returns live-in of the sequence.

    Within loops, everything written by the body is kept live across the
    body (a value produced in iteration i may be read in iteration i+1).
    """
    live = set(live_at_end)
    for block in reversed(blocks):
        block.live_out = set(live)
        if isinstance(block, IfBlock):
            then_in = analyze_liveness(block.then_blocks, live)
            else_in = analyze_liveness(block.else_blocks, live)
            live = then_in | else_in | block.predicate.reads()
        elif isinstance(block, (WhileBlock, ForBlock)):
            # fixpoint: values read by the next iteration are live across the
            # body, but body-local temps (defined before use each iteration)
            # are not — this keeps parfor result-variable detection precise
            # while predicates are re-evaluated after every iteration, so
            # their reads are live at the end of the body
            repeat_reads = _predicate_reads(block) if isinstance(block, WhileBlock) else set()
            body_live_out = set(live) | repeat_reads
            while True:
                body_live_in = analyze_liveness(block.body, body_live_out)
                if isinstance(block, ForBlock):
                    body_live_in = body_live_in - {block.var}
                new_out = set(live) | repeat_reads | body_live_in
                if new_out == body_live_out:
                    break
                body_live_out = new_out
            live = set(live) | body_live_in | _predicate_reads(block)
        else:
            live = (live - block.writes()) | block.reads()
        block.live_in = set(live)
    return live
