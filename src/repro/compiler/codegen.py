"""Operator fusion via code generation (paper Figure 3 "codegen", §3.4).

Chains of elementwise operations like ``(X - mu) / sigma * w + b`` normally
execute one instruction per operator, materialising an intermediate matrix
each time.  The cell-template fusion implemented here — the simplest of
SystemML's codegen templates — finds maximal single-consumer regions of
elementwise operators, generates one Python function evaluating the whole
region in a single vectorised expression, and compiles it with
``compile()``; the runtime executes one fused instruction with no
intermediates.

Fused evaluation is dense: sparse leaf inputs are densified.  (Exploiting
sparsity inside fused operators is exactly the open research direction the
paper cites [8]; regions over sparse data are left unfused when the root
estimate says sparsity matters.)
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.compiler import hops as H

_FUSED_IDS = itertools.count(1)

#: Elementwise binary operators the cell template supports.
_BINARY_RENDER = {
    "+": "({0} + {1})",
    "-": "({0} - {1})",
    "*": "({0} * {1})",
    "/": "({0} / {1})",
    "^": "np.power({0}, {1})",
    "%%": "np.mod({0}, {1})",
    "%/%": "np.floor_divide({0}, {1})",
    "min": "np.minimum({0}, {1})",
    "max": "np.maximum({0}, {1})",
    "<": "({0} < {1})",
    "<=": "({0} <= {1})",
    ">": "({0} > {1})",
    ">=": "({0} >= {1})",
    "==": "({0} == {1})",
    "!=": "({0} != {1})",
}

#: Elementwise unary operators the cell template supports.
_UNARY_RENDER = {
    "exp": "np.exp({0})",
    "log": "np.log({0})",
    "sqrt": "np.sqrt({0})",
    "abs": "np.abs({0})",
    "round": "np.round({0})",
    "floor": "np.floor({0})",
    "ceil": "np.ceil({0})",
    "sign": "np.sign({0})",
    "sin": "np.sin({0})",
    "cos": "np.cos({0})",
    "tan": "np.tan({0})",
    "sigmoid": "(1.0 / (1.0 + np.exp(-({0}))))",
    "uminus": "(-({0}))",
    "!": "np.logical_not({0})",
    "isnan": "np.isnan({0})",
}

#: Regions this sparse at the root are left unfused (dense evaluation would
#: forfeit the sparse kernels).
_SPARSE_GUARD = 0.2

#: Minimum number of fused operator nodes for fusion to pay off.
MIN_REGION_SIZE = 2


class FusedRegion:
    """One fusable sub-DAG: its root, interior nodes, leaves, and code."""

    def __init__(self, root: H.Hop, interior: Set[int], leaves: List[H.Hop]):
        self.root = root
        self.interior = interior
        self.leaves = leaves
        self.name = f"fused_cell_{next(_FUSED_IDS)}"
        self.source = self._generate_source()
        self.func = self._compile()
        digest = hashlib.blake2b(self.source.encode(), digest_size=8)
        self.signature = digest.hexdigest()

    # --- code generation -----------------------------------------------------

    def _generate_source(self) -> str:
        leaf_names = {leaf.hop_id: f"x{i}" for i, leaf in enumerate(self.leaves)}

        def render(hop: H.Hop) -> str:
            if hop.hop_id in leaf_names:
                return leaf_names[hop.hop_id]
            if isinstance(hop, H.LiteralHop):
                return repr(float(hop.value))
            if isinstance(hop, H.BinaryHop):
                template = _BINARY_RENDER[hop.op]
                return template.format(render(hop.inputs[0]), render(hop.inputs[1]))
            if isinstance(hop, H.UnaryHop):
                template = _UNARY_RENDER[hop.op]
                return template.format(render(hop.inputs[0]))
            raise KeyError(f"non-fusable hop {hop!r} inside region")

        params = ", ".join(leaf_names[leaf.hop_id] for leaf in self.leaves)
        body = render(self.root)
        return (
            f"def {self.name}({params}):\n"
            f"    return np.asarray({body}, dtype=np.float64)\n"
        )

    def _compile(self) -> Callable:
        namespace = {"np": np}
        code = compile(self.source, filename=f"<{self.name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - compiler-generated code
        return namespace[self.name]


def _is_fusable(hop: H.Hop) -> bool:
    if isinstance(hop, H.BinaryHop):
        return hop.op in _BINARY_RENDER and hop.is_matrix()
    if isinstance(hop, H.UnaryHop):
        return hop.op in _UNARY_RENDER and hop.is_matrix()
    return False


def plan_cell_fusion(roots: Sequence[H.Hop]) -> Dict[int, FusedRegion]:
    """Find maximal fusable regions; returns region by root hop id."""
    order = H.topological_order(roots)
    consumers: Dict[int, int] = {}
    for hop in order:
        for child in hop.inputs:
            consumers[child.hop_id] = consumers.get(child.hop_id, 0) + 1
    consumed_by_fusable: Dict[int, int] = {}
    for hop in order:
        if _is_fusable(hop):
            for child in hop.inputs:
                consumed_by_fusable[child.hop_id] = (
                    consumed_by_fusable.get(child.hop_id, 0) + 1
                )

    regions: Dict[int, FusedRegion] = {}
    claimed: Set[int] = set()
    for hop in reversed(order):  # roots first
        if not _is_fusable(hop) or hop.hop_id in claimed:
            continue
        # region roots: fusable nodes not absorbed into a larger region
        interior: Set[int] = set()
        leaves: List[H.Hop] = []
        leaf_ids: Set[int] = set()

        def grow(node: H.Hop) -> None:
            interior.add(node.hop_id)
            for child in node.inputs:
                if isinstance(child, H.LiteralHop):
                    continue  # rendered inline
                absorbable = (
                    _is_fusable(child)
                    and consumers.get(child.hop_id, 0) == 1
                    and child.hop_id not in claimed
                )
                if absorbable:
                    grow(child)
                elif child.hop_id not in leaf_ids:
                    leaf_ids.add(child.hop_id)
                    leaves.append(child)

        grow(hop)
        if len(interior) < MIN_REGION_SIZE:
            continue
        if 0.0 <= hop.sparsity < _SPARSE_GUARD and hop.nnz_known:
            continue  # keep sparse chains on the sparse kernels
        if len(leaves) > 8:
            continue  # cap generated-function arity
        regions[hop.hop_id] = FusedRegion(hop, interior, leaves)
        claimed |= interior
    return regions
