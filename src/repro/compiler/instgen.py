"""Instruction generation: lowering HOP DAGs to runtime instructions.

Hops are emitted in topological order following ``effective_inputs`` (so
fused matmults skip transpose materialisation).  Every non-literal hop gets
a temp operand ``_t<hop id>``; transient writes copy temps into variable
names.  Operator backends are selected per hop from the memory estimate:
estimates above the configured budget produce distributed (Spark-like)
instructions, everything else local CP instructions (paper section 2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiler import hops as H
from repro.compiler.rewrites import effective_inputs
from repro.config import ReproConfig
from repro.errors import CompileError
from repro.runtime.instructions import cp
from repro.runtime.instructions.base import Instruction, Operand
from repro.types import ExecType

#: Opcodes with a distributed implementation (see runtime/instructions/spark.py).
_SPARK_BINARY = frozenset({"+", "-", "*", "/", "^", "min", "max", "<", "<=", ">", ">=", "==", "!="})
_SPARK_AGG = frozenset({"sum", "mean", "min", "max"})
_SPARK_REORG = frozenset({"t"})


class InstructionGenerator:
    """Generates the instruction sequence for one DAG."""

    def __init__(self, config: ReproConfig):
        self.config = config
        self.instructions: List[Instruction] = []
        self._operands: Dict[int, Operand] = {}
        #: entry-value snapshots for variables that are both read and
        #: overwritten in this DAG (avoids write-after-read hazards between
        #: transient writes and by-name transient reads)
        self._snapshots: Dict[str, Operand] = {}
        #: cell-fusion regions by root hop id (filled by generate())
        self._fusion: Dict[int, object] = {}

    # --- public -------------------------------------------------------------

    def generate(self, roots) -> List[Instruction]:
        if self.config.enable_codegen:
            from repro.compiler.codegen import plan_cell_fusion

            self._fusion = plan_cell_fusion(roots)
        else:
            self._fusion = {}
        self._emit_snapshots(roots)
        for root in roots:
            self.operand(root)
        return self.instructions

    def _emit_snapshots(self, roots) -> None:
        written = set()
        read = set()
        for hop in H.topological_order(roots):
            if isinstance(hop, H.DataHop):
                if hop.op == "twrite":
                    written.add(hop.name)
                elif hop.op == "tread":
                    read.add(hop.name)
        for name in sorted(read & written):
            snapshot = f"_tin_{name}"
            self.instructions.append(
                cp.AssignVarInstruction(Operand.var(name), snapshot)
            )
            self._snapshots[name] = Operand.var(snapshot)

    def operand(self, hop: H.Hop) -> Operand:
        """The operand holding the result of ``hop``, emitting it if needed."""
        cached = self._operands.get(hop.hop_id)
        if cached is not None:
            return cached
        operand = self._emit(hop)
        self._operands[hop.hop_id] = operand
        return operand

    # --- helpers -------------------------------------------------------------------

    def _temp(self, hop: H.Hop) -> str:
        return f"_t{hop.hop_id}"

    def _use_spark(self, hop: H.Hop) -> bool:
        # unknown sizes stay CP: dynamic recompilation re-selects operators
        # once the live statistics are known (paper section 2.3(3))
        if hop.mem_estimate < 0 or hop.mem_estimate == float("inf"):
            return False
        return hop.mem_estimate > self.config.operator_memory_budget

    def _spark(self, hop: H.Hop, kind: str, *args) -> Optional[Operand]:
        """Emit a distributed instruction when selected; None otherwise."""
        if not self._use_spark(hop):
            return None
        from repro.runtime.instructions import spark

        instruction = spark.create(kind, *args)
        if instruction is None:
            return None
        hop.exec_type = ExecType.SPARK
        self.instructions.append(instruction)
        return Operand.var(instruction.output)

    # --- emission per hop type -------------------------------------------------------

    def _emit(self, hop: H.Hop) -> Operand:
        if isinstance(hop, H.LiteralHop):
            return Operand.lit(hop.value)
        if isinstance(hop, H.DataHop):
            return self._emit_data(hop)
        if isinstance(hop, H.FuncOutHop):
            parent = hop.inputs[0]
            self.operand(parent)  # ensure the call is emitted
            return Operand.var(f"_t{parent.hop_id}_o{hop.index}")
        if isinstance(hop, H.FunctionCallHop):
            return self._emit_fcall(hop)
        if isinstance(hop, H.MultiReturnBuiltinHop):
            return self._emit_multireturn(hop)
        if isinstance(hop, H.DataGenHop):
            return self._emit_datagen(hop)
        if isinstance(hop, H.AggBinaryHop):
            return self._emit_matmult(hop)
        region = self._fusion.get(hop.hop_id)
        if region is not None:
            operands = [self.operand(leaf) for leaf in region.leaves]
            out = self._temp(hop)
            hop.exec_type = ExecType.CP
            self.instructions.append(cp.FusedCellInstruction(region, operands, out))
            return Operand.var(out)
        if isinstance(hop, H.BinaryHop):
            left = self.operand(hop.inputs[0])
            right = self.operand(hop.inputs[1])
            out = self._temp(hop)
            spark_op = None
            if hop.op in _SPARK_BINARY and hop.is_matrix():
                spark_op = self._spark(hop, "binary", hop.op, left, right, out)
            if spark_op is not None:
                return spark_op
            hop.exec_type = ExecType.CP
            self.instructions.append(cp.BinaryInstruction(hop.op, left, right, out))
            return Operand.var(out)
        if isinstance(hop, H.AggUnaryHop):
            operand = self.operand(hop.inputs[0])
            out = self._temp(hop)
            if hop.op in _SPARK_AGG:
                spark_op = self._spark(hop, "agg", hop.op, hop.direction, operand, out)
                if spark_op is not None:
                    return spark_op
            hop.exec_type = ExecType.CP
            self.instructions.append(
                cp.AggregateUnaryInstruction(hop.op, hop.direction, operand, out)
            )
            return Operand.var(out)
        if isinstance(hop, H.UnaryHop):
            return self._emit_unary(hop)
        if isinstance(hop, H.ReorgHop):
            operands = [self.operand(child) for child in hop.inputs]
            out = self._temp(hop)
            if hop.op in _SPARK_REORG:
                spark_op = self._spark(hop, "reorg", hop.op, operands[0], out)
                if spark_op is not None:
                    return spark_op
            hop.exec_type = ExecType.CP
            self.instructions.append(cp.ReorgInstruction(hop.op, operands, out))
            return Operand.var(out)
        if isinstance(hop, H.IndexingHop):
            operands = [self.operand(child) for child in hop.inputs]
            out = self._temp(hop)
            self.instructions.append(cp.IndexingInstruction(operands, out))
            return Operand.var(out)
        if isinstance(hop, H.LeftIndexingHop):
            operands = [self.operand(child) for child in hop.inputs]
            out = self._temp(hop)
            self.instructions.append(cp.LeftIndexingInstruction(operands, out))
            return Operand.var(out)
        if isinstance(hop, H.TernaryHop):
            operands = [self.operand(child) for child in hop.inputs]
            out = self._temp(hop)
            self.instructions.append(cp.TernaryInstruction(hop.op, operands, out))
            return Operand.var(out)
        if isinstance(hop, H.NaryHop):
            operands = [self.operand(child) for child in hop.inputs]
            out = self._temp(hop)
            self.instructions.append(cp.NaryInstruction(hop.op, operands, out))
            return Operand.var(out)
        if isinstance(hop, H.ParamBuiltinHop):
            params = {
                name: self.operand(child)
                for name, child in zip(hop.param_names, hop.inputs)
            }
            out = self._temp(hop)
            self.instructions.append(cp.ParamBuiltinInstruction(hop.op, params, out))
            return Operand.var(out)
        raise CompileError(f"no lowering for hop {hop!r}")

    def _emit_data(self, hop: H.DataHop) -> Operand:
        if hop.op == "tread":
            snapshot = self._snapshots.get(hop.name)
            if snapshot is not None:
                return snapshot
            return Operand.var(hop.name)
        if hop.op == "twrite":
            source = self.operand(hop.inputs[0])
            self.instructions.append(cp.AssignVarInstruction(source, hop.name))
            return Operand.var(hop.name)
        if hop.op == "pread":
            operands = [self.operand(hop.inputs[0])]
            names = list(hop.params.keys())
            operands += [self.operand(child) for child in hop.params.values()]
            out = self._temp(hop)
            self.instructions.append(
                cp.ReadInstruction(operands, out, {"names": names})
            )
            return Operand.var(out)
        if hop.op == "pwrite":
            operands = [self.operand(hop.inputs[0]), self.operand(hop.inputs[1])]
            names = list(hop.params.keys())
            operands += [self.operand(child) for child in hop.params.values()]
            self.instructions.append(cp.WriteInstruction(operands, {"names": names}))
            return Operand.lit(True)
        raise CompileError(f"unknown data op {hop.op!r}")

    def _emit_unary(self, hop: H.UnaryHop) -> Operand:
        operand = self.operand(hop.inputs[0])
        if hop.op == "print":
            self.instructions.append(cp.PrintInstruction(operand))
            return Operand.lit(True)
        if hop.op == "stop":
            self.instructions.append(cp.StopInstruction(operand))
            return Operand.lit(True)
        if hop.op == "assert":
            self.instructions.append(cp.AssertInstruction(operand))
            return Operand.lit(True)
        if hop.op == "discard":
            self.instructions.append(cp.DiscardInstruction(operand))
            return Operand.lit(True)
        out = self._temp(hop)
        hop.exec_type = ExecType.CP
        self.instructions.append(cp.UnaryInstruction(hop.op, operand, out))
        return Operand.var(out)

    def _emit_datagen(self, hop: H.DataGenHop) -> Operand:
        params = {
            name: self.operand(child)
            for name, child in zip(hop.param_names, hop.inputs)
        }
        out = self._temp(hop)
        if hop.method == "rand":
            spark_op = self._spark(hop, "rand", params, out)
            if spark_op is not None:
                return spark_op
        hop.exec_type = ExecType.CP
        self.instructions.append(cp.DataGenInstruction(hop.method, params, out))
        return Operand.var(out)

    def _emit_matmult(self, hop: H.AggBinaryHop) -> Operand:
        inputs = effective_inputs(hop)
        operands = [self.operand(child) for child in inputs]
        out = self._temp(hop)
        physical = hop.physical or "mm"
        spark_op = self._spark(hop, "matmult", physical, operands, out,
                               [(h.rows, h.cols) for h in inputs])
        if spark_op is not None:
            return spark_op
        hop.exec_type = ExecType.CP
        self.instructions.append(cp.MatMultInstruction(physical, operands, out))
        return Operand.var(out)

    def _emit_fcall(self, hop: H.FunctionCallHop) -> Operand:
        operands = [self.operand(child) for child in hop.inputs]
        outputs = [f"_t{hop.hop_id}_o{i}" for i in range(len(hop.output_names))]
        self.instructions.append(
            cp.FunctionCallInstruction(hop.func_name, operands, hop.arg_names, outputs)
        )
        return Operand.lit(True)

    def _emit_multireturn(self, hop: H.MultiReturnBuiltinHop) -> Operand:
        operands = [self.operand(child) for child in hop.inputs]
        outputs = [f"_t{hop.hop_id}_o{i}" for i in range(hop.n_outputs)]
        self.instructions.append(
            cp.MultiReturnBuiltinInstruction(hop.op, operands, outputs)
        )
        return Operand.lit(True)


def generate_instructions(roots, config: ReproConfig) -> List[Instruction]:
    """Lower one DAG (given by its roots) to a linear instruction sequence."""
    return InstructionGenerator(config).generate(roots)


def generate_predicate(root, config: ReproConfig):
    """Lower a predicate DAG; returns (instructions, result operand)."""
    generator = InstructionGenerator(config)
    operand = generator.operand(root)
    return generator.instructions, operand
