"""The end-to-end compilation pipeline (paper Figure 3, step 2).

``compile_script`` runs: parse -> builtin-function resolution -> IPA ->
statement blocks + liveness -> per-block HOP DAGs -> static rewrites ->
inter-block size propagation with dynamic rewrites (constant-predicate
branch removal, metadata folding) -> operator selection and instruction
generation.  Blocks whose DAGs retain unknown sizes are flagged for dynamic
recompilation at runtime.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence

from repro.compiler import hops as H
from repro.compiler.blocks import (
    BasicBlock,
    ForBlock,
    FunctionBlocks,
    IfBlock,
    PredicateBlock,
    StatementBlock,
    WhileBlock,
    analyze_liveness,
    build_blocks,
)
from repro.compiler.builder import DagBuilder, builtin_names
from repro.compiler.instgen import generate_instructions, generate_predicate
from repro.compiler.ipa import collect_called_functions, run_ipa
from repro.compiler.rewrites import apply_dynamic_rewrites, apply_rewrites
from repro.compiler.sizes import VarStats, dag_has_unknowns, propagate_dag
from repro.config import ReproConfig, default_config
from repro.errors import CompileError
from repro.lang import ast
from repro.lang.parser import parse
from repro.runtime.program import RuntimeProgram
from repro.types import DataType, ValueType


def compile_script(
    source: str,
    config: Optional[ReproConfig] = None,
    input_stats: Optional[Dict[str, VarStats]] = None,
    outputs: Optional[Sequence[str]] = None,
) -> RuntimeProgram:
    """Compile DML source into an executable runtime program."""
    program = parse(source)
    return compile_program(program, config, input_stats, outputs)


def compile_program(
    program: ast.Program,
    config: Optional[ReproConfig] = None,
    input_stats: Optional[Dict[str, VarStats]] = None,
    outputs: Optional[Sequence[str]] = None,
) -> RuntimeProgram:
    config = config or default_config()
    functions = dict(program.functions)
    _resolve_builtin_functions(program, functions)
    functions = run_ipa(program, functions, enable_inlining=config.enable_ipa)

    blocks = build_blocks(program.statements)
    output_names = list(outputs or [])
    analyze_liveness(blocks, set(output_names))

    builder = DagBuilder(functions)
    stats = dict(input_stats or {})
    blocks = _finalize_blocks(blocks, stats, builder, config)

    compiled_functions: Dict[str, FunctionBlocks] = {}
    for name, func in functions.items():
        compiled_functions[name] = _compile_function(func, builder, config)

    return RuntimeProgram(blocks, compiled_functions, functions, config, output_names)


# ---------------------------------------------------------------------------
# builtin function resolution
# ---------------------------------------------------------------------------


def _resolve_builtin_functions(program: ast.Program, functions: Dict[str, ast.FunctionDef]) -> None:
    """Pull DML-bodied builtin functions referenced by the script into scope."""
    from repro.builtins.registry import lookup_builtin_function
    from repro.compiler.ipa import collect_string_references

    known = builtin_names()
    pending = True
    while pending:
        pending = False
        called = collect_called_functions(program.statements)
        called |= collect_string_references(program.statements)
        for func in functions.values():
            called |= collect_called_functions(func.body)
            called |= collect_string_references(func.body)
        for name in sorted(called):
            if name in functions or name in known:
                continue
            resolved = lookup_builtin_function(name)
            if resolved is None:
                continue  # leave for a precise compile error at DAG build
            for fname, fdef in resolved.items():
                if fname not in functions:
                    functions[fname] = fdef
                    pending = True


# ---------------------------------------------------------------------------
# block finalisation: DAGs, rewrites, size propagation, instructions
# ---------------------------------------------------------------------------


def _finalize_blocks(
    blocks: List[StatementBlock],
    stats: Dict[str, VarStats],
    builder: DagBuilder,
    config: ReproConfig,
) -> List[StatementBlock]:
    result: List[StatementBlock] = []
    for block in blocks:
        result.extend(_finalize_block(block, stats, builder, config))
    return result


def _finalize_block(block, stats, builder, config) -> List[StatementBlock]:
    if isinstance(block, BasicBlock):
        _finalize_basic(block, stats, builder, config)
        return [block]
    if isinstance(block, IfBlock):
        return _finalize_if(block, stats, builder, config)
    if isinstance(block, WhileBlock):
        _finalize_predicate(block.predicate, stats, builder, config)
        _wipe_stats(stats, block.writes())
        body_stats = dict(stats)
        block.body = _finalize_blocks(block.body, body_stats, builder, config)
        _wipe_stats(stats, block.writes())
        return [block]
    if isinstance(block, ForBlock):
        _finalize_predicate(block.from_block, stats, builder, config)
        _finalize_predicate(block.to_block, stats, builder, config)
        if block.step_block is not None:
            _finalize_predicate(block.step_block, stats, builder, config)
        _wipe_stats(stats, block.writes())
        body_stats = dict(stats)
        body_stats[block.var] = VarStats.scalar(ValueType.INT64)
        block.body = _finalize_blocks(block.body, body_stats, builder, config)
        _wipe_stats(stats, block.writes())
        return [block]
    raise CompileError(f"unknown block type {type(block).__name__}")


def _finalize_basic(block: BasicBlock, stats, builder: DagBuilder, config) -> None:
    roots = builder.build_roots(block.statements, block.live_out)
    roots = apply_rewrites(roots, config)
    propagate_dag(roots, stats)
    roots = apply_dynamic_rewrites(roots, config)
    propagate_dag(roots, stats)
    block.hop_roots = roots
    block.requires_recompile = dag_has_unknowns(roots)
    block.instructions = generate_instructions(roots, config)
    _update_stats_from_roots(roots, stats, builder)


def _finalize_predicate(pred: PredicateBlock, stats, builder: DagBuilder, config) -> None:
    builder.build_predicate(pred)
    roots = apply_rewrites([pred.hop_root], config)
    propagate_dag(roots, stats)
    roots = apply_dynamic_rewrites(roots, config)
    propagate_dag(roots, stats)
    pred.hop_root = roots[0]
    pred.instructions, pred.result = generate_predicate(pred.hop_root, config)
    pred.requires_recompile = dag_has_unknowns(roots)


def _finalize_if(block: IfBlock, stats, builder, config) -> List[StatementBlock]:
    _finalize_predicate(block.predicate, stats, builder, config)
    root = block.predicate.hop_root
    if config.enable_rewrites and isinstance(root, H.LiteralHop):
        # constant-predicate branch removal (paper Example 1)
        chosen = block.then_blocks if bool(root.value) else block.else_blocks
        return _finalize_blocks(chosen, stats, builder, config)
    then_stats = dict(stats)
    else_stats = dict(stats)
    block.then_blocks = _finalize_blocks(block.then_blocks, then_stats, builder, config)
    block.else_blocks = _finalize_blocks(block.else_blocks, else_stats, builder, config)
    _merge_branch_stats(stats, then_stats, else_stats, block.writes())
    return [block]


def _merge_branch_stats(stats, then_stats, else_stats, written) -> None:
    for name in written:
        a = then_stats.get(name)
        b = else_stats.get(name)
        if a is not None and b is not None and a == b:
            stats[name] = a
        elif a is not None and b is not None and a.data_type == b.data_type:
            stats[name] = VarStats(a.data_type, a.value_type, -1, -1, -1)
        else:
            stats.pop(name, None)


def _wipe_stats(stats: Dict[str, VarStats], written) -> None:
    """Loop-updated variables lose their statistics (conservative)."""
    for name in written:
        entry = stats.get(name)
        if entry is not None and entry.data_type == DataType.SCALAR:
            stats[name] = VarStats.scalar(entry.value_type)
        elif entry is not None:
            stats[name] = VarStats(entry.data_type, entry.value_type, -1, -1, -1)
        else:
            stats.pop(name, None)


def _update_stats_from_roots(roots, stats: Dict[str, VarStats], builder: DagBuilder) -> None:
    for root in roots:
        if isinstance(root, H.DataHop) and root.op == "twrite":
            source = root.inputs[0]
            stats[root.name] = VarStats(
                source.data_type, source.value_type, source.rows, source.cols, source.nnz
            )
        elif isinstance(root, H.FunctionCallHop):
            func = builder.functions.get(root.func_name)
            for index, out_name in enumerate(root.output_names):
                if func is not None and index < len(func.returns):
                    spec = func.returns[index].type_spec
                    stats[out_name] = VarStats(spec.data_type, spec.value_type, -1, -1, -1)
                else:
                    stats.pop(out_name, None)
        elif isinstance(root, H.MultiReturnBuiltinHop):
            pass  # outputs land in temps only; twrites carry the var stats


# ---------------------------------------------------------------------------
# function compilation
# ---------------------------------------------------------------------------


def _compile_function(func: ast.FunctionDef, builder: DagBuilder, config) -> FunctionBlocks:
    blocks = build_blocks(func.body)
    return_names = {ret.name for ret in func.returns}
    analyze_liveness(blocks, return_names)
    stats: Dict[str, VarStats] = {}
    for param in func.params:
        spec = param.type_spec
        if spec.data_type == DataType.SCALAR:
            stats[param.name] = VarStats.scalar(spec.value_type)
        else:
            stats[param.name] = VarStats(spec.data_type, spec.value_type, -1, -1, -1)
    blocks = _finalize_blocks(blocks, stats, builder, config)
    default_blocks = {}
    for param in func.params:
        if param.default is not None:
            pred = PredicateBlock(param.default)
            _finalize_predicate(pred, {}, builder, config)
            default_blocks[param.name] = pred
    return FunctionBlocks(func.name, func.params, func.returns, blocks, default_blocks)
