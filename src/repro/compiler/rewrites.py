"""Static and dynamic HOP rewrites (paper sections 2.2, 2.3, 3.4).

Implemented rewrite classes:

* constant folding of scalar expressions;
* algebraic simplifications (``X*1``, ``X+0``, ``t(t(X))``, ...);
* metadata folding: ``nrow(X)``/``ncol(X)`` become literals once sizes are
  known (this is what lets the compiler collapse ``lm``'s branch in the
  paper's Example 1);
* common-subexpression elimination over the DAG;
* fusion annotation: ``t(X) %*% X`` -> TSMM and ``t(X) %*% Y`` -> fused
  transpose-matmult, avoiding transpose materialisation.

All rewrites operate in place on a DAG given as a list of root hops and
return the (possibly replaced) roots.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.compiler import hops as H
from repro.config import ReproConfig
from repro.types import DataType

_FOLDABLE_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "^": lambda a, b: a ** b,
    "%%": lambda a, b: a % b if b != 0 else None,
    "%/%": lambda a, b: a // b if b != 0 else None,
    "min": min,
    "max": max,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&": lambda a, b: bool(a) and bool(b),
    "|": lambda a, b: bool(a) or bool(b),
}

_FOLDABLE_UNARY = {
    "uminus": lambda a: -a,
    "!": lambda a: not bool(a),
    "abs": abs,
    "sqrt": lambda a: math.sqrt(a) if a >= 0 else None,
    "exp": math.exp,
    "log": lambda a: math.log(a) if a > 0 else None,
    "floor": lambda a: float(math.floor(a)),
    "ceil": lambda a: float(math.ceil(a)),
    "round": lambda a: float(round(a)),
    "cast_as_double": float,
    "cast_as_integer": lambda a: int(a),
    "cast_as_boolean": bool,
}


def apply_rewrites(roots: Sequence[H.Hop], config: ReproConfig) -> List[H.Hop]:
    """One full static rewrite round: fold, simplify, CSE, fusion."""
    roots = list(roots)
    if config.enable_rewrites:
        roots = rewrite_dag(roots, _fold_constant)
        roots = rewrite_dag(roots, _simplify_algebraic)
    if config.enable_cse:
        roots = eliminate_cse(roots)
    if config.enable_fusion:
        annotate_fusion(roots)
    return roots


def apply_dynamic_rewrites(roots: Sequence[H.Hop], config: ReproConfig) -> List[H.Hop]:
    """Rewrites valid only once sizes are known (after size propagation)."""
    roots = list(roots)
    if config.enable_rewrites:
        roots = rewrite_dag(roots, _fold_metadata)
        roots = rewrite_dag(roots, _fold_constant)
        roots = rewrite_dag(roots, _simplify_algebraic)
        from repro.compiler.chains import optimize_matmult_chains

        roots = optimize_matmult_chains(roots)
    if config.enable_cse:
        roots = eliminate_cse(roots)
    if config.enable_fusion:
        annotate_fusion(roots)
    return roots


def rewrite_dag(roots: Sequence[H.Hop], rule) -> List[H.Hop]:
    """Apply one bottom-up rewrite rule to every node of the DAG."""
    replacement: Dict[int, H.Hop] = {}
    for hop in H.topological_order(roots):
        hop.inputs = [replacement.get(child.hop_id, child) for child in hop.inputs]
        new_hop = rule(hop)
        if new_hop is not hop:
            if new_hop.rows < 0 and hop.rows >= 0:
                new_hop.copy_stats_from(hop)
            replacement[hop.hop_id] = new_hop
    return [replacement.get(root.hop_id, root) for root in roots]


# ---------------------------------------------------------------------------
# individual rules
# ---------------------------------------------------------------------------


def _fold_constant(hop: H.Hop) -> H.Hop:
    if isinstance(hop, H.BinaryHop) and hop.op in _FOLDABLE_BINARY:
        left, right = hop.inputs
        if isinstance(left, H.LiteralHop) and isinstance(right, H.LiteralHop):
            if isinstance(left.value, str) or isinstance(right.value, str):
                if hop.op == "+":
                    return H.LiteralHop(str(left.value) + str(right.value))
                return hop
            result = _FOLDABLE_BINARY[hop.op](left.value, right.value)
            if result is not None:
                return H.LiteralHop(result)
    elif isinstance(hop, H.UnaryHop) and hop.op in _FOLDABLE_UNARY:
        operand = hop.inputs[0]
        if isinstance(operand, H.LiteralHop) and not isinstance(operand.value, str):
            result = _FOLDABLE_UNARY[hop.op](operand.value)
            if result is not None:
                return H.LiteralHop(result)
    return hop


def _is_literal(hop: H.Hop, value) -> bool:
    return isinstance(hop, H.LiteralHop) and not isinstance(hop.value, (str, bool)) and hop.value == value


def _simplify_algebraic(hop: H.Hop) -> H.Hop:
    if isinstance(hop, H.BinaryHop):
        left, right = hop.inputs
        op = hop.op
        # X * 1, 1 * X, X / 1, X ^ 1
        if op in ("*",) and _is_literal(right, 1):
            return left
        if op == "*" and _is_literal(left, 1):
            return right
        if op in ("/", "^") and _is_literal(right, 1):
            return left
        # X + 0, 0 + X, X - 0
        if op == "+" and _is_literal(right, 0):
            return left
        if op == "+" and _is_literal(left, 0):
            return right
        if op == "-" and _is_literal(right, 0):
            return left
    elif isinstance(hop, H.UnaryHop):
        operand = hop.inputs[0]
        # -(-X)
        if hop.op == "uminus" and isinstance(operand, H.UnaryHop) and operand.op == "uminus":
            return operand.inputs[0]
        # !(!X)
        if hop.op == "!" and isinstance(operand, H.UnaryHop) and operand.op == "!":
            return operand.inputs[0]
    elif isinstance(hop, H.ReorgHop) and hop.op == "t":
        operand = hop.inputs[0]
        # t(t(X))
        if isinstance(operand, H.ReorgHop) and operand.op == "t":
            return operand.inputs[0]
    elif isinstance(hop, H.AggUnaryHop) and hop.op in ("sum", "min", "max", "mean"):
        operand = hop.inputs[0]
        # sum(t(X)) -> sum(X) for full aggregates
        from repro.types import Direction

        if hop.direction == Direction.FULL and isinstance(operand, H.ReorgHop) and operand.op == "t":
            return H.AggUnaryHop(hop.op, operand.inputs[0], hop.direction)
    return hop


def _fold_metadata(hop: H.Hop) -> H.Hop:
    """nrow/ncol/length over a hop with known dims become literals."""
    if isinstance(hop, H.UnaryHop) and hop.op in ("nrow", "ncol", "length"):
        source = hop.inputs[0]
        if source.dims_known:
            if hop.op == "nrow":
                return H.LiteralHop(int(source.rows))
            if hop.op == "ncol":
                return H.LiteralHop(int(source.cols))
            return H.LiteralHop(int(source.rows * max(source.cols, 1)))
    return hop


# ---------------------------------------------------------------------------
# common-subexpression elimination
# ---------------------------------------------------------------------------


def eliminate_cse(roots: Sequence[H.Hop]) -> List[H.Hop]:
    """Merge structurally identical subexpressions bottom-up."""
    canonical: Dict[tuple, H.Hop] = {}
    replacement: Dict[int, H.Hop] = {}
    for hop in H.topological_order(roots):
        hop.inputs = [replacement.get(child.hop_id, child) for child in hop.inputs]
        key = hop.semantic_key()
        existing = canonical.get(key)
        if existing is not None and existing is not hop:
            replacement[hop.hop_id] = existing
        else:
            canonical[key] = hop
    return [replacement.get(root.hop_id, root) for root in roots]


# ---------------------------------------------------------------------------
# fusion annotation
# ---------------------------------------------------------------------------


def annotate_fusion(roots: Sequence[H.Hop]) -> None:
    """Mark matmults whose left input is a transpose for fused execution.

    ``t(X) %*% X`` becomes a TSMM, ``t(X) %*% Y`` a fused transpose-left
    matmult.  The transpose node stays in the DAG (other consumers may need
    it); instruction generation follows ``effective_inputs`` and skips it
    when it has no remaining consumers.
    """
    for hop in H.topological_order(roots):
        if not isinstance(hop, H.AggBinaryHop):
            continue
        left, right = hop.inputs
        if isinstance(left, H.ReorgHop) and left.op == "t":
            base = left.inputs[0]
            if base is right:
                hop.physical = "tsmm"
            else:
                hop.physical = "tmm"


def effective_inputs(hop: H.Hop) -> List[H.Hop]:
    """The inputs instruction generation actually consumes (after fusion)."""
    if isinstance(hop, H.AggBinaryHop) and hop.physical == "tsmm":
        return [hop.inputs[1]]
    if isinstance(hop, H.AggBinaryHop) and hop.physical == "tmm":
        return [hop.inputs[0].inputs[0], hop.inputs[1]]
    return list(hop.inputs)
