"""Inter-procedural analysis: dead-function elimination and inlining.

Two AST-level IPA passes run before block building (paper sections 2.2/2.3):

* **dead-function elimination** — functions unreachable from the main script
  are dropped, so DML-bodied builtin libraries don't bloat compilation;
* **function inlining** — small, straight-line, non-recursive functions are
  spliced into their call sites (with renamed locals), which exposes their
  bodies to the caller's DAG rewrites and size propagation.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Set

from repro.lang import ast

_INLINE_IDS = itertools.count(1)

#: Bodies longer than this are not inlined.
INLINE_MAX_STATEMENTS = 8


def collect_called_functions(statements: List[ast.Statement]) -> Set[str]:
    """Names of all functions called anywhere below the given statements."""
    names: Set[str] = set()
    stack = list(statements)
    while stack:
        statement = stack.pop()
        for expr in ast.walk_expressions(statement):
            if isinstance(expr, ast.Call):
                names.add(expr.name)
        for attr in ("then_body", "else_body", "body"):
            stack.extend(getattr(statement, attr, []))
    return names


def collect_string_references(statements: List[ast.Statement]) -> Set[str]:
    """String literals that may name functions (second-order builtins like
    ``paramserv(upd="gradients", ...)`` or ``gridSearch`` reference functions
    by name)."""
    names: Set[str] = set()
    stack = list(statements)
    while stack:
        statement = stack.pop()
        for expr in ast.walk_expressions(statement):
            if isinstance(expr, ast.StringLiteral):
                names.add(expr.value)
        for attr in ("then_body", "else_body", "body"):
            stack.extend(getattr(statement, attr, []))
    return names


def eliminate_dead_functions(
    statements: List[ast.Statement], functions: Dict[str, ast.FunctionDef]
) -> Dict[str, ast.FunctionDef]:
    """Keep only functions reachable from the main statements."""
    reachable: Set[str] = set()
    frontier = (
        collect_called_functions(statements) | collect_string_references(statements)
    ) & set(functions)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        body = functions[name].body
        called = (
            collect_called_functions(body) | collect_string_references(body)
        ) & set(functions)
        frontier |= called - reachable
    return {name: functions[name] for name in reachable}


def _is_inlinable(func: ast.FunctionDef, functions: Dict[str, ast.FunctionDef]) -> bool:
    if len(func.body) > INLINE_MAX_STATEMENTS:
        return False
    for statement in func.body:
        if isinstance(statement, (ast.If, ast.While, ast.For, ast.ParFor)):
            return False
        if isinstance(statement, ast.MultiAssign):
            return False
    if func.name in collect_called_functions(func.body):
        return False  # recursive
    return True


def _rename_expr(expr: ast.Expr, mapping: Dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Identifier):
        return dataclasses.replace(expr, name=mapping.get(expr.name, expr.name))
    if isinstance(expr, ast.BinaryExpr):
        return dataclasses.replace(
            expr,
            left=_rename_expr(expr.left, mapping),
            right=_rename_expr(expr.right, mapping),
        )
    if isinstance(expr, ast.UnaryExpr):
        return dataclasses.replace(expr, operand=_rename_expr(expr.operand, mapping))
    if isinstance(expr, ast.Call):
        return dataclasses.replace(
            expr,
            args=[_rename_expr(a, mapping) for a in expr.args],
            named_args={k: _rename_expr(v, mapping) for k, v in expr.named_args.items()},
        )
    if isinstance(expr, ast.IndexExpr):
        return dataclasses.replace(
            expr,
            target=_rename_expr(expr.target, mapping),
            ranges=[_rename_range(r, mapping) for r in expr.ranges],
        )
    return expr


def _rename_range(rng: ast.IndexRange, mapping: Dict[str, str]) -> ast.IndexRange:
    return dataclasses.replace(
        rng,
        lower=_rename_expr(rng.lower, mapping) if rng.lower is not None else None,
        upper=_rename_expr(rng.upper, mapping) if rng.upper is not None else None,
    )


def _rename_statement(statement: ast.Statement, mapping: Dict[str, str]) -> ast.Statement:
    if isinstance(statement, ast.Assign):
        return dataclasses.replace(
            statement,
            target=mapping.get(statement.target, statement.target),
            value=_rename_expr(statement.value, mapping),
        )
    if isinstance(statement, ast.IndexedAssign):
        return dataclasses.replace(
            statement,
            target=mapping.get(statement.target, statement.target),
            ranges=[_rename_range(r, mapping) for r in statement.ranges],
            value=_rename_expr(statement.value, mapping),
        )
    if isinstance(statement, ast.ExprStatement):
        return dataclasses.replace(statement, value=_rename_expr(statement.value, mapping))
    raise TypeError(f"cannot rename {type(statement).__name__}")


def _local_names(func: ast.FunctionDef) -> Set[str]:
    names = {p.name for p in func.params} | {r.name for r in func.returns}
    for statement in func.body:
        names |= ast.written_variables(statement)
        names |= ast.read_variables(statement)
    return names


def _inline_call(call: ast.Call, func: ast.FunctionDef, target: str) -> List[ast.Statement]:
    """Splice ``target = func(call args)`` into renamed body statements."""
    prefix = f"__inl{next(_INLINE_IDS)}_"
    mapping = {name: prefix + name for name in _local_names(func)}
    statements: List[ast.Statement] = []
    # bind arguments
    bound: Set[str] = set()
    for param, arg in zip(func.params, call.args):
        statements.append(ast.Assign(target=mapping[param.name], value=arg))
        bound.add(param.name)
    for name, arg in call.named_args.items():
        if name not in mapping:
            raise KeyError(f"{func.name} has no parameter {name!r}")
        statements.append(ast.Assign(target=mapping[name], value=arg))
        bound.add(name)
    for param in func.params:
        if param.name not in bound:
            if param.default is None:
                raise KeyError(f"{func.name}: missing argument {param.name!r}")
            statements.append(ast.Assign(target=mapping[param.name], value=param.default))
    # body
    statements += [_rename_statement(s, mapping) for s in func.body]
    # result
    ret = func.returns[0]
    statements.append(
        ast.Assign(target=target, value=ast.Identifier(name=mapping[ret.name]))
    )
    return statements


def inline_functions(
    statements: List[ast.Statement], functions: Dict[str, ast.FunctionDef]
) -> List[ast.Statement]:
    """Inline eligible calls of the form ``x = f(...)`` (recursively in bodies)."""
    inlinable = {
        name: func
        for name, func in functions.items()
        if len(func.returns) == 1 and _is_inlinable(func, functions)
    }

    def process(stmts: List[ast.Statement]) -> List[ast.Statement]:
        result: List[ast.Statement] = []
        for statement in stmts:
            if (
                isinstance(statement, ast.Assign)
                and not statement.accumulate
                and isinstance(statement.value, ast.Call)
                and statement.value.name in inlinable
            ):
                func = inlinable[statement.value.name]
                try:
                    result.extend(_inline_call(statement.value, func, statement.target))
                    continue
                except KeyError:
                    pass  # malformed call: leave it for normal compilation errors
            for attr in ("then_body", "else_body", "body"):
                if hasattr(statement, attr):
                    setattr(statement, attr, process(getattr(statement, attr)))
            result.append(statement)
        return result

    return process(statements)


def run_ipa(program: ast.Program, functions: Dict[str, ast.FunctionDef],
            enable_inlining: bool = True) -> Dict[str, ast.FunctionDef]:
    """Full IPA pass over a program; mutates bodies, returns live functions."""
    if enable_inlining:
        program.statements = inline_functions(program.statements, functions)
        for func in functions.values():
            func.body = inline_functions(func.body, functions)
    return eliminate_dead_functions(program.statements, functions)
