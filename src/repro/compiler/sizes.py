"""Size propagation and memory estimates (paper sections 2.3(2) and 3.4).

Dimensions and sparsity are propagated bottom-up through each HOP DAG,
starting from variable statistics (compile-time input metadata or, during
dynamic recompilation, the live symbol table).  Memory estimates derived
from these statistics drive local-vs-distributed operator selection.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Optional, Sequence

from repro.compiler import hops as H
from repro.types import DataType, Direction, ValueType


@dataclasses.dataclass
class VarStats:
    """Compile-time statistics of one variable."""

    data_type: DataType = DataType.UNKNOWN
    value_type: ValueType = ValueType.FP64
    rows: int = -1
    cols: int = -1
    nnz: int = -1

    @classmethod
    def scalar(cls, value_type: ValueType = ValueType.FP64) -> "VarStats":
        return cls(DataType.SCALAR, value_type, 0, 0, 0)

    @classmethod
    def matrix(cls, rows: int, cols: int, nnz: int = -1) -> "VarStats":
        return cls(DataType.MATRIX, ValueType.FP64, rows, cols, nnz)


def _literal_int(hop: H.Hop) -> Optional[int]:
    if isinstance(hop, H.LiteralHop) and isinstance(hop.value, (int, float)):
        return int(hop.value)
    return None


def _literal_float(hop: H.Hop) -> Optional[float]:
    if isinstance(hop, H.LiteralHop) and isinstance(hop.value, (int, float)):
        return float(hop.value)
    return None


def _mm_nnz_estimate(left: H.Hop, right: H.Hop, rows: int, cols: int) -> int:
    """Matrix-multiply output nnz via the standard independence assumption."""
    if rows < 0 or cols < 0:
        return -1
    if not (left.nnz_known and right.nnz_known and left.dims_known and right.dims_known):
        return -1
    k = max(left.cols, 1)
    sparsity_left = left.sparsity
    sparsity_right = right.sparsity
    out_sparsity = 1.0 - (1.0 - sparsity_left * sparsity_right) ** k
    return int(round(out_sparsity * rows * cols))


def propagate_dag(roots: Sequence[H.Hop], stats: Dict[str, VarStats]) -> None:
    """Propagate dims/nnz bottom-up through one DAG."""
    for hop in H.topological_order(roots):
        _propagate_hop(hop, stats)


def _propagate_hop(hop: H.Hop, stats: Dict[str, VarStats]) -> None:
    if isinstance(hop, H.LiteralHop):
        return
    if isinstance(hop, H.DataHop):
        _propagate_data(hop, stats)
    elif isinstance(hop, H.DataGenHop):
        _propagate_datagen(hop)
    elif isinstance(hop, H.AggBinaryHop):
        left, right = hop.inputs
        rows = left.rows
        cols = right.cols
        hop.set_dims(rows, cols, _mm_nnz_estimate(left, right, rows, cols))
    elif isinstance(hop, H.BinaryHop):
        _propagate_binary(hop)
    elif isinstance(hop, H.AggUnaryHop):
        _propagate_agg(hop)
    elif isinstance(hop, H.UnaryHop):
        _propagate_unary(hop)
    elif isinstance(hop, H.ReorgHop):
        _propagate_reorg(hop)
    elif isinstance(hop, H.IndexingHop):
        _propagate_indexing(hop)
    elif isinstance(hop, H.LeftIndexingHop):
        target = hop.target
        hop.set_dims(target.rows, target.cols, -1)
    elif isinstance(hop, H.TernaryHop):
        _propagate_ternary(hop)
    elif isinstance(hop, H.NaryHop):
        _propagate_nary(hop)
    elif isinstance(hop, H.ParamBuiltinHop):
        _propagate_param_builtin(hop)
    elif isinstance(hop, H.FuncOutHop):
        pass  # stats come from the function signature; unknown here
    elif isinstance(hop, (H.FunctionCallHop, H.MultiReturnBuiltinHop)):
        pass
    _estimate_memory(hop)


def _propagate_data(hop: H.DataHop, stats: Dict[str, VarStats]) -> None:
    if hop.op == "tread":
        entry = stats.get(hop.name)
        if entry is not None:
            hop.data_type = entry.data_type
            hop.value_type = entry.value_type
            hop.set_dims(entry.rows, entry.cols, entry.nnz)
    elif hop.op == "pread":
        _propagate_pread(hop)
    elif hop.op in ("twrite", "pwrite"):
        source = hop.inputs[0]
        hop.data_type = source.data_type
        hop.value_type = source.value_type
        hop.copy_stats_from(source)


def _propagate_pread(hop: H.DataHop) -> None:
    rows = _literal_int(hop.params["rows"]) if "rows" in hop.params else None
    cols = _literal_int(hop.params["cols"]) if "cols" in hop.params else None
    if rows is None or cols is None:
        file_hop = hop.inputs[0] if hop.inputs else None
        if isinstance(file_hop, H.LiteralHop) and isinstance(file_hop.value, str):
            meta = _read_mtd(file_hop.value)
            if meta is not None:
                rows = rows if rows is not None else meta.get("rows")
                cols = cols if cols is not None else meta.get("cols")
                if meta.get("data_type") == "frame":
                    hop.data_type = DataType.FRAME
                nnz = meta.get("nnz", -1)
                hop.set_dims(rows or -1, cols or -1, nnz)
                if hop.data_type == DataType.UNKNOWN:
                    hop.data_type = DataType.MATRIX
                return
    if rows is not None and cols is not None:
        hop.set_dims(rows, cols, -1)
        hop.data_type = DataType.MATRIX


def _read_mtd(path: str) -> Optional[dict]:
    mtd_path = path + ".mtd"
    if not os.path.exists(mtd_path):
        return None
    try:
        with open(mtd_path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _propagate_datagen(hop: H.DataGenHop) -> None:
    params = hop.params
    if hop.method in ("rand", "fill"):
        rows = _literal_int(params.get("rows")) if params.get("rows") is not None else None
        cols = _literal_int(params.get("cols")) if params.get("cols") is not None else None
        if rows is not None and cols is not None:
            nnz = rows * cols
            if hop.method == "rand":
                sparsity = _literal_float(params.get("sparsity")) if "sparsity" in params else 1.0
                if sparsity is not None:
                    nnz = int(rows * cols * min(max(sparsity, 0.0), 1.0))
                else:
                    nnz = -1
            else:
                value = _literal_float(params.get("value"))
                if value == 0.0:
                    nnz = 0
            hop.set_dims(rows, cols, nnz)
    elif hop.method == "seq":
        start = _literal_float(params.get("from"))
        stop = _literal_float(params.get("to"))
        step = _literal_float(params.get("incr")) if "incr" in params else 1.0
        if start is not None and stop is not None and step not in (None, 0.0):
            count = int((stop - start) / step + 1e-10) + 1
            hop.set_dims(max(count, 0), 1, -1)
        else:
            hop.cols = 1
    elif hop.method == "sample":
        size = _literal_int(params.get("size"))
        if size is not None:
            hop.set_dims(size, 1, size)
        else:
            hop.cols = 1


def _propagate_binary(hop: H.BinaryHop) -> None:
    left, right = hop.inputs
    if left.is_scalar() and right.is_scalar():
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
        return
    matrix_side = left if left.is_matrix() else right
    other = right if matrix_side is left else left
    hop.data_type = DataType.MATRIX
    rows, cols = matrix_side.rows, matrix_side.cols
    if other.is_matrix():
        # broadcasting: output takes the larger extent per dimension
        rows = max(rows, other.rows) if rows >= 0 and other.rows >= 0 else max(rows, other.rows)
        cols = max(cols, other.cols) if cols >= 0 and other.cols >= 0 else max(cols, other.cols)
    nnz = -1
    if rows >= 0 and cols >= 0 and left.nnz_known and (other.is_scalar() or right.nnz_known):
        cells = rows * cols
        if hop.op == "*":
            if other.is_scalar():
                nnz = left.nnz if left.is_matrix() else right.nnz
            else:
                nnz = min(left.nnz, right.nnz)
        elif hop.op in ("+", "-") and left.is_matrix() and right.is_matrix():
            nnz = min(cells, left.nnz + right.nnz)
        else:
            nnz = cells
    hop.set_dims(rows, cols, nnz)


def _propagate_unary(hop: H.UnaryHop) -> None:
    source = hop.inputs[0]
    if hop.op in ("nrow", "ncol", "length", "nnz"):
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
        return
    if hop.op in ("cast_as_scalar", "cast_as_double", "cast_as_integer", "cast_as_boolean"):
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
        return
    if hop.op == "cast_as_matrix":
        hop.data_type = DataType.MATRIX
        if source.is_scalar():
            hop.set_dims(1, 1, -1)
        else:
            hop.copy_stats_from(source)
        return
    if hop.op in ("print", "stop", "assert", "discard"):
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
        return
    if source.is_scalar():
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
        return
    hop.data_type = DataType.MATRIX
    rows, cols = source.rows, source.cols
    sparse_safe = hop.op in ("abs", "round", "floor", "ceil", "sign", "sqrt", "sin",
                             "tan", "uminus", "sinh", "tanh")
    nnz = source.nnz if sparse_safe else (rows * cols if rows >= 0 and cols >= 0 else -1)
    hop.set_dims(rows, cols, nnz)


def _propagate_agg(hop: H.AggUnaryHop) -> None:
    source = hop.inputs[0]
    if hop.op.startswith("cum"):
        hop.data_type = DataType.MATRIX
        hop.set_dims(source.rows, source.cols, -1)
        return
    if hop.direction == Direction.FULL:
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
    elif hop.direction == Direction.ROW:
        hop.data_type = DataType.MATRIX
        hop.set_dims(source.rows, 1, source.rows)
    else:
        hop.data_type = DataType.MATRIX
        hop.set_dims(1, source.cols, source.cols)


def _propagate_reorg(hop: H.ReorgHop) -> None:
    source = hop.inputs[0]
    if hop.op == "t":
        hop.set_dims(source.cols, source.rows, source.nnz)
    elif hop.op == "rev":
        hop.copy_stats_from(source)
    elif hop.op == "rdiag":
        if source.cols == 1:
            hop.set_dims(source.rows, source.rows, source.nnz)
        elif source.rows >= 0:
            hop.set_dims(source.rows, 1, -1)
    elif hop.op == "reshape":
        rows = _literal_int(hop.inputs[1]) if len(hop.inputs) > 1 else None
        cols = _literal_int(hop.inputs[2]) if len(hop.inputs) > 2 else None
        if rows is not None and cols is not None:
            hop.set_dims(rows, cols, source.nnz)


def _bound_value(bound: H.Hop, source: H.Hop) -> Optional[int]:
    literal = _literal_int(bound)
    if literal is not None:
        return literal
    if isinstance(bound, H.UnaryHop) and bound.op == "nrow" and bound.inputs[0] is source:
        return source.rows if source.rows >= 0 else None
    if isinstance(bound, H.UnaryHop) and bound.op == "ncol" and bound.inputs[0] is source:
        return source.cols if source.cols >= 0 else None
    return None


def _propagate_indexing(hop: H.IndexingHop) -> None:
    source = hop.source
    if source.data_type not in (DataType.MATRIX, DataType.TENSOR, DataType.FRAME):
        # list element access or unknown source: the bounds do not describe
        # matrix ranges, so no dimension information may be derived
        hop.data_type = DataType.UNKNOWN
        hop.set_dims(-1, -1, -1)
        return
    bounds = hop.bounds
    if len(bounds) != 4:
        return
    rl, ru, cl, cu = (_bound_value(b, source) for b in bounds)
    rows = ru - rl + 1 if rl is not None and ru is not None else -1
    cols = cu - cl + 1 if cl is not None and cu is not None else -1
    hop.set_dims(rows, cols, -1)


def _propagate_ternary(hop: H.TernaryHop) -> None:
    if hop.op == "ifelse":
        cond = hop.inputs[0]
        if cond.is_matrix():
            hop.copy_stats_from(cond)
        else:
            for candidate in hop.inputs[1:]:
                if candidate.is_matrix():
                    hop.copy_stats_from(candidate)
                    return
            hop.data_type = DataType.SCALAR
            hop.set_dims(0, 0, 0)
    elif hop.op == "quantile":
        probs = hop.inputs[1]
        if probs.is_scalar():
            hop.data_type = DataType.SCALAR
            hop.set_dims(0, 0, 0)
        else:
            hop.set_dims(probs.rows, 1, -1)
    # table: output dims are data dependent -> unknown


def _propagate_nary(hop: H.NaryHop) -> None:
    if hop.op == "list":
        hop.data_type = DataType.LIST
        return
    rows = cols = 0
    nnz = 0
    for child in hop.inputs:
        if not child.dims_known:
            hop.set_dims(-1, -1, -1)
            return
        if hop.op == "cbind":
            rows = max(rows, child.rows)
            cols += child.cols
        else:
            rows += child.rows
            cols = max(cols, child.cols)
        nnz = nnz + child.nnz if nnz >= 0 and child.nnz_known else -1
    hop.set_dims(rows, cols, nnz)


def _propagate_param_builtin(hop: H.ParamBuiltinHop) -> None:
    params = hop.params
    target = params.get("target")
    if hop.op in ("replace", "lowertri", "uppertri") and target is not None:
        hop.copy_stats_from(target)
    elif hop.op == "order" and target is not None:
        hop.copy_stats_from(target)
    elif hop.op == "removeEmpty" and target is not None:
        # output extent along the removal margin is data dependent; it must
        # stay unknown so metadata folding never bakes in the worst case
        margin = hop.params.get("margin")
        margin_name = margin.value if isinstance(margin, H.LiteralHop) else "rows"
        if margin_name == "rows":
            hop.set_dims(-1, target.cols, -1)
        else:
            hop.set_dims(target.rows, -1, -1)
    elif hop.op == "outer":
        u, v = params.get("u"), params.get("v")
        if u is not None and v is not None:
            hop.set_dims(u.rows, v.rows, -1)
    elif hop.op in ("time", "toString"):
        hop.data_type = DataType.SCALAR
        hop.set_dims(0, 0, 0)
    elif hop.op == "transformapply":
        if target is not None:
            hop.set_dims(target.rows, -1, -1)


# ---------------------------------------------------------------------------
# memory estimates
# ---------------------------------------------------------------------------


def _dense_size(rows: int, cols: int) -> float:
    return max(rows, 1) * max(cols, 1) * 8.0


def output_memory(hop: H.Hop) -> float:
    """Worst-case output memory of one hop in bytes."""
    if hop.is_scalar():
        return 64.0
    if not hop.dims_known:
        return float("inf")
    if hop.nnz_known and hop.rows * hop.cols > 0:
        sparsity = hop.nnz / (hop.rows * hop.cols)
        if sparsity < 0.4:
            return hop.nnz * 12.0 + hop.rows * 8.0
    return _dense_size(hop.rows, hop.cols)


def _estimate_memory(hop: H.Hop) -> None:
    total = output_memory(hop)
    for child in hop.inputs:
        total += output_memory(child)
    hop.mem_estimate = total


def dag_has_unknowns(roots: Sequence[H.Hop]) -> bool:
    """True when any matrix hop in the DAG lacks dimension information."""
    for hop in H.topological_order(roots):
        if isinstance(hop, (H.FunctionCallHop, H.MultiReturnBuiltinHop, H.FuncOutHop)):
            continue  # function outputs are refreshed by the callee
        if hop.is_matrix() and not hop.dims_known:
            return True
        if hop.data_type == DataType.UNKNOWN and not isinstance(hop, H.DataHop):
            return True
        if isinstance(hop, H.DataHop) and hop.data_type == DataType.UNKNOWN and hop.op in ("tread", "pread"):
            return True
    return False
