"""High-level operators (HOPs): the logical algebra of the compiler.

A HOP DAG represents all statements of one basic statement block.  Nodes
carry propagated output statistics (dims, nnz) and a worst-case memory
estimate; both drive rewrites and physical operator selection.  Unknown
statistics are encoded as ``-1``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import DataType, Direction, ValueType

_HOP_IDS = itertools.count(1)


class Hop:
    """Base high-level operator."""

    def __init__(
        self,
        op: str,
        inputs: Sequence["Hop"] = (),
        data_type: DataType = DataType.MATRIX,
        value_type: ValueType = ValueType.FP64,
    ):
        self.hop_id = next(_HOP_IDS)
        self.op = op
        self.inputs: List[Hop] = list(inputs)
        self.data_type = data_type
        self.value_type = value_type
        self.rows: int = -1
        self.cols: int = -1
        self.nnz: int = -1
        self.mem_estimate: float = -1.0
        self.exec_type = None  # set by the LOP phase
        #: physical operator refinement (e.g. "tsmm" for a fused matmult)
        self.physical: Optional[str] = None

    # --- statistics -------------------------------------------------------------

    @property
    def dims_known(self) -> bool:
        return self.rows >= 0 and self.cols >= 0

    @property
    def nnz_known(self) -> bool:
        return self.nnz >= 0

    @property
    def sparsity(self) -> float:
        if not self.dims_known or not self.nnz_known or self.rows * self.cols == 0:
            return 1.0
        return self.nnz / (self.rows * self.cols)

    def set_dims(self, rows: int, cols: int, nnz: int = -1) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.nnz = int(nnz)

    def copy_stats_from(self, other: "Hop") -> None:
        self.rows, self.cols, self.nnz = other.rows, other.cols, other.nnz

    # --- structural helpers --------------------------------------------------------

    def replace_input(self, old: "Hop", new: "Hop") -> None:
        self.inputs = [new if child is old else child for child in self.inputs]

    def semantic_key(self) -> Tuple:
        """Key for common-subexpression elimination (op + params + input ids)."""
        return (type(self).__name__, self.op, self._param_key(), tuple(h.hop_id for h in self.inputs))

    def _param_key(self) -> Tuple:
        return ()

    def is_matrix(self) -> bool:
        return self.data_type in (DataType.MATRIX, DataType.TENSOR)

    def is_scalar(self) -> bool:
        return self.data_type == DataType.SCALAR

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = f"[{self.rows}x{self.cols},nnz={self.nnz}]" if self.dims_known else "[?]"
        return f"{type(self).__name__}#{self.hop_id}({self.op}){dims}"


class LiteralHop(Hop):
    """A scalar literal."""

    def __init__(self, value):
        if isinstance(value, bool):
            vt = ValueType.BOOLEAN
        elif isinstance(value, int):
            vt = ValueType.INT64
        elif isinstance(value, float):
            vt = ValueType.FP64
        elif isinstance(value, str):
            vt = ValueType.STRING
        else:
            raise TypeError(f"unsupported literal: {type(value).__name__}")
        super().__init__("literal", (), DataType.SCALAR, vt)
        self.value = value
        self.set_dims(0, 0, 0)

    def _param_key(self) -> Tuple:
        return (repr(self.value),)


class DataHop(Hop):
    """Data access: persistent/transient reads and writes.

    kinds: ``pread`` (read from file), ``pwrite`` (write to file),
    ``tread`` (transient read of a live variable), ``twrite`` (transient
    write making a DAG result visible as a variable).
    """

    def __init__(
        self,
        kind: str,
        name: str,
        inputs: Sequence[Hop] = (),
        data_type: DataType = DataType.MATRIX,
        value_type: ValueType = ValueType.FP64,
        params: Optional[Dict[str, Hop]] = None,
    ):
        super().__init__(kind, inputs, data_type, value_type)
        self.name = name
        self.params = dict(params or {})

    def _param_key(self) -> Tuple:
        # reads of the same variable are shareable; writes never merge
        if self.op in ("tread", "pread"):
            return (self.op, self.name)
        return (self.op, self.name, self.hop_id)


class DataGenHop(Hop):
    """Data generators: rand, seq, sample, and scalar fill (``matrix(v, r, c)``)."""

    def __init__(self, method: str, params: Dict[str, Hop]):
        super().__init__(f"datagen_{method}", list(params.values()), DataType.MATRIX, ValueType.FP64)
        self.method = method
        self.param_names = list(params.keys())

    @property
    def params(self) -> Dict[str, Hop]:
        return dict(zip(self.param_names, self.inputs))

    def _param_key(self) -> Tuple:
        if self.method in ("rand", "sample") and not self._deterministic():
            # unseeded generators are non-deterministic: never CSE-merge
            return (self.method, self.hop_id)
        return (self.method, tuple(self.param_names))

    def _deterministic(self) -> bool:
        seed = self.params.get("seed")
        return (
            isinstance(seed, LiteralHop)
            and isinstance(seed.value, (int, float))
            and seed.value >= 0
        )


class BinaryHop(Hop):
    """Elementwise binary operation (matrix/matrix, matrix/scalar, scalar/scalar)."""

    def __init__(self, op: str, left: Hop, right: Hop):
        if left.is_scalar() and right.is_scalar():
            dt = DataType.SCALAR
        else:
            dt = DataType.MATRIX
        super().__init__(op, (left, right), dt, ValueType.FP64)


class UnaryHop(Hop):
    """Elementwise unary operation, cast, or metadata op (nrow/ncol/length)."""

    _SCALAR_OUT = frozenset({"nrow", "ncol", "length", "cast_as_scalar", "cast_as_boolean",
                             "cast_as_integer", "cast_as_double", "cast_as_string", "exists"})

    def __init__(self, op: str, operand: Hop):
        if op in self._SCALAR_OUT or operand.is_scalar():
            dt = DataType.SCALAR
        else:
            dt = DataType.MATRIX
        super().__init__(op, (operand,), dt, ValueType.FP64)


class AggUnaryHop(Hop):
    """Full or partial aggregation (sum/mean/min/max/var/sd/trace/cum*)."""

    def __init__(self, op: str, operand: Hop, direction: Direction):
        dt = DataType.SCALAR if direction == Direction.FULL and not op.startswith("cum") else DataType.MATRIX
        super().__init__(op, (operand,), dt, ValueType.FP64)
        self.direction = direction

    def _param_key(self) -> Tuple:
        return (self.direction.value,)


class AggBinaryHop(Hop):
    """Matrix multiplication; ``physical`` refines to tsmm/tmm at LOP time."""

    def __init__(self, left: Hop, right: Hop):
        super().__init__("mm", (left, right), DataType.MATRIX, ValueType.FP64)


class ReorgHop(Hop):
    """Reorganisation: transpose (t), rev, diag, sort, reshape."""

    def __init__(self, op: str, inputs: Sequence[Hop], params: Optional[Dict[str, Hop]] = None):
        super().__init__(op, inputs, DataType.MATRIX, ValueType.FP64)
        self.params = dict(params or {})

    def _param_key(self) -> Tuple:
        return tuple(sorted((k, v.hop_id) for k, v in self.params.items()))


class IndexingHop(Hop):
    """Right indexing with 1-based inclusive bound inputs (rl, ru, cl, cu)."""

    def __init__(self, source: Hop, bounds: Sequence[Hop]):
        super().__init__("rix", [source, *bounds], DataType.MATRIX, ValueType.FP64)

    @property
    def source(self) -> Hop:
        return self.inputs[0]

    @property
    def bounds(self) -> List[Hop]:
        return self.inputs[1:]


class LeftIndexingHop(Hop):
    """Left indexing ``X[rl:ru, cl:cu] = Y`` producing a new version of X."""

    def __init__(self, target: Hop, source: Hop, bounds: Sequence[Hop]):
        super().__init__("lix", [target, source, *bounds], DataType.MATRIX, ValueType.FP64)

    @property
    def target(self) -> Hop:
        return self.inputs[0]

    @property
    def source(self) -> Hop:
        return self.inputs[1]

    @property
    def bounds(self) -> List[Hop]:
        return self.inputs[2:]


class TernaryHop(Hop):
    """Three-input operations: ifelse, table, +* / -* fused ternaries."""

    def __init__(self, op: str, inputs: Sequence[Hop]):
        super().__init__(op, inputs, DataType.MATRIX, ValueType.FP64)


class NaryHop(Hop):
    """N-ary operations: cbind, rbind, nary min/max, list construction."""

    def __init__(self, op: str, inputs: Sequence[Hop]):
        dt = DataType.LIST if op == "list" else DataType.MATRIX
        super().__init__(op, inputs, dt, ValueType.FP64)


class ParamBuiltinHop(Hop):
    """Parameterised builtin with named arguments (removeEmpty, order, ...)."""

    def __init__(
        self,
        op: str,
        params: Dict[str, Hop],
        data_type: DataType = DataType.MATRIX,
        value_type: ValueType = ValueType.FP64,
    ):
        super().__init__(op, list(params.values()), data_type, value_type)
        self.param_names = list(params.keys())

    @property
    def params(self) -> Dict[str, Hop]:
        return dict(zip(self.param_names, self.inputs))

    def _param_key(self) -> Tuple:
        return tuple(self.param_names)


class FunctionCallHop(Hop):
    """Call of a (non-inlined) DML-bodied function with multiple outputs."""

    def __init__(self, func_name: str, args: Sequence[Hop], arg_names: Sequence[Optional[str]],
                 output_names: Sequence[str]):
        super().__init__("fcall", args, DataType.UNKNOWN, ValueType.UNKNOWN)
        self.func_name = func_name
        self.arg_names = list(arg_names)
        self.output_names = list(output_names)

    def _param_key(self) -> Tuple:
        # function calls are never merged by CSE (side effects, multi-output)
        return (self.func_name, self.hop_id)


class MultiReturnBuiltinHop(Hop):
    """A builtin with multiple outputs (eigen, svd, qr, transformencode)."""

    def __init__(self, op: str, inputs: Sequence[Hop], n_outputs: int):
        super().__init__(op, inputs, DataType.UNKNOWN, ValueType.UNKNOWN)
        self.n_outputs = n_outputs

    def _param_key(self) -> Tuple:
        return (self.n_outputs, self.hop_id)  # never CSE-merged


class FuncOutHop(Hop):
    """Projection of one output of a multi-output hop (fcall or builtin)."""

    def __init__(self, parent: Hop, index: int,
                 data_type: DataType = DataType.MATRIX,
                 value_type: ValueType = ValueType.FP64):
        super().__init__("fout", (parent,), data_type, value_type)
        self.index = index

    def _param_key(self) -> Tuple:
        return (self.index,)


# ---------------------------------------------------------------------------
# DAG utilities
# ---------------------------------------------------------------------------


def topological_order(roots: Sequence[Hop]) -> List[Hop]:
    """Inputs-before-consumers ordering of all HOPs reachable from ``roots``."""
    visited = {}
    order: List[Hop] = []

    def visit(hop: Hop) -> None:
        state = visited.get(hop.hop_id)
        if state == 2:
            return
        if state == 1:
            raise ValueError("cycle in HOP DAG")
        visited[hop.hop_id] = 1
        for child in hop.inputs:
            visit(child)
        visited[hop.hop_id] = 2
        order.append(hop)

    for root in roots:
        visit(root)
    return order


def clone_dag(roots: Sequence[Hop], stop_at=None) -> Tuple[List[Hop], Dict[int, Hop]]:
    """Deep-copy a DAG preserving sharing; returns (new roots, old-id -> new).

    ``stop_at`` is an optional predicate; matching nodes are shared, not
    cloned (used to keep literals shared during recompilation).
    """
    memo: Dict[int, Hop] = {}

    def visit(hop: Hop) -> Hop:
        cached = memo.get(hop.hop_id)
        if cached is not None:
            return cached
        if stop_at is not None and stop_at(hop):
            memo[hop.hop_id] = hop
            return hop
        clone = object.__new__(type(hop))
        clone.__dict__ = dict(hop.__dict__)
        clone.hop_id = next(_HOP_IDS)
        clone.inputs = [visit(child) for child in hop.inputs]
        if isinstance(hop, ReorgHop):
            clone.params = {k: memo[v.hop_id] if v.hop_id in memo else visit(v)
                            for k, v in hop.params.items()}
        memo[hop.hop_id] = clone
        return clone

    new_roots = [visit(root) for root in roots]
    return new_roots, memo
