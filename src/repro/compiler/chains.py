"""Matrix-multiplication chain ordering (paper Figure 3, "operator ordering").

SystemML/SystemDS reorder chains of matrix multiplies ``A %*% B %*% C ...``
with the classic dynamic-programming algorithm once dimensions are known:
the parse tree's left-deep order can be arbitrarily worse than the optimal
parenthesisation (e.g. ``(X %*% y') %*% v`` at O(n^2 m) vs
``X %*% (y' %*% v)`` at O(n m)).

This is a dynamic rewrite: it runs after size propagation, only reorders
chains whose dimensions are fully known, and skips chain members that feed
other consumers (their intermediate result is needed anyway).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import hops as H


def _consumer_counts(roots: Sequence[H.Hop]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for hop in H.topological_order(roots):
        for child in hop.inputs:
            counts[child.hop_id] = counts.get(child.hop_id, 0) + 1
    return counts


def _collect_chain(root: H.AggBinaryHop, counts: Dict[int, int]) -> List[H.Hop]:
    """The operand sequence of the maximal matmult chain rooted at ``root``.

    A child matmult joins the chain only when ``root`` is its sole consumer
    (otherwise its intermediate is materialised regardless) and its
    dimensions are known.
    """
    operands: List[H.Hop] = []

    def expand(hop: H.Hop) -> None:
        if (
            isinstance(hop, H.AggBinaryHop)
            and hop.physical is None
            and counts.get(hop.hop_id, 0) <= 1
            and hop.dims_known
        ):
            expand(hop.inputs[0])
            expand(hop.inputs[1])
        else:
            operands.append(hop)

    expand(root.inputs[0])
    expand(root.inputs[1])
    return operands


def _optimal_split(dims: List[int]) -> Tuple[float, List[List[int]]]:
    """Classic O(n^3) matrix-chain DP; returns (cost, split table)."""
    n = len(dims) - 1
    cost = [[0.0] * n for __ in range(n)]
    split = [[0] * n for __ in range(n)]
    for length in range(2, n + 1):
        for i in range(n - length + 1):
            j = i + length - 1
            cost[i][j] = float("inf")
            for k in range(i, j):
                candidate = (
                    cost[i][k]
                    + cost[k + 1][j]
                    + dims[i] * dims[k + 1] * dims[j + 1]
                )
                if candidate < cost[i][j]:
                    cost[i][j] = candidate
                    split[i][j] = k
    return cost[0][n - 1], split


def _current_cost(root: H.Hop, counts: Dict[int, int]) -> float:
    """Scalar-multiplication cost of the chain as currently parenthesised."""
    if not (
        isinstance(root, H.AggBinaryHop)
        and root.physical is None
        and root.dims_known
    ):
        return 0.0
    left, right = root.inputs

    def member(hop: H.Hop) -> bool:
        return (
            isinstance(hop, H.AggBinaryHop)
            and hop.physical is None
            and counts.get(hop.hop_id, 0) <= 1
            and hop.dims_known
        )

    total = float(left.rows * left.cols * right.cols)
    if member(left):
        total += _current_cost(left, counts)
    if member(right):
        total += _current_cost(right, counts)
    return total


def _build(operands: List[H.Hop], split, i: int, j: int) -> H.Hop:
    if i == j:
        return operands[i]
    k = split[i][j]
    left = _build(operands, split, i, k)
    right = _build(operands, split, k + 1, j)
    hop = H.AggBinaryHop(left, right)
    hop.set_dims(left.rows, right.cols, -1)
    return hop


def optimize_matmult_chains(roots: Sequence[H.Hop]) -> List[H.Hop]:
    """Reorder beneficial matmult chains in place; returns the roots."""
    counts = _consumer_counts(roots)
    for hop in H.topological_order(roots):
        if not isinstance(hop, H.AggBinaryHop) or hop.physical is not None:
            continue
        # only the top of a chain: a parent matmult would re-collect it
        operands = _collect_chain(hop, counts)
        if len(operands) < 3:
            continue
        if any(not op.dims_known for op in operands):
            continue
        dims = [operands[0].rows] + [op.cols for op in operands]
        optimal_cost, split = _optimal_split(dims)
        if optimal_cost >= _current_cost(hop, counts) * 0.999999:
            # rebuild only when the DP strictly improves on the current tree
            continue
        best = _build(operands, split, 0, len(operands) - 1)
        hop.inputs = list(best.inputs)
        hop.set_dims(best.rows, best.cols, -1)
    return list(roots)
