"""HOP DAG construction from statement blocks.

Within one basic block, statements are translated into a single DAG: each
variable read pulls a shared transient-read leaf (or the hop of a previous
assignment in the same block), and every variable that is live-out and was
(re)assigned gets a transient-write root.  Builtin functions map to HOPs via
the table at the bottom of this module; calls to user/DML-bodied functions
become :class:`FunctionCallHop` nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import CompileError
from repro.lang import ast
from repro.compiler import hops as H
from repro.compiler.blocks import BasicBlock, PredicateBlock
from repro.types import DataType, Direction, ValueType

#: Builtins with multiple return values, with their output count.
MULTI_RETURN_BUILTINS = {
    "eigen": 2,
    "svd": 3,
    "transformencode": 2,
}


class DagBuilder:
    """Builds HOP DAGs for basic blocks and predicates of one program."""

    def __init__(self, functions: Dict[str, ast.FunctionDef]):
        self.functions = functions

    # --- public entry points ---------------------------------------------------

    def build_basic_block(self, block: BasicBlock) -> None:
        block.hop_roots = self.build_roots(block.statements, block.live_out)

    def build_roots(self, statements, live_out) -> List[H.Hop]:
        """DAG roots for a statement list (pure; used by recompilation too)."""
        env: Dict[str, H.Hop] = {}
        assigned: set = set()
        roots: List[H.Hop] = []
        for statement in statements:
            self._statement(statement, env, assigned, roots)
        for name in sorted(assigned & set(live_out)):
            roots.append(self._twrite(name, env[name]))
        return roots

    def build_predicate(self, block: PredicateBlock) -> None:
        env: Dict[str, H.Hop] = {}
        roots: List[H.Hop] = []
        hop = self._expr(block.expr, env, roots)
        if roots:
            raise CompileError("function calls are not allowed in predicates")
        block.hop_root = hop

    # --- statements ----------------------------------------------------------------

    def _statement(self, statement: ast.Statement, env, assigned, roots) -> None:
        if isinstance(statement, ast.Assign):
            value = self._expr(statement.value, env, roots)
            if statement.accumulate:
                value = H.BinaryHop("+", self._read(statement.target, env), value)
            env[statement.target] = value
            assigned.add(statement.target)
        elif isinstance(statement, ast.IndexedAssign):
            target = self._read(statement.target, env)
            source = self._expr(statement.value, env, roots)
            bounds = self._bounds(statement.ranges, target, env, roots)
            env[statement.target] = H.LeftIndexingHop(target, source, bounds)
            assigned.add(statement.target)
        elif isinstance(statement, ast.MultiAssign):
            self._multi_assign(statement, env, assigned, roots)
        elif isinstance(statement, ast.ExprStatement):
            self._effect_statement(statement.value, env, roots)
        else:
            raise CompileError(
                f"unexpected statement in basic block: {type(statement).__name__}"
            )

    def _multi_assign(self, statement: ast.MultiAssign, env, assigned, roots) -> None:
        call = statement.value
        if not isinstance(call, ast.Call):
            raise CompileError("multi-assignment requires a function call")
        targets = statement.targets
        if call.name in MULTI_RETURN_BUILTINS:
            expected = MULTI_RETURN_BUILTINS[call.name]
            if len(targets) != expected:
                raise CompileError(
                    f"{call.name} returns {expected} values, got {len(targets)} targets"
                )
            args = [self._expr(a, env, roots) for a in call.args]
            args += [self._expr(v, env, roots) for v in call.named_args.values()]
            parent = H.MultiReturnBuiltinHop(call.name, args, expected)
            roots.append(parent)
            for index, target in enumerate(targets):
                dt = DataType.FRAME if (call.name == "transformencode" and index == 1) else DataType.MATRIX
                env[target] = H.FuncOutHop(parent, index, dt)
                assigned.add(target)
            return
        if call.name in self.functions:
            fcall = self._function_call(call, targets, env, roots)
            func = self.functions[call.name]
            for index, target in enumerate(targets):
                ret = func.returns[index]
                env[target] = H.FuncOutHop(
                    fcall, index, ret.type_spec.data_type, ret.type_spec.value_type
                )
                assigned.add(target)
            return
        raise CompileError(f"unknown multi-return function: {call.name}")

    def _function_call(self, call: ast.Call, targets: Sequence[str], env, roots) -> H.FunctionCallHop:
        func = self.functions[call.name]
        if len(targets) > len(func.returns):
            raise CompileError(
                f"{call.name} returns {len(func.returns)} values, got {len(targets)} targets"
            )
        args: List[H.Hop] = []
        arg_names: List[Optional[str]] = []
        for arg in call.args:
            args.append(self._expr(arg, env, roots))
            arg_names.append(None)
        for name, arg in call.named_args.items():
            args.append(self._expr(arg, env, roots))
            arg_names.append(name)
        fcall = H.FunctionCallHop(call.name, args, arg_names, list(targets))
        roots.append(fcall)
        return fcall

    def _effect_statement(self, expr: ast.Expr, env, roots) -> None:
        if isinstance(expr, ast.Call) and expr.name == "write":
            self._write_call(expr, env, roots)
            return
        if isinstance(expr, ast.Call) and expr.name in ("print", "stop", "assert"):
            if len(expr.args) != 1 or expr.named_args:
                raise CompileError(f"{expr.name} takes exactly one argument")
            operand = self._expr(expr.args[0], env, roots)
            roots.append(H.UnaryHop(expr.name, operand))
            return
        if isinstance(expr, ast.Call) and expr.name in self.functions:
            # call for side effects; bind no outputs
            self._function_call(expr, [], env, roots)
            return
        # evaluate and discard (keeps semantics of bare expressions)
        hop = self._expr(expr, env, roots)
        roots.append(H.UnaryHop("discard", hop))

    def _write_call(self, call: ast.Call, env, roots) -> None:
        if len(call.args) < 2:
            raise CompileError("write requires a value and a file name")
        value = self._expr(call.args[0], env, roots)
        file_hop = self._expr(call.args[1], env, roots)
        params = {
            name: self._expr(arg, env, roots) for name, arg in call.named_args.items()
        }
        roots.append(
            H.DataHop("pwrite", "", [value, file_hop], DataType.UNKNOWN, ValueType.UNKNOWN, params)
        )

    # --- expressions -----------------------------------------------------------------

    def _read(self, name: str, env: Dict[str, H.Hop]) -> H.Hop:
        hop = env.get(name)
        if hop is None:
            hop = H.DataHop("tread", name, (), DataType.UNKNOWN, ValueType.UNKNOWN)
            env[name] = hop
        return hop

    def _twrite(self, name: str, value: H.Hop) -> H.Hop:
        hop = H.DataHop("twrite", name, [value], value.data_type, value.value_type)
        return hop

    def _expr(self, expr: ast.Expr, env, roots) -> H.Hop:
        if isinstance(expr, ast.IntLiteral):
            return H.LiteralHop(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return H.LiteralHop(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return H.LiteralHop(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return H.LiteralHop(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._read(expr.name, env)
        if isinstance(expr, ast.BinaryExpr):
            left = self._expr(expr.left, env, roots)
            right = self._expr(expr.right, env, roots)
            if expr.op == "%*%":
                return H.AggBinaryHop(left, right)
            return H.BinaryHop(expr.op, left, right)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._expr(expr.operand, env, roots)
            return H.UnaryHop("uminus" if expr.op == "-" else expr.op, operand)
        if isinstance(expr, ast.IndexExpr):
            target = self._expr(expr.target, env, roots)
            bounds = self._bounds(expr.ranges, target, env, roots)
            return H.IndexingHop(target, bounds)
        if isinstance(expr, ast.Call):
            return self._call(expr, env, roots)
        raise CompileError(f"unsupported expression: {type(expr).__name__}")

    def _bounds(self, ranges: List[ast.IndexRange], target: H.Hop, env, roots) -> List[H.Hop]:
        """1-based inclusive (rl, ru, cl, cu) bound hops for 2D indexing."""
        if len(ranges) == 1:
            # X[i] on a column vector means X[i, 1]; on a list it selects
            # an element -- resolved at runtime.
            ranges = [ranges[0], ast.IndexRange(lower=ast.IntLiteral(value=1))]
        if len(ranges) != 2:
            raise CompileError("DML matrix indexing is 2-dimensional")
        bounds: List[H.Hop] = []
        for dim, rng in enumerate(ranges):
            if rng.is_all:
                lo = H.LiteralHop(1)
                hi = H.UnaryHop("nrow" if dim == 0 else "ncol", target)
            elif rng.is_single:
                lo = self._expr(rng.lower, env, roots)
                hi = lo
            else:
                lo = self._expr(rng.lower, env, roots)
                hi = self._expr(rng.upper, env, roots)
            bounds.extend([lo, hi])
        return bounds

    # --- builtin calls ------------------------------------------------------------------

    def _call(self, call: ast.Call, env, roots) -> H.Hop:
        name = call.name
        if name in self.functions:
            func = self.functions[name]
            if not func.returns:
                raise CompileError(f"{name} returns no value; call it as a statement")
            fcall = self._function_call(call, [f"__{name}_out"], env, roots)
            ret = func.returns[0]
            return H.FuncOutHop(fcall, 0, ret.type_spec.data_type, ret.type_spec.value_type)
        if name in MULTI_RETURN_BUILTINS:
            raise CompileError(f"{name} has multiple outputs; use [a, b] = {name}(...)")
        handler = _BUILTINS.get(name)
        if handler is None:
            raise CompileError(f"unknown function: {name}")
        args = [self._expr(a, env, roots) for a in call.args]
        named = {k: self._expr(v, env, roots) for k, v in call.named_args.items()}
        return handler(args, named)


# ---------------------------------------------------------------------------
# builtin -> HOP mapping
# ---------------------------------------------------------------------------


def _require(args, named, n_min, n_max, name):
    if not n_min <= len(args) <= n_max:
        raise CompileError(f"{name} expects {n_min}..{n_max} positional arguments, got {len(args)}")
    return args


def _agg(op, direction):
    def build(args, named):
        _require(args, named, 1, 1, op)
        return H.AggUnaryHop(op, args[0], direction)

    return build


def _unary(op):
    def build(args, named):
        _require(args, named, 1, 1, op)
        return H.UnaryHop(op, args[0])

    return build


def _minmax(op):
    def build(args, named):
        if len(args) == 1:
            return H.AggUnaryHop(op, args[0], Direction.FULL)
        if len(args) == 2:
            return H.BinaryHop(op, args[0], args[1])
        result = args[0]
        for arg in args[1:]:
            result = H.BinaryHop(op, result, arg)
        return result

    return build


def _log(args, named):
    if len(args) == 1:
        return H.UnaryHop("log", args[0])
    if len(args) == 2:
        return H.BinaryHop("log", args[0], args[1])
    raise CompileError("log expects 1 or 2 arguments")


def _read(args, named):
    _require(args, named, 1, 1, "read")
    return H.DataHop("pread", "", args, DataType.UNKNOWN, ValueType.UNKNOWN, named)


def _rand(args, named):
    if args:
        raise CompileError("rand takes named arguments only (rows=, cols=, ...)")
    params = dict(named)
    if "rows" not in params or "cols" not in params:
        raise CompileError("rand requires rows= and cols=")
    return H.DataGenHop("rand", params)


def _matrix(args, named):
    _require(args, named, 1, 3, "matrix")
    data = args[0]
    rows = named.get("rows", args[1] if len(args) > 1 else None)
    cols = named.get("cols", args[2] if len(args) > 2 else None)
    if rows is None or cols is None:
        raise CompileError("matrix requires rows and cols")
    if data.is_scalar():
        return H.DataGenHop("fill", {"value": data, "rows": rows, "cols": cols})
    byrow = named.get("byrow", H.LiteralHop(True))
    return H.ReorgHop("reshape", [data, rows, cols, byrow])


def _seq(args, named):
    _require(args, named, 2, 3, "seq")
    params = {"from": args[0], "to": args[1]}
    if len(args) == 3:
        params["incr"] = args[2]
    return H.DataGenHop("seq", params)


def _sample(args, named):
    _require(args, named, 2, 4, "sample")
    params = {"range": args[0], "size": args[1]}
    if len(args) >= 3:
        params["replace"] = args[2]
    if len(args) == 4:
        params["seed"] = args[3]
    params.update(named)
    return H.DataGenHop("sample", params)


def _nary(op):
    def build(args, named):
        if len(args) < 1:
            raise CompileError(f"{op} expects at least one argument")
        return H.NaryHop(op, args)

    return build


def _reorg(op, n_args):
    def build(args, named):
        _require(args, named, n_args, n_args, op)
        return H.ReorgHop(op, args)

    return build


def _order(args, named):
    params = {}
    if args:
        params["target"] = args[0]
    params.update(named)
    if "target" not in params:
        raise CompileError("order requires target=")
    return H.ParamBuiltinHop("order", params)


def _param_builtin(op, required):
    def build(args, named):
        params = {}
        positional = list(required)
        for arg, pname in zip(args, positional):
            params[pname] = arg
        params.update(named)
        for pname in required[: min(len(required), 1)]:
            if pname not in params:
                raise CompileError(f"{op} requires {pname}=")
        return H.ParamBuiltinHop(op, params)

    return build


def _table(args, named):
    _require(args, named, 2, 5, "table")
    return H.TernaryHop("table", args)


def _eval(args, named):
    if not args:
        raise CompileError("eval requires a function name")
    inputs = list(args) + list(named.values())
    hop = H.NaryHop("eval", inputs)
    hop.data_type = DataType.UNKNOWN
    return hop


def _ifelse(args, named):
    _require(args, named, 3, 3, "ifelse")
    return H.TernaryHop("ifelse", args)


def _outer(args, named):
    _require(args, named, 3, 3, "outer")
    if not isinstance(args[2], H.LiteralHop):
        raise CompileError("outer requires a literal operation string")
    return H.ParamBuiltinHop("outer", {"u": args[0], "v": args[1], "op": args[2]})


def _quantile(args, named):
    _require(args, named, 2, 2, "quantile")
    return H.TernaryHop("quantile", args)


def _median(args, named):
    _require(args, named, 1, 1, "median")
    return H.TernaryHop("quantile", [args[0], H.LiteralHop(0.5)])


def _time(args, named):
    return H.ParamBuiltinHop("time", {}, DataType.SCALAR)


def _cast(op, data_type, value_type=ValueType.FP64):
    def build(args, named):
        _require(args, named, 1, 1, op)
        hop = H.UnaryHop(op, args[0])
        hop.data_type = data_type
        hop.value_type = value_type
        return hop

    return build


def _tostring(args, named):
    _require(args, named, 1, 1, "toString")
    params = {"target": args[0]}
    params.update(named)
    return H.ParamBuiltinHop("toString", params, DataType.SCALAR, ValueType.STRING)


def _nrow_like(op):
    def build(args, named):
        _require(args, named, 1, 1, op)
        hop = H.UnaryHop(op, args[0])
        hop.value_type = ValueType.INT64
        return hop

    return build


def _transformapply(args, named):
    params = dict(named)
    positional = ["target", "meta", "spec"]
    for value, name in zip(args, positional):
        params.setdefault(name, value)
    if "target" not in params or "meta" not in params:
        raise CompileError("transformapply requires target= and meta=")
    return H.ParamBuiltinHop("transformapply", params)


def _lineage(args, named):
    if len(args) != 1:
        raise CompileError("lineage() takes a single expression")
    return H.ParamBuiltinHop(
        "lineage", {"target": args[0]}, DataType.SCALAR, ValueType.STRING
    )


def _federated(args, named):
    params = dict(named)
    if "addresses" not in params or "ranges" not in params:
        raise CompileError("federated requires addresses= and ranges=")
    return H.ParamBuiltinHop("federated", params)


def _paramserv(args, named):
    if args:
        raise CompileError("paramserv takes named arguments only")
    return H.ParamBuiltinHop("paramserv", dict(named), DataType.LIST)


def _list_builtin(args, named):
    inputs = list(args) + list(named.values())
    return H.NaryHop("list", inputs)


_BUILTINS = {
    # aggregates
    "sum": _agg("sum", Direction.FULL),
    "mean": _agg("mean", Direction.FULL),
    "avg": _agg("mean", Direction.FULL),
    "var": _agg("var", Direction.FULL),
    "sd": _agg("sd", Direction.FULL),
    "prod": _agg("prod", Direction.FULL),
    "trace": _agg("trace", Direction.FULL),
    "rowSums": _agg("sum", Direction.ROW),
    "rowMeans": _agg("mean", Direction.ROW),
    "rowMins": _agg("min", Direction.ROW),
    "rowMaxs": _agg("max", Direction.ROW),
    "rowVars": _agg("var", Direction.ROW),
    "rowSds": _agg("sd", Direction.ROW),
    "colSums": _agg("sum", Direction.COL),
    "colMeans": _agg("mean", Direction.COL),
    "colMins": _agg("min", Direction.COL),
    "colMaxs": _agg("max", Direction.COL),
    "colVars": _agg("var", Direction.COL),
    "colSds": _agg("sd", Direction.COL),
    "rowIndexMax": _agg("rowIndexMax", Direction.ROW),
    "rowIndexMin": _agg("rowIndexMin", Direction.ROW),
    "cumsum": _agg("cumsum", Direction.COL),
    "cumprod": _agg("cumprod", Direction.COL),
    "cummin": _agg("cummin", Direction.COL),
    "cummax": _agg("cummax", Direction.COL),
    "min": _minmax("min"),
    "max": _minmax("max"),
    # elementwise unaries
    "exp": _unary("exp"),
    "log": _log,
    "sqrt": _unary("sqrt"),
    "abs": _unary("abs"),
    "round": _unary("round"),
    "floor": _unary("floor"),
    "ceil": _unary("ceil"),
    "ceiling": _unary("ceil"),
    "sign": _unary("sign"),
    "sin": _unary("sin"),
    "cos": _unary("cos"),
    "tan": _unary("tan"),
    "asin": _unary("asin"),
    "acos": _unary("acos"),
    "atan": _unary("atan"),
    "sinh": _unary("sinh"),
    "cosh": _unary("cosh"),
    "tanh": _unary("tanh"),
    "sigmoid": _unary("sigmoid"),
    "is.nan": _unary("isnan"),
    "isNaN": _unary("isnan"),
    "xor": lambda args, named: H.BinaryHop("xor", *_require(args, named, 2, 2, "xor")),
    # metadata
    "nrow": _nrow_like("nrow"),
    "ncol": _nrow_like("ncol"),
    "length": _nrow_like("length"),
    # casts
    "as.scalar": _cast("cast_as_scalar", DataType.SCALAR),
    "as.matrix": _cast("cast_as_matrix", DataType.MATRIX),
    "as.double": _cast("cast_as_double", DataType.SCALAR, ValueType.FP64),
    "as.integer": _cast("cast_as_integer", DataType.SCALAR, ValueType.INT64),
    "as.logical": _cast("cast_as_boolean", DataType.SCALAR, ValueType.BOOLEAN),
    "as.frame": _cast("cast_as_frame", DataType.FRAME),
    "toString": _tostring,
    # linear algebra
    "t": _reorg("t", 1),
    "rev": _reorg("rev", 1),
    "diag": _reorg("rdiag", 1),
    "solve": lambda args, named: H.BinaryHop("solve", *_require(args, named, 2, 2, "solve")),
    "inv": _unary("inv"),
    "cholesky": _unary("cholesky"),
    # data generation
    "read": _read,
    "rand": _rand,
    "matrix": _matrix,
    "seq": _seq,
    "sample": _sample,
    # reorganisation & data ops
    "cbind": _nary("cbind"),
    "rbind": _nary("rbind"),
    "append": _nary("cbind"),
    "table": _table,
    "ifelse": _ifelse,
    "outer": _outer,
    "order": _order,
    "sort": _order,
    "removeEmpty": _param_builtin("removeEmpty", ["target", "margin", "select"]),
    "replace": _param_builtin("replace", ["target", "pattern", "replacement"]),
    "quantile": _quantile,
    "median": _median,
    "lowertri": _param_builtin("lowertri", ["target", "diag", "values"]),
    "uppertri": _param_builtin("uppertri", ["target", "diag", "values"]),
    # lifecycle / systems builtins
    "time": _time,
    "transformapply": _transformapply,
    "detectSchema": _param_builtin("detectSchema", ["target"]),
    "federated": _federated,
    "paramserv": _paramserv,
    "list": _list_builtin,
    "nnz": _nrow_like("nnz"),
    "eval": _eval,
    "lineage": _lineage,
}


def builtin_names() -> frozenset:
    """Names handled directly by the HOP builder (not DML-bodied)."""
    return frozenset(_BUILTINS) | frozenset(MULTI_RETURN_BUILTINS) | frozenset(
        {"print", "stop", "assert", "write"}
    )
