"""Global configuration for compiler and runtime behaviour.

A :class:`ReproConfig` plays the role of SystemDS' ``SystemDS-config.xml``
plus the JVM heap settings: it fixes the memory budget that drives operator
selection (CP vs. distributed), the degree of parallelism, block sizes for
the distributed backend, and the feature flags used by the ablation
benchmarks (rewrites, lineage, reuse).

Configs are plain dataclasses; the active config travels with each
execution context rather than being process-global, so tests can run
different configurations concurrently.  ``default_config()`` returns the
shared default instance used when none is supplied.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from typing import Optional


@dataclasses.dataclass
class ReproConfig:
    """Tunable knobs of the compiler and runtime."""

    # --- memory management -------------------------------------------------
    #: Budget (bytes) for live in-memory data; drives CP vs. distributed
    #: operator selection and buffer-pool eviction.  Defaults to 2 GiB.
    memory_budget: int = 2 * 1024**3
    #: Fraction of the budget a single operation may claim before the
    #: compiler selects a distributed operator for it.
    operator_memory_fraction: float = 0.7
    #: Fraction of the budget managed by the buffer pool before eviction.
    bufferpool_fraction: float = 0.5
    #: Exact buffer-pool budget in bytes (``repro-dml --pool-budget``);
    #: overrides the fraction-derived budget when set.  Out-of-core smoke
    #: runs use it to pin the pool far below the working set.
    bufferpool_budget_override: Optional[int] = None
    #: Directory for buffer-pool spill files (created lazily).
    spill_dir: Optional[str] = None

    # --- out-of-core (PR 9) -------------------------------------------------
    #: Compress eligible spilled blocks (dense 2D FP64) with the CLA
    #: encoders before writing; falls back to raw pickles when the
    #: compression ratio does not pay.  The codec is bit-exact, so this is
    #: on by default and safe under bitwise lattice configs.
    spill_compress: bool = True
    #: Minimum dense-bytes / compressed-bytes ratio for a compressed
    #: spill to be worth it (below this the raw pickle wins on restore
    #: latency).
    spill_compress_min_ratio: float = 1.2
    #: Background prefetch/writeback thread: the interpreter's lookahead
    #: over each basic block's reads warms evicted entries before ``get``
    #: needs them, and dirty entries are flushed off the eviction hot path.
    enable_prefetch: bool = True
    #: Let eligible kernels (scalar arithmetic, full aggregates, matmul
    #: with a dense RHS) execute directly on still-compressed restored
    #: blocks.  Off by default: compressed reductions legally reorder
    #: float arithmetic, so results match within tolerance, not bitwise.
    compressed_exec: bool = False

    # --- parallelism --------------------------------------------------------
    #: Degree of parallelism for multithreaded kernels, parfor, and the
    #: distributed scheduler.  Defaults to the machine's CPU count.
    parallelism: int = dataclasses.field(default_factory=lambda: os.cpu_count() or 4)
    #: Number of partitions for the SimRDD backend (0 = use parallelism).
    default_partitions: int = 0

    # --- distributed blocking ----------------------------------------------
    #: Side length of square matrix blocks (paper: 1024).  Tests shrink this.
    block_size: int = 1024

    # --- transport ------------------------------------------------------------
    #: Where federated sites and RDD tasks execute: ``"inproc"`` (thread
    #: simulations, zero overhead — the default), ``"proc"`` (real
    #: spawn-context worker processes behind the :mod:`repro.net` frame
    #: protocol, SIGKILL-able by the fault injector), or ``"tcp"``
    #: (workers listening on real host:port addresses with reconnecting
    #: links; gains the ``net.*`` wire-level fault points).
    transport: str = "inproc"
    #: Bind/advertise host of tcp-transport workers.  Loopback by
    #: default; a LAN address makes workers remotely addressable.
    transport_host: str = "127.0.0.1"
    #: Deadline (s) for one transport round trip before the lost-ACK
    #: same-id resend and the kill escalation kick in.
    transport_request_timeout_s: float = 60.0
    #: Worker heartbeat cadence (s) on the transport socket; also the
    #: coordinator's receive-poll slice while awaiting a response.
    heartbeat_interval_s: float = 0.25
    #: Silent grace, in heartbeat intervals, before a missed heartbeat is
    #: counted and the worker process is probed for liveness.
    heartbeat_miss_grace: float = 3.0
    #: Connect + READY-greeting deadline (s) when dialing a tcp worker
    #: (bounds half-open connection detection).
    tcp_connect_timeout_s: float = 5.0
    #: Redial attempts after a severed tcp link before the peer is
    #: declared dead (escalating to respawn + publication replay).
    tcp_reconnect_retries: int = 4

    # --- optimizer feature flags (ablations) ---------------------------------
    enable_rewrites: bool = True
    enable_cse: bool = True
    enable_fusion: bool = True  # e.g. t(X)%*%X -> TSMM
    enable_ipa: bool = True  # inter-procedural analysis + inlining
    enable_recompile: bool = True
    #: Cell-template operator fusion via code generation (paper section 3.4).
    enable_codegen: bool = True

    # --- lineage / reuse -----------------------------------------------------
    enable_lineage: bool = False
    enable_lineage_dedup: bool = True
    #: Reuse policy: "none", "full", or "full_partial".
    reuse_policy: str = "none"
    #: Budget (bytes) of the lineage reuse cache.
    reuse_cache_size: int = 512 * 1024**2

    # --- trace compilation ----------------------------------------------------
    #: Fuse hot basic blocks into compiled traces (``repro-dml --no-trace``
    #: disables).  Tracing stands down automatically when lineage reuse is
    #: on (per-instruction reuse probes cannot be hoisted to trace edges).
    enable_trace: bool = True
    #: Executions of a basic block (same plan, stable operand kinds) before
    #: its instruction sequence is compiled into a trace.
    trace_threshold: int = 8

    # --- observability --------------------------------------------------------
    #: Per-instruction profiling + unified stats (``repro-dml --stats``).
    #: Off by default: the interpreter keeps a zero-overhead fast path.
    enable_stats: bool = False
    #: Rows of the heavy-hitter instruction table in stats reports.
    stats_top_k: int = 10

    # --- resilience / fault injection -----------------------------------------
    #: Master switch for the tolerance machinery (retries, backoff, breaker,
    #: site failover).  Off by default: the interpreter keeps a single
    #: ``ctx.faults is None`` fast path.  A non-empty ``fault_spec`` implies it.
    enable_resilience: bool = False
    #: Deterministic fault-injection spec (``repro-dml --inject-faults``),
    #: e.g. ``"site.request:p=0.1;spill.write:fail=2"``.  None injects nothing.
    fault_spec: Optional[str] = None
    #: Seed of the per-point injection and backoff-jitter streams.
    fault_seed: int = 1234
    #: Retries after the first attempt, per request/task/spill.
    retry_budget: int = 2
    #: First backoff delay (ms); doubles per retry up to the cap.
    retry_backoff_ms: float = 10.0
    retry_backoff_max_ms: float = 200.0
    #: Deadline for one federated site request (None disables).
    federated_timeout_s: Optional[float] = 5.0
    #: Consecutive exhausted requests before a site is blacklisted.
    blacklist_after: int = 3
    #: How long a blacklisted site is skipped before being retried.
    blacklist_cooldown_s: float = 30.0
    #: Consecutive scoring-batch failures that open a model's breaker.
    breaker_threshold: int = 5
    #: Open -> half-open cooldown of the serving circuit breaker.
    breaker_cooldown_s: float = 10.0

    # --- checkpoint / restore --------------------------------------------------
    #: Directory for crash-consistent checkpoints (``repro-dml
    #: --checkpoint-dir``).  None disables checkpointing: contexts then
    #: carry no :class:`repro.checkpoint.CheckpointManager` and the
    #: interpreter keeps a single ``ctx.checkpoints is None`` fast path.
    checkpoint_dir: Optional[str] = None
    #: Snapshot cadence: a checkpoint is taken every N interpreter loop /
    #: top-level block boundaries.
    checkpoint_every: int = 1

    # --- kernels --------------------------------------------------------------
    #: When False, dense matrix multiplies use the blocked pure-Python-driven
    #: kernel that models SystemDS' Java matmult; when True they call the
    #: native BLAS (NumPy dot), modelling SysDS-B in the paper.
    native_blas: bool = True
    #: Tile size of the cache-conscious non-BLAS matmult kernel.
    matmult_tile: int = 64

    # --- misc -------------------------------------------------------------------
    #: Seed used for generated randomness when a script does not specify one.
    random_seed: int = 7
    #: Abort execution after this many interpreted instructions (None =
    #: unlimited).  The qa fuzzer sets it so delta-debugging candidates
    #: that lose a loop's exit condition terminate instead of spinning.
    max_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        if not 0.0 < self.operator_memory_fraction <= 1.0:
            raise ValueError("operator_memory_fraction must be in (0, 1]")
        if not 0.0 < self.bufferpool_fraction <= 1.0:
            raise ValueError("bufferpool_fraction must be in (0, 1]")
        if (self.bufferpool_budget_override is not None
                and self.bufferpool_budget_override <= 0):
            raise ValueError("bufferpool_budget_override must be positive")
        if self.spill_compress_min_ratio < 1.0:
            raise ValueError("spill_compress_min_ratio must be >= 1.0")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.reuse_policy not in ("none", "full", "full_partial"):
            raise ValueError(f"unknown reuse policy: {self.reuse_policy!r}")
        if self.transport not in ("inproc", "proc", "tcp"):
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(use inproc, proc, or tcp)"
            )
        if not self.transport_host:
            raise ValueError("transport_host must be a non-empty host")
        if self.transport_request_timeout_s <= 0:
            raise ValueError("transport_request_timeout_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.heartbeat_miss_grace < 1.0:
            raise ValueError(
                "heartbeat_miss_grace must be >= 1 heartbeat interval"
            )
        if self.tcp_connect_timeout_s <= 0:
            raise ValueError("tcp_connect_timeout_s must be positive")
        if self.tcp_reconnect_retries < 0:
            raise ValueError("tcp_reconnect_retries must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.max_instructions is not None and self.max_instructions < 1:
            raise ValueError("max_instructions must be >= 1 (or None)")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.trace_threshold < 1:
            raise ValueError("trace_threshold must be >= 1")
        if self.fault_spec is not None:
            from repro.resilience.faults import FaultPlan

            FaultPlan.parse(self.fault_spec, seed=self.fault_seed)  # fail fast

    @property
    def operator_memory_budget(self) -> int:
        """Bytes a single operator may use before going distributed."""
        return int(self.memory_budget * self.operator_memory_fraction)

    @property
    def bufferpool_budget(self) -> int:
        """Bytes the buffer pool manages before evicting."""
        if self.bufferpool_budget_override is not None:
            return int(self.bufferpool_budget_override)
        return int(self.memory_budget * self.bufferpool_fraction)

    @property
    def reuse_enabled(self) -> bool:
        return self.enable_lineage and self.reuse_policy != "none"

    @property
    def partial_reuse_enabled(self) -> bool:
        return self.enable_lineage and self.reuse_policy == "full_partial"

    @property
    def resilience_enabled(self) -> bool:
        """True when contexts should carry a :class:`ResilienceManager`."""
        return self.enable_resilience or self.fault_spec is not None

    def resolve_spill_dir(self) -> str:
        """The spill directory, creating a temporary one on first use."""
        if self.spill_dir is None:
            self.spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        os.makedirs(self.spill_dir, exist_ok=True)
        return self.spill_dir

    def copy(self, **overrides) -> "ReproConfig":
        """A new config with the given fields replaced."""
        return dataclasses.replace(self, **overrides)


_DEFAULT: Optional[ReproConfig] = None


def default_config() -> ReproConfig:
    """The process-wide default configuration (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ReproConfig()
    return _DEFAULT
