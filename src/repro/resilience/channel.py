"""Resilient request channel for federated site calls.

Every coordinator-to-site request goes through :meth:`ResilientChannel.call`
when resilience is enabled: the call is retried with capped exponential
backoff and jitter on *transient* failures (injected faults, dead sites,
I/O errors), responses slower than the timeout are treated as failures,
sites that keep failing are blacklisted in the worker registry for a
cooldown, and the request fails over to a configured replica site.  When
every candidate is exhausted, the caller either degrades (reads pass a
``fallback``) or gets a typed :class:`FederatedSiteUnavailableError`
naming the injection point — the coordinator never sees a raw crash from
one flaky worker.

Permanent errors — privacy-constraint violations, unknown tensors — are
*not* retried or failed over: masking those with degraded data would turn
a correctness error into silent corruption.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.errors import (
    FederatedError,
    FederatedSiteUnavailableError,
    InjectedFaultError,
    SiteDownError,
)
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.stats import ResilienceStats

#: Failures worth retrying/failing over.  ConnectionError and TimeoutError
#: are OSError subclasses; FederatedError deliberately is NOT here.
TRANSIENT_ERRORS = (InjectedFaultError, SiteDownError, OSError)


class ResilientChannel:
    """Retry + timeout + blacklist + failover around site requests."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        injector=None,
        stats: Optional[ResilienceStats] = None,
        registry=None,
        timeout_s: Optional[float] = 5.0,
        blacklist_after: int = 3,
        blacklist_cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = time.sleep,
        rng=None,
    ):
        self.policy = policy or RetryPolicy()
        self.injector = injector
        self.stats = stats or ResilienceStats()
        self.timeout_s = timeout_s
        self.blacklist_after = max(1, int(blacklist_after))
        self.blacklist_cooldown_s = blacklist_cooldown_s
        self._registry = registry
        self._clock = clock
        self._sleep = sleep
        self._rng = rng
        self._strikes = {}  # address -> consecutive exhausted requests

    def _resolve_registry(self):
        if self._registry is not None:
            return self._registry
        from repro.federated.site import FederatedWorkerRegistry

        return FederatedWorkerRegistry.default()

    def _candidates(self, site, registry) -> List:
        """The primary site followed by its (transitive) replica chain."""
        chain = [site]
        seen = {site.address}
        address = registry.replica_of(site.address)
        while address is not None and address not in seen:
            seen.add(address)
            try:
                chain.append(registry.site(address))
            except FederatedError:
                break  # replica not started; stop following the chain
            address = registry.replica_of(address)
        return chain

    def call(self, site, point: str, thunk: Callable, fallback: Optional[Callable] = None):
        """Run ``thunk(site)`` resiliently; returns its result.

        ``thunk`` receives the site actually serving the request (the
        primary or a replica), so operations that leave results at the
        site can record *where*.  ``fallback`` (when given) is invoked
        instead of raising once every candidate is exhausted — the
        degraded-read path.
        """
        registry = self._resolve_registry()
        attempted = 0
        last_error: Optional[BaseException] = None
        for target in self._candidates(site, registry):
            if not registry.is_healthy(target.address, self._clock()):
                continue  # blacklisted: fail over without burning retries
            if attempted > 0:
                self.stats.incr("site_failovers")
            attempted += 1
            try:
                result = self._attempt(target, point, thunk)
            except TRANSIENT_ERRORS as exc:
                last_error = exc
                self._strike(registry, target.address)
                continue
            self._strikes.pop(target.address, None)
            return result
        if fallback is not None:
            self.stats.incr("degraded_reads")
            return fallback()
        if attempted == 0:
            # Not a single candidate was even tried: every one of them sat
            # inside a blacklist cooldown.  Distinct from retries running
            # out — report when the earliest cooldown ends so the caller
            # knows how long until the request could succeed again.
            self.stats.incr("all_blacklisted")
            cooldowns = registry.blacklisted(self._clock())
            detail = ""
            if cooldowns:
                soonest = min(cooldowns.values())
                detail = f"cooldown ends in {max(0.0, soonest):.1f}s"
            raise FederatedSiteUnavailableError(
                point, site.address, reason="all_blacklisted", detail=detail
            ) from None
        self.stats.incr("candidates_exhausted")
        raise FederatedSiteUnavailableError(
            point, site.address, reason="candidates_exhausted",
            detail=f"{attempted} candidate(s) attempted",
        ) from last_error

    def _attempt(self, target, point: str, thunk: Callable):
        """One request against one site: inject, run, check the deadline."""

        def once():
            start = self._clock()
            if self.injector is not None:
                self.injector.fire(point)
            result = thunk(target)
            if self.timeout_s is not None and self._clock() - start > self.timeout_s:
                self.stats.incr("timeouts")
                raise TimeoutError(
                    f"{point} on {target.address}: response exceeded "
                    f"{self.timeout_s}s deadline"
                )
            return result

        return call_with_retry(
            once, self.policy, TRANSIENT_ERRORS,
            sleep=self._sleep, rng=self._rng, stats=self.stats, kind="site",
        )

    def _strike(self, registry, address: str) -> None:
        """Count one exhausted request; blacklist after ``blacklist_after``."""
        strikes = self._strikes.get(address, 0) + 1
        self._strikes[address] = strikes
        if strikes >= self.blacklist_after:
            registry.mark_unhealthy(
                address, self._clock() + self.blacklist_cooldown_s
            )
            self.stats.incr("sites_blacklisted")
            self._strikes.pop(address, None)
