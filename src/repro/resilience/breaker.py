"""A closed/open/half-open circuit breaker (per-model serving protection).

State machine:

* **closed** — normal operation; consecutive failures count up, a success
  resets the count, and reaching ``failure_threshold`` opens the circuit;
* **open** — every ``allow()`` is rejected until ``cooldown_s`` has
  elapsed, then the breaker moves to half-open;
* **half-open** — up to ``half_open_probes`` trial calls are admitted;
  one success closes the circuit, one failure re-opens it.  If a probe is
  admitted but never reports back (e.g. the request was dropped), a fresh
  probe is allowed after another cooldown so the breaker cannot wedge.

The clock is injected so tests step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class CircuitBreaker:
    """Thread-safe three-state breaker with an injectable monotonic clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 10.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_used = 0
        self._probing_since = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, state: str) -> None:
        # caller holds self._lock
        self._state = state
        if self._on_transition is not None:
            self._on_transition(state)

    def allow(self) -> bool:
        """Admit or reject one call; may move open -> half-open on cooldown."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            now = self._clock()
            if self._state == self.OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._transition(self.HALF_OPEN)
                self._probes_used = 1
                self._probing_since = now
                return True
            # half-open: bounded trial admissions
            if self._probes_used < self.half_open_probes:
                self._probes_used += 1
                return True
            if now - self._probing_since >= self.cooldown_s:
                # earlier probes never reported back; allow a fresh one
                self._probes_used = 1
                self._probing_since = now
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            # Close only from HALF_OPEN.  A success landing while OPEN is a
            # *stale* probe: admitted during an earlier half-open window,
            # reporting back after another failure already re-opened the
            # circuit.  Closing on it would defeat the fresh cooldown.
            if self._state == self.HALF_OPEN:
                self._transition(self.CLOSED)
                self._probes_used = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._transition(self.OPEN)
                self._opened_at = self._clock()
                self._probes_used = 0
                return
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._transition(self.OPEN)
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        with self._lock:
            return {"state": self._state, "consecutive_failures": self._failures}
