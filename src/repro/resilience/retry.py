"""Bounded retry with capped exponential backoff and deterministic jitter.

The policy is data (how many retries, how the delays grow); the mechanics
live in :func:`call_with_retry`.  Both take the clock pieces as arguments
— a ``sleep`` callable and an ``rng`` for jitter — so tests drive them
with a fake monotonic clock and a seeded RNG instead of real time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a transient failure is retried."""

    #: Retries after the first attempt (total attempts = max_retries + 1).
    max_retries: int = 2
    #: First backoff delay; doubles per retry.
    backoff_ms: float = 10.0
    #: Cap on a single backoff delay.
    max_backoff_ms: float = 200.0
    #: Fraction of each delay randomised downward (0 disables jitter).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, rng=None) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered via ``rng``.

        The delay lands in ``[base * (1 - jitter), base]`` where ``base``
        is the capped exponential ``min(backoff * 2^attempt, max_backoff)``
        — full determinism with a seeded rng, plain cap without one.
        """
        base = min(self.backoff_ms * (2.0 ** attempt), self.max_backoff_ms) / 1e3
        if rng is None or self.jitter <= 0.0 or base <= 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


def call_with_retry(
    thunk: Callable[[], object],
    policy: RetryPolicy,
    retryable: Tuple[type, ...],
    sleep: Optional[Callable[[float], None]] = time.sleep,
    rng=None,
    stats=None,
    kind: Optional[str] = None,
):
    """Run ``thunk``, retrying ``retryable`` failures per ``policy``.

    Non-retryable exceptions propagate immediately; the last retryable
    error propagates once the budget is exhausted.  ``sleep=None`` retries
    immediately (used where a lock is held and blocking would stall other
    threads); retries and backoff time are folded into ``stats``.
    """
    attempt = 0
    while True:
        try:
            return thunk()
        except retryable:
            if attempt >= policy.max_retries:
                raise
            delay = policy.delay_s(attempt, rng) if sleep is not None else 0.0
            if stats is not None:
                stats.record_retry(kind, delay)
            if sleep is not None and delay > 0.0:
                sleep(delay)
            attempt += 1
