"""Deterministic, seed-driven fault injection (the chaos half of resilience).

A :class:`FaultPlan` names *injection points* — fixed places in the
runtime where the tolerance machinery can be made to face failure — and
assigns each a rule: a per-call failure probability (``p=``), a
fail-N-then-succeed count (``fail=``), an added latency
(``latency_ms=``), and/or a deterministic process kill (``crash=N``: the
N-th call at the point raises :class:`InjectedCrashError`, which no retry
layer catches — the run dies exactly like a real crash and only a
checkpoint resume continues it).  The :class:`FaultInjector` executes a
plan with one
seeded RNG stream *per point*, so a given (spec, seed) pair injects the
same fault schedule on every run — chaos tests are reproducible and a
failing seed can be replayed.

Fault-spec grammar (the ``repro-dml --inject-faults`` argument)::

    SPEC   := CLAUSE (';' CLAUSE)*
    CLAUSE := POINT ':' PARAM (',' PARAM)*
    PARAM  := 'p=' FLOAT | 'fail=' INT | 'latency_ms=' FLOAT | 'crash=' INT
    POINT  := one of KNOWN_POINTS, or '*' for all of them

Example: ``site.request:p=0.1;spill.write:fail=2,latency_ms=5``.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
import zlib
from typing import Callable, Dict, Optional

from repro.errors import InjectedCrashError, InjectedFaultError

#: Every injection point wired into the runtime.  Parsing rejects unknown
#: names so a typo in a chaos spec fails loudly instead of injecting nothing.
KNOWN_POINTS = (
    "site.request",   # federated site fetch/execute/metadata requests
    "rdd.task",       # one SimRDD per-partition task execution
    "rdd.cache_loss", # a cached SimRDD partition is lost (recompute via lineage)
    "spill.read",     # buffer-pool restore from a spill file
    "spill.write",    # buffer-pool eviction write to a spill file
    "serve.score",    # one scoring batch execution in the serving layer
    "serve.worker",   # a sharded-serving worker process (trip = SIGKILL mid-batch)
    "fed.worker",     # a proc-transport federated site worker (trip = SIGKILL mid-request)
    "rdd.worker",     # a proc-transport RDD task executor (trip = SIGKILL mid-task)
    "checkpoint.boundary",  # a loop/top-level block boundary of the interpreter
    # wire-level points, consulted by the chaos tcp transport per frame
    "net.drop",       # a frame vanishes (unsent REQ or discarded RES/ERR)
    "net.delay_ms",   # latency added before a frame hits the wire
    "net.dup",        # a REQ frame is delivered twice (dedup must absorb it)
    "net.corrupt",    # one bit of the encoded frame is flipped (CRCs reject)
    "net.partition",  # the link is severed mid-stream (reconnect + resend)
)


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """The fault behaviour of one injection point."""

    point: str
    probability: float = 0.0  # chance each call fails (seeded, per point)
    fail_first: int = 0       # the first N calls fail, then calls succeed
    latency_ms: float = 0.0   # added delay on every call (slow, not broken)
    crash_after: int = 0      # the N-th call raises InjectedCrashError (0 = never)

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"known points: {', '.join(KNOWN_POINTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.fail_first < 0:
            raise ValueError("fail= count must be >= 0")
        if self.latency_ms < 0:
            raise ValueError("latency_ms= must be >= 0")
        if self.crash_after < 0:
            raise ValueError("crash= count must be >= 0")


class FaultPlan:
    """A seeded set of per-point fault rules."""

    def __init__(self, rules, seed: int = 1234):
        self.rules: Dict[str, FaultRule] = {rule.point: rule for rule in rules}
        self.seed = int(seed)

    def __bool__(self) -> bool:
        return bool(self.rules)

    @classmethod
    def parse(cls, spec: str, seed: int = 1234) -> "FaultPlan":
        """Parse the fault-spec grammar (see module docstring)."""
        rules: Dict[str, FaultRule] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            point, sep, params = clause.partition(":")
            point = point.strip()
            if not sep or not params.strip():
                raise ValueError(
                    f"fault clause {clause!r} must be point:param[,param...]"
                )
            kwargs = {}
            for param in params.split(","):
                key, psep, value = param.partition("=")
                key = key.strip()
                if not psep:
                    raise ValueError(f"fault param {param!r} must be key=value")
                try:
                    if key in ("p", "prob", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "fail":
                        kwargs["fail_first"] = int(value)
                    elif key in ("latency", "latency_ms"):
                        kwargs["latency_ms"] = float(value)
                    elif key == "crash":
                        kwargs["crash_after"] = int(value)
                    else:
                        raise ValueError(
                            f"unknown fault param {key!r} "
                            f"(use p=, fail=, latency_ms=, crash=)"
                        )
                except (TypeError, ValueError) as exc:
                    if "unknown fault param" in str(exc):
                        raise
                    raise ValueError(f"bad value in fault param {param!r}") from exc
            points = KNOWN_POINTS if point == "*" else (point,)
            for name in points:
                rules[name] = FaultRule(point=name, **kwargs)
        if not rules:
            raise ValueError(f"empty fault spec {spec!r}")
        return cls(rules.values(), seed=seed)


class _PointState:
    """Mutable per-point injection state (own lock + own RNG stream)."""

    __slots__ = ("rule", "rng", "lock", "calls", "injected", "failed_so_far")

    def __init__(self, rule: FaultRule, seed: int):
        self.rule = rule
        # crc32 keys the stream by point *name*, so adding a point to a plan
        # never shifts the schedule of the others (Python's hash() is
        # randomised per process and would).
        self.rng = random.Random(seed ^ zlib.crc32(rule.point.encode()))
        self.lock = threading.Lock()
        self.calls = 0
        self.injected = 0
        self.failed_so_far = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` with deterministic per-point streams."""

    def __init__(self, plan: FaultPlan, stats=None,
                 sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.stats = stats
        self._sleep = sleep
        self._states = {
            point: _PointState(rule, plan.seed)
            for point, rule in plan.rules.items()
        }

    def active(self, point: str) -> bool:
        """True when the plan has a rule for ``point`` (cheap pre-check)."""
        return point in self._states

    def trip(self, point: str) -> bool:
        """Decide (and record) whether this call at ``point`` fails.

        Applies the rule's latency either way; returns True when the call
        should fail without raising — used by loss-style points such as
        ``rdd.cache_loss`` where "failure" is an event, not an exception.

        A ``crash=N`` rule raises :class:`InjectedCrashError` on the N-th
        call instead of returning: the crash models the process dying, so
        it must escape every retry wrapper above this frame.
        """
        state = self._states.get(point)
        if state is None:
            return False
        rule = state.rule
        crash = False
        fail = False
        with state.lock:
            state.calls += 1
            if rule.crash_after and state.calls == rule.crash_after:
                crash = True
            elif state.failed_so_far < rule.fail_first:
                state.failed_so_far += 1
                fail = True
            elif rule.probability > 0.0:
                fail = state.rng.random() < rule.probability
            if fail or crash:
                state.injected += 1
        if rule.latency_ms > 0.0:
            self._sleep(rule.latency_ms / 1e3)
        if (fail or crash) and self.stats is not None:
            self.stats.record_injection(point)
        if crash:
            raise InjectedCrashError(point)
        return fail

    def fire(self, point: str) -> None:
        """Raise :class:`InjectedFaultError` when the rule trips."""
        if self.trip(point):
            raise InjectedFaultError(point)

    def snapshot(self) -> dict:
        """Per-point call and injection counts (deterministic given seed)."""
        result = {}
        for point, state in self._states.items():
            with state.lock:
                result[point] = {"calls": state.calls, "injected": state.injected}
        return result
