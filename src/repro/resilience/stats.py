"""Thread-safe counters for the resilience layer (obs ``resilience`` section).

One :class:`ResilienceStats` instance is shared by every tolerance
mechanism of a run — the fault injector, the retry helpers, the federated
channel, the circuit breakers, and the buffer-pool spill fallback — so a
single ``snapshot()`` answers "what did the resilience layer do": faults
injected (total and per point), retries taken (total and per kind), time
spent backing off, breaker transitions, blacklists, failovers, and
degraded reads.
"""

from __future__ import annotations

import threading
from typing import Dict

#: Counters every snapshot carries, recorded or not, so reports and CI
#: assertions can rely on a stable key set.
_STANDARD_COUNTERS = (
    "faults_injected",
    "retries",
    "timeouts",
    "site_retries",
    "task_retries",
    "spill_retries",
    "serve_retries",
    "recomputed_partitions",
    "site_failovers",
    "sites_blacklisted",
    "candidates_exhausted",
    "all_blacklisted",
    "degraded_reads",
    "spill_pin_fallbacks",
    "shed_requests",
    "breaker_rejections",
    "worker_deaths",
    "worker_respawns",
    "resent_requests",
)


class ResilienceStats:
    """Lock-guarded counters shared by all tolerance mechanisms of a run."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in _STANDARD_COUNTERS}
        self._by_point: Dict[str, int] = {}
        self._transitions: Dict[str, int] = {}
        self._backoff_s = 0.0

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def record_injection(self, point: str) -> None:
        """One fault fired at ``point`` (called by the injector)."""
        with self._lock:
            self._counters["faults_injected"] += 1
            self._by_point[point] = self._by_point.get(point, 0) + 1

    def record_retry(self, kind: str = None, backoff_s: float = 0.0) -> None:
        """One retry taken; ``kind`` is site/task/spill/serve (or None)."""
        with self._lock:
            self._counters["retries"] += 1
            if kind is not None:
                key = f"{kind}_retries"
                self._counters[key] = self._counters.get(key, 0) + 1
            self._backoff_s += backoff_s

    def record_transition(self, state: str) -> None:
        """One circuit-breaker transition into ``state``."""
        with self._lock:
            self._transitions[state] = self._transitions.get(state, 0) + 1

    @property
    def backoff_s(self) -> float:
        with self._lock:
            return self._backoff_s

    def snapshot(self) -> dict:
        """A JSON-serialisable view (stable keys; see module docstring)."""
        with self._lock:
            result = dict(self._counters)
            result["backoff_s"] = self._backoff_s
            result["injected_by_point"] = dict(self._by_point)
            result["breaker_transitions"] = dict(self._transitions)
        return result
