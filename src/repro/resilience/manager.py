"""The per-run resilience runtime: one handle the whole system shares.

``ExecutionContext.faults`` holds either ``None`` (the default — every
hot path stays on a single ``is None`` check, exactly like ``ctx.stats``)
or one :class:`ResilienceManager`.  The manager composes the pieces:

* the optional seeded :class:`FaultInjector` (``config.fault_spec``);
* the :class:`RetryPolicy` every tolerance layer uses;
* the shared :class:`ResilienceStats` surfaced as the obs ``resilience``
  section;
* the federated :class:`ResilientChannel`;
* per-key :class:`CircuitBreaker` instances for the serving layer.

Clock and sleep are injectable so the entire subsystem runs against a
fake monotonic clock in tests.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.channel import ResilientChannel
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.stats import ResilienceStats


class ResilienceManager:
    """Injector + policies + stats + channel + breakers for one run."""

    def __init__(
        self,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        stats: Optional[ResilienceStats] = None,
        registry=None,
        federated_timeout_s: Optional[float] = 5.0,
        blacklist_after: int = 3,
        blacklist_cooldown_s: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 10.0,
        seed: int = 1234,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ):
        self.stats = stats or ResilienceStats()
        self.injector = injector
        if injector is not None and injector.stats is None:
            injector.stats = self.stats
        self.retry_policy = retry_policy or RetryPolicy()
        self.clock = clock
        self.sleep = sleep
        #: Jitter stream; seeded so backoff schedules replay with the run.
        self.rng = random.Random(seed ^ 0x5DEECE66D)
        self.channel = ResilientChannel(
            policy=self.retry_policy,
            injector=injector,
            stats=self.stats,
            registry=registry,
            timeout_s=federated_timeout_s,
            blacklist_after=blacklist_after,
            blacklist_cooldown_s=blacklist_cooldown_s,
            clock=clock,
            sleep=sleep,
            rng=self.rng,
        )
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

    @classmethod
    def from_config(cls, config) -> "ResilienceManager":
        """Build the run's manager from :class:`repro.config.ReproConfig`."""
        injector = None
        if config.fault_spec:
            injector = FaultInjector(
                FaultPlan.parse(config.fault_spec, seed=config.fault_seed)
            )
        return cls(
            injector=injector,
            retry_policy=RetryPolicy(
                max_retries=config.retry_budget,
                backoff_ms=config.retry_backoff_ms,
                max_backoff_ms=config.retry_backoff_max_ms,
            ),
            federated_timeout_s=config.federated_timeout_s,
            blacklist_after=config.blacklist_after,
            blacklist_cooldown_s=config.blacklist_cooldown_s,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown_s=config.breaker_cooldown_s,
            seed=config.fault_seed,
        )

    def bind_transport(self, transport) -> None:
        """Attach a :class:`repro.net.Transport` to this run's resilience.

        Points the federated channel's blacklist/failover registry at the
        transport's (so breakers and failover work identically against
        site *proxies*) and hands the transport this manager for its
        ``fed.worker``/``rdd.worker`` SIGKILL points and death counters.
        """
        transport.bind_resilience(self)
        self.channel._registry = transport.registry()

    # --- injection shortcuts (no-ops without an injector) --------------------

    def active(self, point: str) -> bool:
        return self.injector is not None and self.injector.active(point)

    def trip(self, point: str) -> bool:
        return self.injector is not None and self.injector.trip(point)

    def fire(self, point: str) -> None:
        if self.injector is not None:
            self.injector.fire(point)

    # --- per-key circuit breakers (serving) -----------------------------------

    def breaker_for(self, key: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    cooldown_s=self._breaker_cooldown_s,
                    clock=self.clock,
                    on_transition=self.stats.record_transition,
                )
            return breaker

    # --- observability -----------------------------------------------------------

    def snapshot(self) -> dict:
        """The obs ``resilience`` section: counters + points + breakers."""
        snap = self.stats.snapshot()
        if self.injector is not None:
            snap["points"] = self.injector.snapshot()
        with self._breaker_lock:
            if self._breakers:
                snap["breakers"] = {
                    key: breaker.snapshot()["state"]
                    for key, breaker in self._breakers.items()
                }
        return snap
