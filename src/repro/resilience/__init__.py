"""``repro.resilience`` — deterministic fault injection and fault tolerance.

The subsystem has two halves that meet at *named injection points*:

* **chaos** — :class:`FaultPlan`/:class:`FaultInjector` fire seeded,
  reproducible failures (probabilistic, fail-N-then-succeed, latency) at
  the points listed in :data:`KNOWN_POINTS`;
* **tolerance** — :class:`RetryPolicy` + :func:`call_with_retry`,
  :class:`CircuitBreaker`, and :class:`ResilientChannel` survive those
  failures (and their real-world counterparts): distributed tasks retry
  and lost cached partitions recompute from lineage, federated requests
  back off / blacklist / fail over, serving trips per-model breakers and
  sheds load, and buffer-pool spills retry then pin in memory.

Everything is off by default: ``ExecutionContext.faults`` is ``None``
unless :class:`repro.config.ReproConfig` enables resilience, keeping hot
paths on a single ``is None`` check (the ``ctx.stats`` pattern).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.channel import TRANSIENT_ERRORS, ResilientChannel
from repro.resilience.faults import (
    KNOWN_POINTS,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.resilience.manager import ResilienceManager
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.stats import ResilienceStats

__all__ = [
    "KNOWN_POINTS",
    "TRANSIENT_ERRORS",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "ResilienceManager",
    "ResilienceStats",
    "ResilientChannel",
    "RetryPolicy",
    "call_with_retry",
]
