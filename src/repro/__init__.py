"""repro — a from-scratch Python reproduction of SystemDS (CIDR 2020).

The public API surface is intentionally small:

* :func:`dml` / :class:`MLContext` — compile and execute DML scripts.
* :class:`PreparedScript` — JMLC-style precompiled, repeatedly executable scripts.
* :func:`matrix` — the lazy Python language binding that collects operation
  DAGs and compiles them on demand.
* :class:`ReproConfig` — compiler/runtime configuration.
* :class:`ModelRegistry` / :class:`ScoringService` — the concurrent
  model-scoring subsystem (deployment/serving stage).
* :mod:`repro.obs` — the unified runtime statistics layer
  (``repro-dml --stats``, ``MLContext.set_stats``).
* The tensor data model (:class:`BasicTensorBlock`, :class:`DataTensorBlock`,
  :class:`Frame`).

Everything else (compiler, runtime, lineage, distributed and federated
backends) is reachable through the subpackages but is not re-exported here.
"""

from repro.config import ReproConfig, default_config
from repro.tensor import BasicTensorBlock, DataTensorBlock, Frame

__version__ = "1.0.0"

__all__ = [
    "BasicTensorBlock",
    "DataTensorBlock",
    "Frame",
    "MLContext",
    "ModelRegistry",
    "PreparedScript",
    "ReproConfig",
    "ScoringService",
    "default_config",
    "dml",
    "matrix",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid cycles while the
    # api package itself imports the tensor/compiler layers.
    if name in ("MLContext", "dml"):
        from repro.api.mlcontext import MLContext, dml

        return {"MLContext": MLContext, "dml": dml}[name]
    if name == "PreparedScript":
        from repro.api.jmlc import PreparedScript

        return PreparedScript
    if name == "matrix":
        from repro.api.matrix import matrix

        return matrix
    if name in ("ModelRegistry", "ScoringService"):
        from repro.serving import ModelRegistry, ScoringService

        return {"ModelRegistry": ModelRegistry, "ScoringService": ScoringService}[name]
    if name == "obs":
        import repro.obs as obs

        return obs
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
