"""Tokenizer for the DML scripting language.

A hand-written single-pass lexer.  DML's R heritage shows in a few places:
``%*%``/``%%``/``%/%`` operators, ``TRUE``/``FALSE`` literals, ``#`` line
comments (plus C-style block comments), and ``<-`` as an assignment alias.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List

from repro.errors import DMLSyntaxError


class TokenType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    ASSIGN = "="
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "if",
        "else",
        "while",
        "for",
        "parfor",
        "in",
        "function",
        "return",
        "source",
        "as",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "%*%",
    "%/%",
    "%%",
    "<-",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "^",
    "<",
    ">",
    "&",
    "|",
    "!",
]

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
}


@dataclasses.dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer over a DML source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token(TokenType.EOF, "", self.line, self.column)
                return
            char = self.source[self.pos]
            if char == "\n":
                token = Token(TokenType.NEWLINE, "\n", self.line, self.column)
                self._advance()
                yield token
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                yield self._number()
            elif char == '"' or char == "'":
                yield self._string(char)
            elif char.isalpha() or char == "_":
                yield self._word()
            elif char == "=" and self._peek(1) != "=":
                token = Token(TokenType.ASSIGN, "=", self.line, self.column)
                self._advance()
                yield token
            elif char in _SINGLE_CHAR:
                token = Token(_SINGLE_CHAR[char], char, self.line, self.column)
                self._advance()
                yield token
            else:
                yield self._operator()

    # --- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for __ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip spaces/tabs and comments, but not newlines (they end statements)."""
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in (" ", "\t", "\r"):
                self._advance()
            elif char == "#":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self.source[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise DMLSyntaxError("unterminated block comment", start_line, 0)
                self._advance(2)
            elif char == "\\" and self._peek(1) == "\n":
                self._advance(2)  # explicit line continuation
            else:
                return

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        return Token(TokenType.FLOAT if is_float else TokenType.INT, text, line, column)

    def _string(self, quote: str) -> Token:
        line, column = self.line, self.column
        self._advance()
        chars: List[str] = []
        while True:
            char = self._peek()
            if char == "":
                raise DMLSyntaxError("unterminated string literal", line, column)
            if char == "\n":
                raise DMLSyntaxError("newline in string literal", line, column)
            if char == "\\":
                escape = self._peek(1)
                mapped = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape)
                if mapped is None:
                    raise DMLSyntaxError(f"unknown escape: \\{escape}", self.line, self.column)
                chars.append(mapped)
                self._advance(2)
                continue
            if char == quote:
                self._advance()
                break
            chars.append(char)
            self._advance()
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() in ("_", "."):
            self._advance()
        text = self.source[start : self.pos]
        if text in ("TRUE", "FALSE"):
            return Token(TokenType.BOOLEAN, text, line, column)
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)

    def _operator(self) -> Token:
        line, column = self.line, self.column
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                # <- is an assignment alias from R
                if op == "<-":
                    return Token(TokenType.ASSIGN, "=", line, column)
                if op == "&&":
                    op = "&"
                elif op == "||":
                    op = "|"
                return Token(TokenType.OPERATOR, op, line, column)
        raise DMLSyntaxError(
            f"unexpected character {self.source[self.pos]!r}", line, column
        )


def tokenize(source: str) -> List[Token]:
    """All tokens of a DML source string, ending with EOF."""
    return list(Lexer(source).tokens())
