"""Recursive-descent parser for DML.

Produces the AST of :mod:`repro.lang.ast`.  Statements are terminated by
newlines or semicolons; newlines are insignificant inside parentheses,
brackets, and braces-delimited blocks, mirroring R.  Operator precedence
(loosest to tightest)::

    |   &   comparison   + -   * / %% %/%   %*%   unary -/!   ^   indexing

``^`` is right-associative and binds tighter than unary minus (as in R,
``-2^2 == -4``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DMLSyntaxError
from repro.lang import ast
from repro.lang.lexer import Token, TokenType, tokenize
from repro.types import DataType, ValueType

_DATA_TYPE_NAMES = {
    "matrix": DataType.MATRIX,
    "Matrix": DataType.MATRIX,
    "tensor": DataType.TENSOR,
    "Tensor": DataType.TENSOR,
    "frame": DataType.FRAME,
    "Frame": DataType.FRAME,
    "list": DataType.LIST,
    "List": DataType.LIST,
    "scalar": DataType.SCALAR,
    "Scalar": DataType.SCALAR,
    "Double": DataType.SCALAR,
    "double": DataType.SCALAR,
    "Integer": DataType.SCALAR,
    "integer": DataType.SCALAR,
    "int": DataType.SCALAR,
    "Int": DataType.SCALAR,
    "Boolean": DataType.SCALAR,
    "boolean": DataType.SCALAR,
    "String": DataType.SCALAR,
    "string": DataType.SCALAR,
}

_VALUE_TYPE_NAMES = {
    "double": ValueType.FP64,
    "Double": ValueType.FP64,
    "fp64": ValueType.FP64,
    "fp32": ValueType.FP32,
    "float": ValueType.FP32,
    "integer": ValueType.INT64,
    "Integer": ValueType.INT64,
    "int": ValueType.INT64,
    "Int": ValueType.INT64,
    "int32": ValueType.INT32,
    "boolean": ValueType.BOOLEAN,
    "Boolean": ValueType.BOOLEAN,
    "string": ValueType.STRING,
    "String": ValueType.STRING,
}

_SCALAR_VALUE_TYPES = {
    "Double": ValueType.FP64,
    "double": ValueType.FP64,
    "Integer": ValueType.INT64,
    "integer": ValueType.INT64,
    "int": ValueType.INT64,
    "Int": ValueType.INT64,
    "Boolean": ValueType.BOOLEAN,
    "boolean": ValueType.BOOLEAN,
    "String": ValueType.STRING,
    "string": ValueType.STRING,
}


class Parser:
    """Parses one DML script into an :class:`repro.lang.ast.Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self._group_depth = 0

    # --- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = self.pos + offset
        if self._group_depth > 0 or offset > 0:
            # skip newlines inside groups; for lookahead, skip them as well
            # so `f(a,\n b)` parses naturally
            count = 0
            index = self.pos
            while index < len(self.tokens):
                token = self.tokens[index]
                if token.type == TokenType.NEWLINE and self._group_depth > 0:
                    index += 1
                    continue
                if count == offset:
                    return token
                count += 1
                index += 1
            return self.tokens[-1]
        return self.tokens[min(index, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self._peek()
        # move pos past that token (skipping any newlines we skipped in peek)
        while self.tokens[self.pos] is not token:
            self.pos += 1
        self.pos += 1
        return token

    def _check(self, token_type: TokenType, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.type != token_type:
            return False
        return text is None or token.text == text

    def _match(self, token_type: TokenType, text: Optional[str] = None) -> Optional[Token]:
        if self._check(token_type, text):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(token_type, text):
            wanted = text or token_type.value
            raise DMLSyntaxError(
                f"expected {wanted!r}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self.tokens[self.pos].type in (TokenType.NEWLINE, TokenType.SEMICOLON):
            self.pos += 1

    def _end_statement(self) -> None:
        token = self.tokens[self.pos]
        if token.type in (TokenType.NEWLINE, TokenType.SEMICOLON):
            self._skip_newlines()
        elif token.type not in (TokenType.EOF, TokenType.RBRACE):
            raise DMLSyntaxError(
                f"expected end of statement, found {token.text!r}", token.line, token.column
            )

    # --- program --------------------------------------------------------------

    def parse(self) -> ast.Program:
        program = ast.Program()
        self._skip_newlines()
        while not self._check(TokenType.EOF):
            statement = self._statement()
            if isinstance(statement, ast.FunctionDef):
                if statement.name in program.functions:
                    raise DMLSyntaxError(
                        f"duplicate function definition: {statement.name}",
                        statement.line,
                        statement.column,
                    )
                program.functions[statement.name] = statement
            else:
                program.statements.append(statement)
            self._skip_newlines()
        return program

    # --- statements --------------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.type == TokenType.KEYWORD:
            if token.text == "if":
                return self._if_statement()
            if token.text == "while":
                return self._while_statement()
            if token.text == "for":
                return self._for_statement(parallel=False)
            if token.text == "parfor":
                return self._for_statement(parallel=True)
            raise DMLSyntaxError(
                f"unexpected keyword {token.text!r}", token.line, token.column
            )
        if token.type == TokenType.LBRACKET:
            return self._multi_assign()
        if token.type == TokenType.IDENTIFIER:
            return self._identifier_statement()
        # bare expression statement, e.g. print("...")
        expr = self._expression()
        statement = ast.ExprStatement(value=expr, line=token.line, column=token.column)
        self._end_statement()
        return statement

    def _identifier_statement(self) -> ast.Statement:
        token = self._peek()
        # function definition: name = function(...)
        if self._peek(1).type == TokenType.ASSIGN and self._is_function_keyword(2):
            return self._function_def()
        # left-indexed assignment: name [ ranges ] = expr
        if self._peek(1).type == TokenType.LBRACKET:
            saved = self.pos
            name = self._advance().text
            ranges = self._index_ranges()
            if self._check(TokenType.ASSIGN):
                self._advance()
                value = self._expression()
                statement = ast.IndexedAssign(
                    target=name, ranges=ranges, value=value,
                    line=token.line, column=token.column,
                )
                self._end_statement()
                return statement
            self.pos = saved  # it was an expression like X[1,2] used bare
        if self._peek(1).type == TokenType.ASSIGN:
            name = self._advance().text
            self._advance()  # '='
            value = self._expression()
            statement = ast.Assign(
                target=name, value=value, line=token.line, column=token.column
            )
            self._end_statement()
            return statement
        if self._peek(1).type == TokenType.OPERATOR and self._peek(1).text == "+=":
            name = self._advance().text
            self._advance()  # '+='
            value = self._expression()
            statement = ast.Assign(
                target=name, value=value, accumulate=True,
                line=token.line, column=token.column,
            )
            self._end_statement()
            return statement
        expr = self._expression()
        statement = ast.ExprStatement(value=expr, line=token.line, column=token.column)
        self._end_statement()
        return statement

    def _is_function_keyword(self, offset: int) -> bool:
        token = self._peek(offset)
        return token.type == TokenType.KEYWORD and token.text == "function"

    def _multi_assign(self) -> ast.Statement:
        token = self._expect(TokenType.LBRACKET)
        targets = [self._expect(TokenType.IDENTIFIER).text]
        while self._match(TokenType.COMMA):
            targets.append(self._expect(TokenType.IDENTIFIER).text)
        self._expect(TokenType.RBRACKET)
        self._expect(TokenType.ASSIGN)
        value = self._expression()
        statement = ast.MultiAssign(
            targets=targets, value=value, line=token.line, column=token.column
        )
        self._end_statement()
        return statement

    def _block(self) -> List[ast.Statement]:
        """A braces-delimited block or a single statement."""
        self._skip_newlines()
        if self._match(TokenType.LBRACE):
            statements = []
            self._skip_newlines()
            while not self._check(TokenType.RBRACE):
                if self._check(TokenType.EOF):
                    token = self._peek()
                    raise DMLSyntaxError("unterminated block", token.line, token.column)
                statements.append(self._statement())
                self._skip_newlines()
            self._expect(TokenType.RBRACE)
            return statements
        return [self._statement()]

    def _if_statement(self) -> ast.If:
        token = self._expect(TokenType.KEYWORD, "if")
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        condition = self._expression()
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        then_body = self._block()
        else_body: List[ast.Statement] = []
        saved = self.pos
        self._skip_newlines()
        if self._check(TokenType.KEYWORD, "else"):
            self._advance()
            self._skip_newlines()
            if self._check(TokenType.KEYWORD, "if"):
                else_body = [self._if_statement()]
            else:
                else_body = self._block()
        else:
            self.pos = saved
        return ast.If(
            condition=condition, then_body=then_body, else_body=else_body,
            line=token.line, column=token.column,
        )

    def _while_statement(self) -> ast.While:
        token = self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        condition = self._expression()
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        body = self._block()
        return ast.While(condition=condition, body=body, line=token.line, column=token.column)

    def _for_statement(self, parallel: bool) -> ast.Statement:
        keyword = "parfor" if parallel else "for"
        token = self._expect(TokenType.KEYWORD, keyword)
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        var = self._expect(TokenType.IDENTIFIER).text
        self._expect(TokenType.KEYWORD, "in")
        from_expr, to_expr, step_expr = self._iteration_range()
        opts: Dict[str, ast.Expr] = {}
        while self._match(TokenType.COMMA):
            opt_name = self._expect(TokenType.IDENTIFIER).text
            self._expect(TokenType.ASSIGN)
            opts[opt_name] = self._expression()
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        body = self._block()
        if parallel:
            return ast.ParFor(
                var=var, from_expr=from_expr, to_expr=to_expr, step_expr=step_expr,
                body=body, opts=opts, line=token.line, column=token.column,
            )
        if opts:
            raise DMLSyntaxError("for loops take no options", token.line, token.column)
        return ast.For(
            var=var, from_expr=from_expr, to_expr=to_expr, step_expr=step_expr,
            body=body, line=token.line, column=token.column,
        )

    def _iteration_range(self) -> Tuple[ast.Expr, ast.Expr, Optional[ast.Expr]]:
        """``lo:hi`` or ``seq(lo, hi[, step])`` in a for/parfor header."""
        first = self._expression()
        if self._match(TokenType.COLON):
            return first, self._expression(), None
        if isinstance(first, ast.Call) and first.name == "seq":
            args = first.args
            if not 2 <= len(args) <= 3 or first.named_args:
                raise DMLSyntaxError(
                    "seq() in a loop header takes 2 or 3 positional arguments",
                    first.line, first.column,
                )
            step = args[2] if len(args) == 3 else None
            return args[0], args[1], step
        raise DMLSyntaxError(
            "loop header requires lo:hi or seq(lo, hi, step)", first.line, first.column
        )

    # --- functions ----------------------------------------------------------------

    def _function_def(self) -> ast.FunctionDef:
        name_token = self._expect(TokenType.IDENTIFIER)
        self._expect(TokenType.ASSIGN)
        self._expect(TokenType.KEYWORD, "function")
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        params = self._param_list(defaults_allowed=True)
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        self._skip_newlines()
        self._expect(TokenType.KEYWORD, "return")
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        returns = self._param_list(defaults_allowed=False)
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        body = self._block()
        return ast.FunctionDef(
            name=name_token.text, params=params, returns=returns, body=body,
            line=name_token.line, column=name_token.column,
        )

    def _param_list(self, defaults_allowed: bool) -> List[ast.Param]:
        params: List[ast.Param] = []
        if self._check(TokenType.RPAREN):
            return params
        while True:
            params.append(self._param(defaults_allowed))
            if not self._match(TokenType.COMMA):
                return params

    def _param(self, defaults_allowed: bool) -> ast.Param:
        type_token = self._expect(TokenType.IDENTIFIER)
        type_spec = self._type_spec(type_token)
        name_token = self._expect(TokenType.IDENTIFIER)
        default = None
        if self._match(TokenType.ASSIGN):
            if not defaults_allowed:
                raise DMLSyntaxError(
                    "return parameters take no defaults", name_token.line, name_token.column
                )
            default = self._expression()
        return ast.Param(
            name=name_token.text, type_spec=type_spec, default=default,
            line=type_token.line, column=type_token.column,
        )

    def _type_spec(self, type_token: Token) -> ast.TypeSpec:
        name = type_token.text
        data_type = _DATA_TYPE_NAMES.get(name)
        if data_type is None:
            raise DMLSyntaxError(f"unknown type {name!r}", type_token.line, type_token.column)
        value_type = _SCALAR_VALUE_TYPES.get(name, ValueType.FP64)
        if self._match(TokenType.LBRACKET):
            vt_token = self._expect(TokenType.IDENTIFIER)
            value_type = _VALUE_TYPE_NAMES.get(vt_token.text)
            if value_type is None:
                raise DMLSyntaxError(
                    f"unknown value type {vt_token.text!r}", vt_token.line, vt_token.column
                )
            self._expect(TokenType.RBRACKET)
        return ast.TypeSpec(
            data_type=data_type, value_type=value_type,
            line=type_token.line, column=type_token.column,
        )

    # --- expressions -----------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _binary_level(self, operators: Tuple[str, ...], next_level) -> ast.Expr:
        left = next_level()
        while self._check(TokenType.OPERATOR) and self._peek().text in operators:
            op_token = self._advance()
            right = next_level()
            left = ast.BinaryExpr(
                op=op_token.text, left=left, right=right,
                line=op_token.line, column=op_token.column,
            )
        return left

    def _or_expr(self) -> ast.Expr:
        return self._binary_level(("|",), self._and_expr)

    def _and_expr(self) -> ast.Expr:
        return self._binary_level(("&",), self._not_expr)

    def _not_expr(self) -> ast.Expr:
        if self._check(TokenType.OPERATOR, "!"):
            token = self._advance()
            operand = self._not_expr()
            return ast.UnaryExpr(op="!", operand=operand, line=token.line, column=token.column)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        return self._binary_level(("==", "!=", "<", "<=", ">", ">="), self._additive)

    def _additive(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self._multiplicative)

    def _multiplicative(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%%", "%/%"), self._matmult)

    def _matmult(self) -> ast.Expr:
        return self._binary_level(("%*%",), self._unary)

    def _unary(self) -> ast.Expr:
        if self._check(TokenType.OPERATOR, "-"):
            token = self._advance()
            operand = self._unary()
            if isinstance(operand, ast.IntLiteral):
                return ast.IntLiteral(value=-operand.value, line=token.line, column=token.column)
            if isinstance(operand, ast.FloatLiteral):
                return ast.FloatLiteral(value=-operand.value, line=token.line, column=token.column)
            return ast.UnaryExpr(op="-", operand=operand, line=token.line, column=token.column)
        if self._check(TokenType.OPERATOR, "+"):
            self._advance()
            return self._unary()
        return self._power()

    def _power(self) -> ast.Expr:
        base = self._postfix()
        if self._check(TokenType.OPERATOR, "^"):
            op_token = self._advance()
            # right associative; exponent may itself be -x^y
            exponent = self._unary()
            return ast.BinaryExpr(
                op="^", left=base, right=exponent,
                line=op_token.line, column=op_token.column,
            )
        return base

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self._check(TokenType.LBRACKET):
            line, column = self._peek().line, self._peek().column
            ranges = self._index_ranges()
            expr = ast.IndexExpr(target=expr, ranges=ranges, line=line, column=column)
        return expr

    def _index_ranges(self) -> List[ast.IndexRange]:
        self._expect(TokenType.LBRACKET)
        self._group_depth += 1
        ranges: List[ast.IndexRange] = []
        while True:
            ranges.append(self._index_range())
            if not self._match(TokenType.COMMA):
                break
        self._group_depth -= 1
        self._expect(TokenType.RBRACKET)
        return ranges

    def _index_range(self) -> ast.IndexRange:
        token = self._peek()
        if token.type in (TokenType.COMMA, TokenType.RBRACKET):
            return ast.IndexRange(line=token.line, column=token.column)  # "all"
        lower = self._expression()
        if self._match(TokenType.COLON):
            upper = self._expression()
            return ast.IndexRange(lower=lower, upper=upper, line=token.line, column=token.column)
        return ast.IndexRange(lower=lower, line=token.line, column=token.column)

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.type == TokenType.INT:
            self._advance()
            return ast.IntLiteral(value=int(token.text), line=token.line, column=token.column)
        if token.type == TokenType.FLOAT:
            self._advance()
            return ast.FloatLiteral(value=float(token.text), line=token.line, column=token.column)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.StringLiteral(value=token.text, line=token.line, column=token.column)
        if token.type == TokenType.BOOLEAN:
            self._advance()
            return ast.BoolLiteral(value=token.text == "TRUE", line=token.line, column=token.column)
        if token.type == TokenType.LPAREN:
            self._advance()
            self._group_depth += 1
            expr = self._expression()
            self._group_depth -= 1
            self._expect(TokenType.RPAREN)
            return expr
        if token.type == TokenType.IDENTIFIER:
            self._advance()
            if self._check(TokenType.LPAREN):
                return self._call(token)
            return ast.Identifier(name=token.text, line=token.line, column=token.column)
        raise DMLSyntaxError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )

    def _call(self, name_token: Token) -> ast.Call:
        self._expect(TokenType.LPAREN)
        self._group_depth += 1
        args: List[ast.Expr] = []
        named_args: Dict[str, ast.Expr] = {}
        if not self._check(TokenType.RPAREN):
            while True:
                if (
                    self._peek().type == TokenType.IDENTIFIER
                    and self._peek(1).type == TokenType.ASSIGN
                ):
                    key = self._advance().text
                    self._advance()
                    if key in named_args:
                        raise DMLSyntaxError(
                            f"duplicate named argument {key!r}",
                            name_token.line, name_token.column,
                        )
                    named_args[key] = self._expression()
                else:
                    if named_args:
                        raise DMLSyntaxError(
                            "positional argument after named argument",
                            self._peek().line, self._peek().column,
                        )
                    args.append(self._expression())
                if not self._match(TokenType.COMMA):
                    break
        self._group_depth -= 1
        self._expect(TokenType.RPAREN)
        return ast.Call(
            name=name_token.text, args=args, named_args=named_args,
            line=name_token.line, column=name_token.column,
        )


def parse(source: str) -> ast.Program:
    """Parse one DML script into a :class:`repro.lang.ast.Program`."""
    return Parser(source).parse()
