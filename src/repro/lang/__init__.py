"""The DML scripting language frontend (paper section 2.2).

DML is an R-like declarative language for linear algebra, statistical
operations, control flow, and user-defined functions.  This package
implements the lexer, recursive-descent parser, and the AST consumed by
the compiler (:mod:`repro.compiler`).
"""

from repro.lang.lexer import Lexer, Token, TokenType, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.unparse import ast_equal, unparse

__all__ = [
    "Lexer",
    "Parser",
    "Token",
    "TokenType",
    "ast_equal",
    "parse",
    "tokenize",
    "unparse",
]
