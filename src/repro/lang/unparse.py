"""Unparser (pretty-printer) for the DML AST.

``unparse`` renders a :class:`repro.lang.ast.Program` (or any statement /
expression node) back into DML source such that re-parsing yields an AST
equal to the original, modulo source locations::

    ast_equal(parse(unparse(program)), program)  # always True

The printer is deliberately conservative: every nested binary/unary
expression is fully parenthesised (parentheses create no AST nodes, so
round-tripping is exact without re-deriving the precedence table), blocks
always use braces, and one statement is printed per line.

Two parser normalisations are worth knowing when *constructing* ASTs by
hand (parser-produced ASTs are unaffected):

* ``-`` applied to an int/float literal is constant-folded by the parser
  into a negative literal, so ``UnaryExpr("-", IntLiteral(2))`` cannot
  round-trip — build ``IntLiteral(-2)`` instead;
* ``<-`` is lexed as ``=`` and ``&&``/``||`` as ``&``/``|``, so only the
  canonical spellings are ever printed.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.types import DataType, ValueType

_INDENT = "  "

# canonical type names the parser maps back onto the identical TypeSpec
_SCALAR_NAMES = {
    ValueType.FP64: "Double",
    ValueType.INT64: "Integer",
    ValueType.BOOLEAN: "Boolean",
    ValueType.STRING: "String",
}
_DATA_NAMES = {
    DataType.MATRIX: "Matrix",
    DataType.TENSOR: "Tensor",
    DataType.FRAME: "Frame",
    DataType.LIST: "List",
    DataType.SCALAR: "Scalar",
}
_VALUE_NAMES = {
    ValueType.FP64: "double",
    ValueType.FP32: "fp32",
    ValueType.INT64: "integer",
    ValueType.INT32: "int32",
    ValueType.BOOLEAN: "boolean",
    ValueType.STRING: "string",
}

_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t"}


def unparse(node) -> str:
    """DML source for a program, statement, or expression node."""
    if isinstance(node, ast.Program):
        return unparse_program(node)
    if isinstance(node, ast.Statement):
        return "\n".join(_statement_lines(node, 0))
    if isinstance(node, (ast.Expr, ast.IndexRange)):
        return unparse_expr(node)
    raise TypeError(f"cannot unparse {type(node).__name__}")


def unparse_program(program: ast.Program) -> str:
    """The full script: function definitions first, then statements."""
    lines: List[str] = []
    for function in program.functions.values():
        lines.extend(_function_lines(function))
    for statement in program.statements:
        lines.extend(_statement_lines(statement, 0))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def unparse_expr(expr) -> str:
    """One expression, fully parenthesised where nesting is possible."""
    if isinstance(expr, ast.IntLiteral):
        text = str(expr.value)
        return f"({text})" if expr.value < 0 else text
    if isinstance(expr, ast.FloatLiteral):
        if expr.value != expr.value or expr.value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float literal cannot be unparsed: {expr.value}")
        text = repr(expr.value)
        return f"({text})" if expr.value < 0 else text
    if isinstance(expr, ast.StringLiteral):
        body = "".join(_STRING_ESCAPES.get(c, c) for c in expr.value)
        return f'"{body}"'
    if isinstance(expr, ast.BoolLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.BinaryExpr):
        return f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
    if isinstance(expr, ast.UnaryExpr):
        return f"({expr.op}{unparse_expr(expr.operand)})"
    if isinstance(expr, ast.Call):
        args = [unparse_expr(a) for a in expr.args]
        args += [f"{k}={unparse_expr(v)}" for k, v in expr.named_args.items()]
        return f"{expr.name}({', '.join(args)})"
    if isinstance(expr, ast.IndexExpr):
        ranges = ",".join(_range_text(r) for r in expr.ranges)
        return f"{unparse_expr(expr.target)}[{ranges}]"
    if isinstance(expr, ast.IndexRange):
        return _range_text(expr)
    raise TypeError(f"cannot unparse expression {type(expr).__name__}")


def _range_text(rng: ast.IndexRange) -> str:
    if rng.is_all:
        return ""
    if rng.is_single:
        return unparse_expr(rng.lower)
    return f"{unparse_expr(rng.lower)}:{unparse_expr(rng.upper)}"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


def _statement_lines(statement: ast.Statement, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(statement, ast.FunctionDef):
        return _function_lines(statement, depth)
    if isinstance(statement, ast.Assign):
        op = "+=" if statement.accumulate else "="
        return [f"{pad}{statement.target} {op} {unparse_expr(statement.value)}"]
    if isinstance(statement, ast.IndexedAssign):
        ranges = ",".join(_range_text(r) for r in statement.ranges)
        return [f"{pad}{statement.target}[{ranges}] = {unparse_expr(statement.value)}"]
    if isinstance(statement, ast.MultiAssign):
        targets = ", ".join(statement.targets)
        return [f"{pad}[{targets}] = {unparse_expr(statement.value)}"]
    if isinstance(statement, ast.ExprStatement):
        return [f"{pad}{unparse_expr(statement.value)}"]
    if isinstance(statement, ast.If):
        lines = [f"{pad}if ({unparse_expr(statement.condition)}) {{"]
        lines.extend(_body_lines(statement.then_body, depth + 1))
        if statement.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_body_lines(statement.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(statement, ast.While):
        lines = [f"{pad}while ({unparse_expr(statement.condition)}) {{"]
        lines.extend(_body_lines(statement.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(statement, (ast.For, ast.ParFor)):
        keyword = "parfor" if isinstance(statement, ast.ParFor) else "for"
        if statement.step_expr is not None:
            header = (f"seq({unparse_expr(statement.from_expr)}, "
                      f"{unparse_expr(statement.to_expr)}, "
                      f"{unparse_expr(statement.step_expr)})")
        else:
            header = (f"{unparse_expr(statement.from_expr)}:"
                      f"{unparse_expr(statement.to_expr)}")
        opts = ""
        if isinstance(statement, ast.ParFor) and statement.opts:
            opts = "".join(
                f", {name}={unparse_expr(value)}"
                for name, value in statement.opts.items()
            )
        lines = [f"{pad}{keyword} ({statement.var} in {header}{opts}) {{"]
        lines.extend(_body_lines(statement.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot unparse statement {type(statement).__name__}")


def _body_lines(body: List[ast.Statement], depth: int) -> List[str]:
    lines: List[str] = []
    for statement in body:
        lines.extend(_statement_lines(statement, depth))
    return lines


def _function_lines(function: ast.FunctionDef, depth: int = 0) -> List[str]:
    pad = _INDENT * depth
    params = ", ".join(_param_text(p) for p in function.params)
    returns = ", ".join(_param_text(p) for p in function.returns)
    lines = [f"{pad}{function.name} = function({params}) return ({returns}) {{"]
    lines.extend(_body_lines(function.body, depth + 1))
    lines.append(f"{pad}}}")
    return lines


def _param_text(param: ast.Param) -> str:
    text = f"{_type_text(param.type_spec)} {param.name}"
    if param.default is not None:
        text += f" = {unparse_expr(param.default)}"
    return text


def _type_text(spec: ast.TypeSpec) -> str:
    if spec.data_type == DataType.SCALAR:
        name = _SCALAR_NAMES.get(spec.value_type)
        if name is not None:
            return name
        return f"Scalar[{_VALUE_NAMES[spec.value_type]}]"
    base = _DATA_NAMES.get(spec.data_type)
    if base is None:
        raise ValueError(f"cannot unparse type {spec.data_type!r}")
    if spec.value_type == ValueType.FP64:
        return base  # the parser's default for a bare container name
    return f"{base}[{_VALUE_NAMES[spec.value_type]}]"


# ---------------------------------------------------------------------------
# structural AST equality (ignoring source locations)
# ---------------------------------------------------------------------------


def ast_equal(a, b) -> bool:
    """Structural equality of two AST fragments, ignoring line/column."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Node):
        for field in a.__dataclass_fields__:
            if field in ("line", "column"):
                continue
            if not ast_equal(getattr(a, field), getattr(b, field)):
                return False
        return True
    if isinstance(a, list):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return (
            list(a.keys()) == list(b.keys())
            and all(ast_equal(a[k], b[k]) for k in a)
        )
    return a == b
