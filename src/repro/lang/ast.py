"""Abstract syntax tree for DML programs.

Nodes are small frozen-ish dataclasses with source locations; the compiler
walks them once to build statement blocks and HOP DAGs, so there is no
visitor infrastructure — plain ``isinstance`` dispatch keeps the code flat.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.types import DataType, ValueType


@dataclasses.dataclass
class Node:
    """Base class carrying the source location of every AST node."""

    line: int = dataclasses.field(default=-1, kw_only=True)
    column: int = dataclasses.field(default=-1, kw_only=True)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Expr(Node):
    pass


@dataclasses.dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclasses.dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclasses.dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclasses.dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclasses.dataclass
class Identifier(Expr):
    name: str = ""


@dataclasses.dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclasses.dataclass
class UnaryExpr(Expr):
    op: str = ""  # "-" or "!"
    operand: Expr = None


@dataclasses.dataclass
class Call(Expr):
    """Function or builtin call with positional and named arguments."""

    name: str = ""
    args: List[Expr] = dataclasses.field(default_factory=list)
    named_args: Dict[str, Expr] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class IndexRange(Node):
    """One dimension of an indexing expression.

    ``lower is None and upper is None`` means "all" (an omitted dimension,
    e.g. the row dimension in ``X[,i]``).  ``upper is None`` with a lower
    bound means a single position.  Bounds are 1-based inclusive DML
    expressions; the compiler normalises them.
    """

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None

    @property
    def is_all(self) -> bool:
        return self.lower is None and self.upper is None

    @property
    def is_single(self) -> bool:
        return self.lower is not None and self.upper is None


@dataclasses.dataclass
class IndexExpr(Expr):
    """Right indexing ``X[ranges...]``."""

    target: Expr = None
    ranges: List[IndexRange] = dataclasses.field(default_factory=list)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Statement(Node):
    pass


@dataclasses.dataclass
class Assign(Statement):
    target: str = ""
    value: Expr = None
    #: ``True`` for accumulation assignment ``x += e``.
    accumulate: bool = False


@dataclasses.dataclass
class IndexedAssign(Statement):
    """Left indexing ``X[ranges...] = value``."""

    target: str = ""
    ranges: List[IndexRange] = dataclasses.field(default_factory=list)
    value: Expr = None


@dataclasses.dataclass
class MultiAssign(Statement):
    """``[a, b] = f(...)`` — multi-return function call."""

    targets: List[str] = dataclasses.field(default_factory=list)
    value: Expr = None


@dataclasses.dataclass
class ExprStatement(Statement):
    """An expression evaluated for effect (``print``, ``write``, ``stop``)."""

    value: Expr = None


@dataclasses.dataclass
class If(Statement):
    condition: Expr = None
    then_body: List[Statement] = dataclasses.field(default_factory=list)
    else_body: List[Statement] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class While(Statement):
    condition: Expr = None
    body: List[Statement] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class For(Statement):
    """``for (var in from:to)`` or ``for (var in seq(from, to, incr))``."""

    var: str = ""
    from_expr: Expr = None
    to_expr: Expr = None
    step_expr: Optional[Expr] = None
    body: List[Statement] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ParFor(Statement):
    """Parallel for loop; ``opts`` carries parfor parameters (check, par, ...)."""

    var: str = ""
    from_expr: Expr = None
    to_expr: Expr = None
    step_expr: Optional[Expr] = None
    body: List[Statement] = dataclasses.field(default_factory=list)
    opts: Dict[str, Expr] = dataclasses.field(default_factory=dict)


# ---------------------------------------------------------------------------
# functions
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TypeSpec(Node):
    """A declared DML type, e.g. ``Matrix[Double]`` or ``Integer``."""

    data_type: DataType = DataType.UNKNOWN
    value_type: ValueType = ValueType.UNKNOWN

    @classmethod
    def of(cls, data_type: DataType, value_type: ValueType = ValueType.FP64) -> "TypeSpec":
        return cls(data_type=data_type, value_type=value_type)


@dataclasses.dataclass
class Param(Node):
    name: str = ""
    type_spec: TypeSpec = None
    default: Optional[Expr] = None


@dataclasses.dataclass
class FunctionDef(Statement):
    name: str = ""
    params: List[Param] = dataclasses.field(default_factory=list)
    returns: List[Param] = dataclasses.field(default_factory=list)
    body: List[Statement] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Program(Node):
    """A parsed DML script: top-level statements plus function definitions."""

    statements: List[Statement] = dataclasses.field(default_factory=list)
    functions: Dict[str, FunctionDef] = dataclasses.field(default_factory=dict)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def walk_expressions(statement: Statement):
    """Yield every expression reachable from one statement (pre-order)."""
    roots: List[Expr] = []
    if isinstance(statement, Assign):
        roots = [statement.value]
    elif isinstance(statement, IndexedAssign):
        roots = [statement.value]
        for rng in statement.ranges:
            roots.extend(e for e in (rng.lower, rng.upper) if e is not None)
    elif isinstance(statement, MultiAssign):
        roots = [statement.value]
    elif isinstance(statement, ExprStatement):
        roots = [statement.value]
    elif isinstance(statement, If):
        roots = [statement.condition]
    elif isinstance(statement, While):
        roots = [statement.condition]
    elif isinstance(statement, (For, ParFor)):
        roots = [statement.from_expr, statement.to_expr]
        if statement.step_expr is not None:
            roots.append(statement.step_expr)
    stack = [root for root in roots if root is not None]
    while stack:
        expr = stack.pop()
        yield expr
        if isinstance(expr, BinaryExpr):
            stack.extend([expr.left, expr.right])
        elif isinstance(expr, UnaryExpr):
            stack.append(expr.operand)
        elif isinstance(expr, Call):
            stack.extend(expr.args)
            stack.extend(expr.named_args.values())
        elif isinstance(expr, IndexExpr):
            stack.append(expr.target)
            for rng in expr.ranges:
                stack.extend(e for e in (rng.lower, rng.upper) if e is not None)


def read_variables(statement: Statement) -> set:
    """Names of variables read by one statement (for live-variable analysis)."""
    names = set()
    for expr in walk_expressions(statement):
        if isinstance(expr, Identifier):
            names.add(expr.name)
    if isinstance(statement, IndexedAssign):
        # left indexing reads the previous value of the target
        names.add(statement.target)
    if isinstance(statement, Assign) and statement.accumulate:
        names.add(statement.target)
    return names


def written_variables(statement: Statement) -> set:
    """Names of variables written by one statement."""
    if isinstance(statement, Assign):
        return {statement.target}
    if isinstance(statement, IndexedAssign):
        return {statement.target}
    if isinstance(statement, MultiAssign):
        return set(statement.targets)
    if isinstance(statement, (For, ParFor)):
        return {statement.var}
    return set()


def format_expr(expr: Expr) -> str:
    """A compact, parseable-ish rendering of an expression (for messages)."""
    if isinstance(expr, IntLiteral):
        return str(expr.value)
    if isinstance(expr, FloatLiteral):
        return repr(expr.value)
    if isinstance(expr, StringLiteral):
        return repr(expr.value)
    if isinstance(expr, BoolLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, BinaryExpr):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, UnaryExpr):
        return f"{expr.op}{format_expr(expr.operand)}"
    if isinstance(expr, Call):
        args = [format_expr(a) for a in expr.args]
        args += [f"{k}={format_expr(v)}" for k, v in expr.named_args.items()]
        return f"{expr.name}({', '.join(args)})"
    if isinstance(expr, IndexExpr):
        parts = []
        for rng in expr.ranges:
            if rng.is_all:
                parts.append("")
            elif rng.is_single:
                parts.append(format_expr(rng.lower))
            else:
                parts.append(f"{format_expr(rng.lower)}:{format_expr(rng.upper)}")
        return f"{format_expr(expr.target)}[{','.join(parts)}]"
    return f"<{type(expr).__name__}>"
