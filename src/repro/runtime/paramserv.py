"""Parameter server for mini-batch training (paper section 2.3(4)).

The DML builtin ``paramserv`` drives data-parallel mini-batch training with
user-supplied DML update/aggregate functions:

    model2 = paramserv(model=model, features=X, labels=y,
                       upd="gradients", agg="aggregate",
                       mode="BSP", k=4, epochs=2, batchsize=32,
                       hyperparams=params)

Function contracts (positional):

* ``upd(model, features, labels, hyperparams) -> gradients`` — compute the
  gradients of one mini-batch against the current model;
* ``agg(model, gradients, hyperparams) -> model`` — fold one worker's
  gradients into the model.

Rows are partitioned disjointly and contiguously across ``k`` workers.
``mode="BSP"`` synchronises after every batch step (all workers' gradients
aggregated before anyone proceeds); ``mode="ASP"`` lets workers push and
pull asynchronously under a model lock.
"""

from __future__ import annotations

import concurrent.futures
import math
import threading
from typing import Dict, List, Optional

from repro.errors import RuntimeDMLError
from repro.runtime.data import ListObject, MatrixObject, ScalarObject
from repro.tensor import BasicTensorBlock


class _ParamServer:
    """The shared model store with push/pull under a lock."""

    def __init__(self, model: ListObject):
        self.model = model
        self._lock = threading.Lock()
        self.stats = {"pushes": 0, "pulls": 0}

    def pull(self) -> ListObject:
        with self._lock:
            self.stats["pulls"] += 1
            return self.model

    def push(self, ctx, agg_name: str, gradients: ListObject, hyperparams) -> None:
        from repro.runtime.interpreter import call_function

        with self._lock:
            self.stats["pushes"] += 1
            results, __ = call_function(
                ctx, agg_name, [self.model, gradients, hyperparams], [None, None, None]
            )
            new_model = results[0]
            if not isinstance(new_model, ListObject):
                raise RuntimeDMLError("paramserv agg function must return a list")
            self.model = new_model


def _named_scalar(named: Dict, name: str, default) -> ScalarObject:
    value = named.get(name)
    if value is None:
        return ScalarObject(default)
    if not isinstance(value, ScalarObject):
        raise RuntimeDMLError(f"paramserv: parameter {name!r} must be scalar")
    return value


def run_paramserv(ctx, named: Dict) -> ListObject:
    """Execute the paramserv builtin; returns the trained model list."""
    model = named.get("model")
    if not isinstance(model, ListObject):
        raise RuntimeDMLError("paramserv requires model=list(...)")
    features = named.get("features")
    labels = named.get("labels")
    if not isinstance(features, MatrixObject) or not isinstance(labels, MatrixObject):
        raise RuntimeDMLError("paramserv requires features= and labels= matrices")
    upd_name = _named_scalar(named, "upd", "").as_string()
    agg_name = _named_scalar(named, "agg", "").as_string()
    if not upd_name or not agg_name:
        raise RuntimeDMLError("paramserv requires upd= and agg= function names")
    for func_name in (upd_name, agg_name):
        if func_name not in ctx.program.functions:
            raise RuntimeDMLError(f"paramserv: undefined function {func_name!r}")
    mode = _named_scalar(named, "mode", "BSP").as_string().upper()
    if mode not in ("BSP", "ASP"):
        raise RuntimeDMLError(f"paramserv: unknown mode {mode!r}")
    workers = max(1, _named_scalar(named, "k", ctx.config.parallelism).as_int())
    epochs = max(1, _named_scalar(named, "epochs", 1).as_int())
    batch_size = max(1, _named_scalar(named, "batchsize", 64).as_int())
    hyperparams = named.get("hyperparams")
    if hyperparams is None:
        hyperparams = ListObject([])

    x_block = features.acquire_local(ctx.collect)
    y_block = labels.acquire_local(ctx.collect)
    n = x_block.num_rows
    if y_block.num_rows != n:
        raise RuntimeDMLError("paramserv: features and labels row counts differ")
    workers = min(workers, n)
    server = _ParamServer(model)

    # disjoint contiguous row partitioning
    partitions = []
    rows_per_worker = math.ceil(n / workers)
    x_data = x_block.to_numpy()
    y_data = y_block.to_numpy()
    for w in range(workers):
        lo = w * rows_per_worker
        hi = min(lo + rows_per_worker, n)
        if lo < hi:
            partitions.append((lo, hi))

    if mode == "BSP":
        _run_bsp(ctx, server, upd_name, agg_name, hyperparams,
                 x_data, y_data, partitions, epochs, batch_size)
    else:
        _run_asp(ctx, server, upd_name, agg_name, hyperparams,
                 x_data, y_data, partitions, epochs, batch_size)
    ctx.metrics["paramserv_pushes"] = ctx.metrics.get("paramserv_pushes", 0) + server.stats["pushes"]
    return server.model


def _batches(lo: int, hi: int, batch_size: int) -> List:
    return [(b, min(b + batch_size, hi)) for b in range(lo, hi, batch_size)]


def _compute_gradients(ctx, upd_name: str, model: ListObject, x_data, y_data,
                       batch, hyperparams) -> ListObject:
    from repro.runtime.interpreter import call_function

    lo, hi = batch
    x_batch = MatrixObject.from_block(BasicTensorBlock.from_numpy(x_data[lo:hi].copy()), ctx.pool)
    y_batch = MatrixObject.from_block(BasicTensorBlock.from_numpy(y_data[lo:hi].copy()), ctx.pool)
    results, __ = call_function(
        ctx, upd_name, [model, x_batch, y_batch, hyperparams], [None, None, None, None]
    )
    gradients = results[0]
    if not isinstance(gradients, ListObject):
        raise RuntimeDMLError("paramserv upd function must return a list")
    return gradients


def _run_bsp(ctx, server, upd_name, agg_name, hyperparams,
             x_data, y_data, partitions, epochs, batch_size) -> None:
    """Bulk-synchronous: one barrier per batch step, then ordered aggregation."""
    worker_batches = [_batches(lo, hi, batch_size) for lo, hi in partitions]
    steps = max(len(batches) for batches in worker_batches)
    pool = concurrent.futures.ThreadPoolExecutor(max_workers=len(partitions))
    worker_ctxs = [ctx.child() for __ in partitions]
    try:
        for __ in range(epochs):
            for step in range(steps):
                model = server.pull()
                futures = []
                for wctx, batches in zip(worker_ctxs, worker_batches):
                    if step >= len(batches):
                        continue
                    futures.append(
                        pool.submit(
                            _compute_gradients, wctx, upd_name, model,
                            x_data, y_data, batches[step], hyperparams,
                        )
                    )
                all_gradients = [future.result() for future in futures]
                for gradients in all_gradients:  # barrier, then ordered agg
                    server.push(ctx, agg_name, gradients, hyperparams)
    finally:
        pool.shutdown(wait=False)


def _run_asp(ctx, server, upd_name, agg_name, hyperparams,
             x_data, y_data, partitions, epochs, batch_size) -> None:
    """Asynchronous: each worker pushes/pulls on its own schedule."""

    def worker_loop(wctx, lo, hi):
        for __ in range(epochs):
            for batch in _batches(lo, hi, batch_size):
                model = server.pull()
                gradients = _compute_gradients(
                    wctx, upd_name, model, x_data, y_data, batch, hyperparams
                )
                server.push(wctx, agg_name, gradients, hyperparams)

    with concurrent.futures.ThreadPoolExecutor(max_workers=len(partitions)) as pool:
        futures = [
            pool.submit(worker_loop, ctx.child(), lo, hi) for lo, hi in partitions
        ]
        for future in futures:
            future.result()
