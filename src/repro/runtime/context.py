"""Execution context: symbol table plus the services of the control program.

One context corresponds to one frame of interpretation (the main script, a
function call, or a parfor worker).  Child contexts get a fresh symbol
table but share the buffer pool, the lineage interning table, the reuse
cache, and the runtime metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import ReproConfig
from repro.errors import RuntimeDMLError
from repro.lineage import LineageTracer, ReuseCache
from repro.runtime.bufferpool import BufferPool
from repro.runtime.data import MatrixObject
from repro.tensor import BasicTensorBlock


class ExecutionContext:
    """Symbol table + services for one interpretation frame."""

    def __init__(
        self,
        program,
        config: ReproConfig,
        pool: Optional[BufferPool] = None,
        tracer: Optional[LineageTracer] = None,
        reuse: Optional[ReuseCache] = None,
        print_handler: Optional[Callable[[str], None]] = None,
        metrics: Optional[Dict[str, float]] = None,
        stats=None,
        faults=None,
        checkpoints=None,
        traces=None,
    ):
        self.program = program
        self.config = config
        # per-instruction hook slots behind properties: assigning any of
        # them recomputes the precomputed ``fast_hooks`` flag below
        self._tracer = None
        self._reuse = None
        self._stats = None
        self.fast_hooks = True
        if faults is None and config.resilience_enabled:
            from repro.resilience import ResilienceManager

            faults = ResilienceManager.from_config(config)
        #: Optional :class:`repro.resilience.ResilienceManager`; None keeps
        #: every tolerance hook on its zero-overhead fast path.
        self.faults = faults
        #: Optional :class:`repro.net.Transport`; None is the in-process
        #: fast path (sites in the default registry, tasks as direct calls).
        self.transport = None
        if getattr(config, "transport", "inproc") != "inproc":
            from repro.net import for_config

            self.transport = for_config(config)
            if self.transport is not None and faults is not None:
                faults.bind_transport(self.transport)
        #: Optional :class:`repro.checkpoint.CheckpointManager`; None keeps
        #: every interpreter boundary on its zero-overhead fast path.  Only
        #: the main frame carries one — :meth:`child` drops it, so function
        #: and parfor frames never snapshot.
        self.checkpoints = checkpoints
        self.pool = pool or BufferPool(
            config.bufferpool_budget, config.resolve_spill_dir(),
            resilience=faults,
            compress_spills=config.spill_compress,
            compress_min_ratio=config.spill_compress_min_ratio,
            compressed_exec=config.compressed_exec,
            prefetch=config.enable_prefetch,
        )
        if tracer is None and config.enable_lineage:
            tracer = LineageTracer(dedup=config.enable_lineage_dedup)
        self.tracer = tracer
        if reuse is None and config.reuse_enabled:
            reuse = ReuseCache(config.reuse_cache_size, config.partial_reuse_enabled)
        self.reuse = reuse
        if stats is None and config.enable_stats:
            from repro.obs import StatsRegistry

            stats = StatsRegistry()
        #: Optional :class:`repro.obs.StatsRegistry`; None keeps the
        #: interpreter on its unprofiled fast path.
        self.stats = stats
        if traces is None and config.enable_trace and self.reuse is None:
            from repro.trace import TraceCache

            traces = TraceCache(config.trace_threshold)
        elif traces is not None and self.reuse is not None:
            # lineage reuse probes per instruction and cannot be hoisted
            # to trace boundaries: reuse wins, tracing stands down
            traces = None
        #: Optional :class:`repro.trace.TraceCache`; None keeps every basic
        #: block on the per-instruction interpreter loop.
        self.traces = traces
        if stats is not None:
            from repro.obs import observe_context

            observe_context(stats, self)
        self.variables: Dict[str, object] = {}
        self.prints: List[str] = []
        self.print_handler = print_handler
        self.metrics = metrics if metrics is not None else {
            "instructions": 0,
            "collects": 0,
            "bytes_collected": 0,
            "recompiles": 0,
            "fcalls": 0,
        }
        self._seed_state = (config.random_seed * 2654435761 + 1) % (2**63)
        self._spark = None

    # --- per-instruction hook flag ------------------------------------------------

    def _refresh_hooks(self) -> None:
        """Recompute the hoisted is-None checks of ``execute_instruction``.

        ``fast_hooks`` folds the per-instruction subsystem probes (stats
        timing, lineage tracing, reuse probing) into one precomputed flag,
        refreshed whenever a subsystem attaches or detaches — so the
        interpreter's hot loop pays a single attribute read instead of
        three, and trace compilation knows the hooks it must hoist.
        """
        self.fast_hooks = (
            self._stats is None and self._tracer is None and self._reuse is None
        )

    @property
    def stats(self):
        return self._stats

    @stats.setter
    def stats(self, value) -> None:
        self._stats = value
        self._refresh_hooks()

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        self._refresh_hooks()

    @property
    def reuse(self):
        return self._reuse

    @reuse.setter
    def reuse(self, value) -> None:
        self._reuse = value
        self._refresh_hooks()

    def spark(self):
        """The lazily created simulated Spark context (shared with children)."""
        if self._spark is None:
            from repro.distributed.rdd import SimSparkContext

            self._spark = SimSparkContext(
                self.config.parallelism, self.config.default_partitions,
                resilience=self.faults, transport=self.transport,
            )
        return self._spark

    # --- symbol table -------------------------------------------------------------

    def get(self, name: str):
        """The bound value of a variable (raises on unbound names)."""
        value = self.variables.get(name)
        if value is None:
            raise RuntimeDMLError(f"undefined variable: {name}")
        return value

    def get_or_none(self, name: str):
        """The bound value, or None when the variable is unbound."""
        return self.variables.get(name)

    def set(self, name: str, value) -> None:
        """Bind (or rebind) a variable in this frame."""
        self.variables[name] = value

    def remove(self, name: str) -> None:
        """Unbind a variable and drop its lineage binding."""
        self.variables.pop(name, None)
        if self.tracer is not None:
            self.tracer.remove(name)

    def has(self, name: str) -> bool:
        """True when the variable is bound in this frame."""
        return name in self.variables

    def cleanup_temps(self) -> None:
        """Drop instruction temps (``_t...``) after a basic block completes."""
        for name in [n for n in self.variables if n.startswith("_t")]:
            self.remove(name)

    def cleanup_nonlive(self, live: set) -> None:
        """Drop variables that are no longer live after a block."""
        for name in list(self.variables):
            if name.startswith("_t") or name not in live:
                self.remove(name)

    def close(self, keep=()) -> None:
        """Eagerly release every bound payload except the ``keep`` names.

        Serving hot paths run many short-lived contexts against one shared
        buffer pool; closing a context returns its intermediates to the pool
        immediately instead of waiting for garbage collection.  Caller-owned
        bindings (pinned model weights) are listed in ``keep``: they are
        unbound but their payloads stay alive.
        """
        protected = set(keep)
        for name in list(self.variables):
            value = self.variables.pop(name)
            if name in protected:
                continue
            release = getattr(value, "free", None)
            if release is not None:
                release()
        if self.tracer is not None:
            self.tracer.items.clear()

    # --- child frames ----------------------------------------------------------------

    def child(self) -> "ExecutionContext":
        """A function-call/parfor frame sharing all services."""
        tracer = None
        if self.tracer is not None:
            tracer = LineageTracer(dedup=self.tracer.dedup)
            tracer._interned = self.tracer._interned  # shared hash-consing
            tracer.stats = self.tracer.stats
        frame = ExecutionContext(
            self.program,
            self.config,
            pool=self.pool,
            tracer=tracer,
            reuse=self.reuse,
            print_handler=self.print_handler,
            metrics=self.metrics,
            stats=self.stats,
            faults=self.faults,
            traces=self.traces,
        )
        frame.prints = self.prints  # shared output stream
        frame._seed_state = self._next_seed_state()
        frame._spark = self._spark
        return frame

    # --- services -----------------------------------------------------------------------

    def emit_print(self, text: str) -> None:
        self.prints.append(text)
        if self.print_handler is not None:
            self.print_handler(text)
        else:
            print(text)

    def _next_seed_state(self) -> int:
        self._seed_state = (self._seed_state * 6364136223846793005 + 1442695040888963407) % (2**63)
        return self._seed_state

    def next_seed(self) -> int:
        """A deterministic per-context seed for unseeded data generators."""
        return self._next_seed_state() % (2**31)

    def collect(self, matrix: MatrixObject) -> BasicTensorBlock:
        """Collect a distributed/federated matrix into one local block."""
        self.metrics["collects"] += 1
        if matrix.rdd is not None:
            block = matrix.rdd.collect_local()
        elif matrix.federated is not None:
            from repro.federated.instructions import collect_federated

            channel = self.faults.channel if self.faults is not None else None
            block = collect_federated(matrix.federated, channel=channel)
        else:
            raise RuntimeDMLError("collect on a local matrix")
        self.metrics["bytes_collected"] += block.memory_size()
        return block

    # --- lineage hooks (no-ops when lineage is disabled) -----------------------------------

    def trace_datagen(self, name: str, instruction, seed: int) -> None:
        if self.tracer is not None:
            self.tracer.trace_datagen(name, instruction, seed)

    def trace_pread(self, name: str, path: str) -> None:
        if self.tracer is not None:
            self.tracer.trace_pread(name, path)
