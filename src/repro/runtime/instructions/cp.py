"""Local (control-program) instruction set.

These instructions execute on local tensor blocks via the kernel library in
:mod:`repro.tensor.ops`.  Inputs that arrived in a distributed or federated
representation are collected through the execution context (which accounts
the transfer) — the compiler avoids this where it matters by selecting
Spark/federated instructions instead.
"""

from __future__ import annotations

import math
import time as _time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DMLStopError, RuntimeDMLError
from repro.runtime.data import (
    FrameObject,
    ListObject,
    MatrixObject,
    ScalarObject,
)
from repro.runtime.instructions.base import Instruction, Operand
from repro.tensor import BasicTensorBlock, Frame
from repro.tensor import ops
from repro.types import DataType, Direction, ValueType


class AssignVarInstruction(Instruction):
    """Bind the value of one variable/temp to another name (by reference)."""

    def __init__(self, source: Operand, output: str):
        super().__init__("assignvar", [source], output)

    def execute(self, ctx) -> None:
        self.bind(ctx, self._resolve(self.inputs[0], ctx))


class RmVarInstruction(Instruction):
    """Remove variables from the symbol table and free their payloads."""

    def __init__(self, names: Sequence[str]):
        super().__init__("rmvar", [], None, {"names": list(names)})

    def execute(self, ctx) -> None:
        for name in self.params["names"]:
            ctx.remove(name)


# ---------------------------------------------------------------------------
# scalar arithmetic helpers
# ---------------------------------------------------------------------------

_SCALAR_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a ** b,
    "%%": lambda a, b: a % b,
    "%/%": lambda a, b: a // b,
    "min": min,
    "max": max,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&": lambda a, b: bool(a) and bool(b),
    "|": lambda a, b: bool(a) or bool(b),
    "xor": lambda a, b: bool(a) != bool(b),
    "log": lambda a, b: math.log(a) / math.log(b),
    "solve": None,  # matrix-only
}

_SCALAR_UNARY = {
    "uminus": lambda a: -a,
    "!": lambda a: not bool(a),
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "round": lambda a: float(round(a)),
    "floor": lambda a: float(math.floor(a)),
    "ceil": lambda a: float(math.ceil(a)),
    "sign": lambda a: float(np.sign(a)),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "sinh": math.sinh,
    "cosh": math.cosh,
    "tanh": math.tanh,
    "sigmoid": lambda a: 1.0 / (1.0 + math.exp(-a)),
}


def _scalar_binary(op: str, left: ScalarObject, right: ScalarObject) -> ScalarObject:
    if op == "+" and (left.value_type == ValueType.STRING or right.value_type == ValueType.STRING):
        return ScalarObject(left.as_string() + right.as_string())
    if op in ("==", "!=") and (
        left.value_type == ValueType.STRING or right.value_type == ValueType.STRING
    ):
        equal = left.as_string() == right.as_string()
        return ScalarObject(equal if op == "==" else not equal)
    func = _SCALAR_BINARY.get(op)
    if func is None:
        raise RuntimeDMLError(f"scalar operator {op!r} not supported")
    try:
        result = func(left.as_float(), right.as_float())
    except ZeroDivisionError:
        result = float("nan") if op == "/" else float("nan")
    if op in ("==", "!=", "<", "<=", ">", ">=", "&", "|", "xor"):
        return ScalarObject(bool(result))
    if (
        left.value_type in (ValueType.INT32, ValueType.INT64)
        and right.value_type in (ValueType.INT32, ValueType.INT64)
        and op in ("+", "-", "*", "%%", "%/%", "min", "max", "^")
    ):
        return ScalarObject(int(result))
    return ScalarObject(float(result))


class BinaryInstruction(Instruction):
    """Elementwise binary op dispatching on the runtime operand types."""

    def __init__(self, op: str, left: Operand, right: Operand, output: str):
        super().__init__(op, [left, right], output)

    def execute(self, ctx) -> None:
        left = self._resolve(self.inputs[0], ctx)
        right = self._resolve(self.inputs[1], ctx)
        if isinstance(left, ScalarObject) and isinstance(right, ScalarObject):
            self.bind_scalar(ctx, _scalar_binary(self.opcode, left, right))
            return
        if isinstance(left, MatrixObject) and left.federated is not None:
            self._execute_federated(ctx, left, right)
            return
        if self.opcode == "solve":
            a = self.block_in(0, ctx)
            b = self.block_in(1, ctx)
            self.bind_block(ctx, ops.solve(a, b))
            return
        if isinstance(left, MatrixObject) and isinstance(right, ScalarObject):
            block = left.acquire_local(ctx.collect)
            result = ops.binary_scalar(self.opcode, block, right.as_float())
        elif isinstance(left, ScalarObject) and isinstance(right, MatrixObject):
            block = right.acquire_local(ctx.collect)
            result = ops.binary_scalar(self.opcode, block, left.as_float(), scalar_left=True)
        else:
            a = self.block_in(0, ctx)
            b = self.block_in(1, ctx)
            result = ops.binary_op(self.opcode, a, b)
        self.bind_block(ctx, result)

    def _execute_federated(self, ctx, left: MatrixObject, right) -> None:
        """Push the elementwise op to the federated sites."""
        from repro.federated import instructions as fed_ops

        channel = fed_ops.channel_of(ctx)
        if isinstance(right, ScalarObject):
            result = fed_ops.fed_elementwise_scalar(
                self.opcode, left.federated, right.as_float(), channel=channel
            )
        elif isinstance(right, MatrixObject) and right.federated is None:
            result = fed_ops.fed_binary_rowsliced(
                self.opcode, left.federated, right.acquire_local(ctx.collect),
                channel=channel,
            )
        else:
            # federated op federated: collect the right side (checked)
            result = fed_ops.fed_binary_rowsliced(
                self.opcode, left.federated, self.block_in(1, ctx),
                channel=channel,
            )
        ctx.set(self.output, MatrixObject.from_federated(result))


class UnaryInstruction(Instruction):
    """Elementwise unary, cast, or metadata operation."""

    def __init__(self, op: str, operand: Operand, output: str):
        super().__init__(op, [operand], output)

    def execute(self, ctx) -> None:
        op = self.opcode
        value = self._resolve(self.inputs[0], ctx)
        if op in ("nrow", "ncol", "length", "nnz"):
            self._metadata(ctx, value)
            return
        if op.startswith("cast_as_"):
            self._cast(ctx, value)
            return
        if isinstance(value, ScalarObject):
            func = _SCALAR_UNARY.get(op)
            if func is None:
                raise RuntimeDMLError(f"scalar unary {op!r} not supported")
            result = func(value.as_float())
            if op == "!":
                self.bind_scalar(ctx, bool(result))
            else:
                self.bind_scalar(ctx, float(result))
            return
        block = self.block_in(0, ctx)
        if op == "inv":
            self.bind_block(ctx, ops.inverse(block))
        elif op == "cholesky":
            self.bind_block(ctx, ops.cholesky(block))
        else:
            self.bind_block(ctx, ops.unary_op(op, block))

    def _metadata(self, ctx, value) -> None:
        if isinstance(value, MatrixObject):
            rows, cols = value.num_rows, value.num_cols
        elif isinstance(value, FrameObject):
            rows, cols = value.num_rows, value.num_cols
        elif isinstance(value, ListObject):
            rows, cols = len(value), 1
        elif isinstance(value, ScalarObject):
            rows = cols = 1
        else:
            raise RuntimeDMLError(f"{self.opcode} on {type(value).__name__}")
        if self.opcode == "nrow":
            self.bind_scalar(ctx, int(rows))
        elif self.opcode == "ncol":
            self.bind_scalar(ctx, int(cols))
        elif self.opcode == "length":
            self.bind_scalar(ctx, int(rows * cols))
        else:  # nnz
            if isinstance(value, MatrixObject):
                block = value.acquire_local(ctx.collect)
                self.bind_scalar(ctx, int(block.nnz))
            else:
                self.bind_scalar(ctx, int(rows * cols))

    def _cast(self, ctx, value) -> None:
        op = self.opcode
        if op == "cast_as_scalar":
            if isinstance(value, ScalarObject):
                self.bind_scalar(ctx, value)
            elif isinstance(value, MatrixObject):
                block = value.acquire_local(ctx.collect)
                self.bind_scalar(ctx, block.as_scalar())
            else:
                raise RuntimeDMLError("as.scalar on non-scalar, non-matrix value")
        elif op == "cast_as_matrix":
            if isinstance(value, ScalarObject):
                self.bind_block(ctx, BasicTensorBlock.scalar(value.as_float()))
            elif isinstance(value, FrameObject):
                self.bind_block(ctx, value.frame.to_matrix())
            else:
                self.bind(ctx, value)
        elif op == "cast_as_frame":
            if isinstance(value, MatrixObject):
                self.bind_frame(ctx, Frame.from_matrix(value.acquire_local(ctx.collect)))
            else:
                self.bind(ctx, value)
        elif op == "cast_as_double":
            self.bind_scalar(ctx, self.scalar_in(0, ctx).as_float())
        elif op == "cast_as_integer":
            self.bind_scalar(ctx, self.scalar_in(0, ctx).as_int())
        elif op == "cast_as_boolean":
            self.bind_scalar(ctx, self.scalar_in(0, ctx).as_bool())
        else:
            raise RuntimeDMLError(f"unknown cast {op!r}")


class FusedCellInstruction(Instruction):
    """One code-generated elementwise region executed without intermediates.

    Produced by the cell-template fusion planner
    (:mod:`repro.compiler.codegen`); the generated source is kept in
    ``params`` for explain/debugging.
    """

    def __init__(self, region, inputs: Sequence[Operand], output: str):
        super().__init__("fused", inputs, output,
                         {"signature": region.signature, "source": region.source})
        self._func = region.func

    def execute(self, ctx) -> None:
        args = []
        for index, operand in enumerate(self.inputs):
            value = self._resolve(operand, ctx)
            if isinstance(value, ScalarObject):
                args.append(value.as_float())
            else:
                args.append(self.block_in(index, ctx).to_numpy())
        result = self._func(*args)
        self.bind_block(ctx, BasicTensorBlock.from_numpy(np.atleast_2d(result)))


class AggregateUnaryInstruction(Instruction):
    """Full/row/column aggregates and cumulative aggregates."""

    def __init__(self, op: str, direction: Direction, operand: Operand, output: str):
        super().__init__(op, [operand], output, {"direction": direction})

    def execute(self, ctx) -> None:
        op = self.opcode
        direction: Direction = self.params["direction"]
        value = self._resolve(self.inputs[0], ctx)
        if isinstance(value, ScalarObject) and direction == Direction.FULL:
            if op in ("sum", "mean", "min", "max", "prod"):
                self.bind_scalar(ctx, value.as_float())
                return
            if op in ("var", "sd"):
                raise RuntimeDMLError(f"{op} of a scalar is undefined")
        if isinstance(value, MatrixObject) and not value.is_local and op == "sum" \
                and direction == Direction.FULL and value.rdd is not None:
            from repro.distributed import dist_ops

            self.bind_scalar(ctx, dist_ops.aggregate_sum(value.rdd))
            return
        if isinstance(value, MatrixObject) and value.federated is not None \
                and op in ("sum", "mean", "min", "max"):
            from repro.federated import instructions as fed_ops

            result = fed_ops.fed_aggregate(
                op, value.federated, direction, channel=fed_ops.channel_of(ctx)
            )
            if direction == Direction.FULL:
                self.bind_scalar(ctx, float(result))
            else:
                self.bind_block(ctx, result)
            return
        block = self.block_in(0, ctx)
        if op == "trace":
            self.bind_scalar(ctx, ops.trace(block))
        elif op.startswith("cum"):
            self.bind_block(ctx, ops.cumulative_op(op, block))
        elif op in ("rowIndexMax", "rowIndexMin"):
            self.bind_block(ctx, ops.row_index_extreme(block, use_max=op == "rowIndexMax"))
        else:
            result = ops.aggregate(op, block, direction)
            if direction == Direction.FULL:
                self.bind_scalar(ctx, float(result))
            else:
                self.bind_block(ctx, result)


class MatMultInstruction(Instruction):
    """Matrix multiply with physical variants: mm, tsmm (t(X)X), tmm (t(X)Y)."""

    reusable = True

    def __init__(self, physical: str, inputs: Sequence[Operand], output: str):
        super().__init__(physical, inputs, output)

    def execute(self, ctx) -> None:
        cfg = ctx.config
        left_obj = self._resolve(self.inputs[0], ctx)
        if isinstance(left_obj, MatrixObject) and left_obj.federated is not None:
            self._execute_federated(ctx, left_obj)
            return
        if self.opcode == "tsmm":
            block = self.block_in(0, ctx)
            result = ops.tsmm(block, cfg.native_blas, cfg.matmult_tile)
        elif self.opcode == "tmm":
            left = self.block_in(0, ctx)
            right = self.block_in(1, ctx)
            result = ops.mapmm_transpose_left(left, right, cfg.native_blas, cfg.matmult_tile)
        else:
            left = self.block_in(0, ctx)
            right = self.block_in(1, ctx)
            result = ops.matmult(left, right, cfg.native_blas, cfg.matmult_tile)
        self.bind_block(ctx, result)

    def _execute_federated(self, ctx, left_obj: MatrixObject) -> None:
        """Federated matmult variants: push-down with aggregate collection."""
        from repro.federated import instructions as fed_ops

        fed = left_obj.federated
        channel = fed_ops.channel_of(ctx)
        if self.opcode == "tsmm":
            self.bind_block(ctx, fed_ops.fed_tsmm(fed, channel=channel))
            return
        if self.opcode == "tmm":
            right = self.block_in(1, ctx)
            self.bind_block(ctx, fed_ops.fed_tmm(fed, right, channel=channel))
            return
        right = self.block_in(1, ctx)
        result = fed_ops.fed_matmult(fed, right, channel=channel)
        ctx.set(self.output, MatrixObject.from_federated(result))


class ReorgInstruction(Instruction):
    """Transpose, reverse, diag, reshape."""

    def __init__(self, op: str, inputs: Sequence[Operand], output: str):
        super().__init__(op, inputs, output)

    def execute(self, ctx) -> None:
        block = self.block_in(0, ctx)
        if self.opcode == "t":
            self.bind_block(ctx, ops.transpose(block))
        elif self.opcode == "rev":
            self.bind_block(ctx, ops.rev(block))
        elif self.opcode == "rdiag":
            self.bind_block(ctx, ops.diag(block))
        elif self.opcode == "reshape":
            rows = self.scalar_in(1, ctx).as_int()
            cols = self.scalar_in(2, ctx).as_int()
            byrow = self.scalar_in(3, ctx).as_bool() if len(self.inputs) > 3 else True
            source = self._resolve(self.inputs[0], ctx)
            if isinstance(source, ScalarObject):
                # matrix(s, rows, cols) over a scalar variable: a fill, not
                # a reshape (the builder cannot see the type statically)
                self.bind_block(
                    ctx, BasicTensorBlock.full((rows, cols), source.as_float())
                )
            else:
                self.bind_block(ctx, ops.reshape(block, rows, cols, byrow))
        else:
            raise RuntimeDMLError(f"unknown reorg {self.opcode!r}")


class IndexingInstruction(Instruction):
    """Right indexing with 1-based inclusive bounds; also list element access."""

    def __init__(self, inputs: Sequence[Operand], output: str):
        super().__init__("rix", inputs, output)

    def execute(self, ctx) -> None:
        value = self._resolve(self.inputs[0], ctx)
        if isinstance(value, ListObject):
            index = self.scalar_in(1, ctx)
            key = index.value if index.value_type == ValueType.STRING else index.as_int()
            self.bind(ctx, value.get(key))
            return
        rl = self.scalar_in(1, ctx).as_int()
        ru = self.scalar_in(2, ctx).as_int()
        cl = self.scalar_in(3, ctx).as_int()
        cu = self.scalar_in(4, ctx).as_int()
        if isinstance(value, FrameObject):
            frame = value.frame.slice_rows(rl - 1, ru).select_columns(list(range(cl - 1, cu)))
            self.bind_frame(ctx, frame)
            return
        block = self.block_in(0, ctx)
        result = ops.right_index(block, [(rl - 1, ru), (cl - 1, cu)])
        self.bind_block(ctx, result)


class LeftIndexingInstruction(Instruction):
    """Left indexing producing a new matrix version (copy on write)."""

    def __init__(self, inputs: Sequence[Operand], output: str):
        super().__init__("lix", inputs, output)

    def execute(self, ctx) -> None:
        target = self.block_in(0, ctx)
        source = self._resolve(self.inputs[1], ctx)
        rl = self.scalar_in(2, ctx).as_int()
        ru = self.scalar_in(3, ctx).as_int()
        cl = self.scalar_in(4, ctx).as_int()
        cu = self.scalar_in(5, ctx).as_int()
        ranges = [(rl - 1, ru), (cl - 1, cu)]
        if isinstance(source, ScalarObject):
            result = ops.left_index_scalar(target, source.as_float(), ranges)
        else:
            block = self.block_in(1, ctx)
            result = ops.left_index(target, block, ranges)
        self.bind_block(ctx, result)


class TernaryInstruction(Instruction):
    def __init__(self, op: str, inputs: Sequence[Operand], output: str):
        super().__init__(op, inputs, output)

    def execute(self, ctx) -> None:
        if self.opcode == "ifelse":
            cond = self._resolve(self.inputs[0], ctx)
            then_val = self._resolve(self.inputs[1], ctx)
            else_val = self._resolve(self.inputs[2], ctx)
            if isinstance(cond, ScalarObject):
                chosen = then_val if cond.as_bool() else else_val
                if isinstance(chosen, ScalarObject):
                    self.bind_scalar(ctx, chosen)
                else:
                    self.bind(ctx, chosen)
                return
            cond_block = self.block_in(0, ctx)
            then_arg = then_val.as_float() if isinstance(then_val, ScalarObject) else self.block_in(1, ctx)
            else_arg = else_val.as_float() if isinstance(else_val, ScalarObject) else self.block_in(2, ctx)
            self.bind_block(ctx, ops.ternary_ifelse(cond_block, then_arg, else_arg))
        elif self.opcode == "table":
            rows = self.block_in(0, ctx)
            cols = self.block_in(1, ctx)
            weights = None
            dims = []
            for index in range(2, len(self.inputs)):
                value = self._resolve(self.inputs[index], ctx)
                if isinstance(value, ScalarObject):
                    dims.append(value.as_int())
                else:
                    weights = self.block_in(index, ctx)
            out_rows = dims[0] if dims else None
            out_cols = dims[1] if len(dims) > 1 else None
            self.bind_block(ctx, ops.table(rows, cols, weights, out_rows, out_cols))
        elif self.opcode == "quantile":
            data = self.block_in(0, ctx)
            probs = self._resolve(self.inputs[1], ctx)
            if isinstance(probs, ScalarObject):
                prob_block = BasicTensorBlock.scalar(probs.as_float())
                result = ops.quantile(data, prob_block)
                self.bind_scalar(ctx, result.to_numpy()[0, 0])
            else:
                self.bind_block(ctx, ops.quantile(data, self.block_in(1, ctx)))
        else:
            raise RuntimeDMLError(f"unknown ternary {self.opcode!r}")


class NaryInstruction(Instruction):
    def __init__(self, op: str, inputs: Sequence[Operand], output: str):
        super().__init__(op, inputs, output)

    def execute(self, ctx) -> None:
        if self.opcode == "list":
            items = [self._resolve(op, ctx) for op in self.inputs]
            self.bind_list(ctx, items)
            return
        if self.opcode == "eval":
            self._execute_eval(ctx)
            return
        values = [self._resolve(op, ctx) for op in self.inputs]
        if all(isinstance(v, FrameObject) for v in values):
            frames = [v.frame for v in values]
            combined = frames[0]
            for frame in frames[1:]:
                combined = combined.cbind(frame) if self.opcode == "cbind" else combined.rbind(frame)
            self.bind_frame(ctx, combined)
            return
        blocks = [self.block_in(i, ctx) for i in range(len(self.inputs))]
        if self.opcode == "cbind":
            self.bind_block(ctx, ops.cbind(blocks))
        elif self.opcode == "rbind":
            self.bind_block(ctx, ops.rbind(blocks))
        else:
            raise RuntimeDMLError(f"unknown nary {self.opcode!r}")

    def _execute_eval(self, ctx) -> None:
        """Second-order call: eval("fname", args...) -> first output."""
        from repro.runtime.interpreter import call_function

        func_name = self.scalar_in(0, ctx).as_string()
        args = [self._resolve(operand, ctx) for operand in self.inputs[1:]]
        arg_items = None
        if ctx.tracer is not None:
            arg_items = [ctx.tracer.operand_item(op) for op in self.inputs[1:]]
        results, items = call_function(
            ctx, func_name, args, [None] * len(args), arg_items
        )
        self.bind(ctx, results[0])
        if ctx.tracer is not None and items and items[0] is not None:
            ctx.tracer.items[self.output] = items[0]


class DataGenInstruction(Instruction):
    """rand/fill/seq/sample data generators."""

    def __init__(self, method: str, param_operands: Dict[str, Operand], output: str):
        super().__init__(f"datagen_{method}", list(param_operands.values()), output,
                         {"method": method, "names": list(param_operands.keys())})

    def _named(self, ctx) -> Dict[str, ScalarObject]:
        values = {}
        for name, operand in zip(self.params["names"], self.inputs):
            resolved = self._resolve(operand, ctx)
            if not isinstance(resolved, ScalarObject):
                raise RuntimeDMLError(f"datagen parameter {name!r} must be scalar")
            values[name] = resolved
        return values

    def execute(self, ctx) -> None:
        method = self.params["method"]
        named = self._named(ctx)
        if method == "rand":
            seed = named["seed"].as_int() if "seed" in named else -1
            if seed < 0:
                seed = ctx.next_seed()
            block = BasicTensorBlock.rand(
                (named["rows"].as_int(), named["cols"].as_int()),
                min_value=named["min"].as_float() if "min" in named else 0.0,
                max_value=named["max"].as_float() if "max" in named else 1.0,
                sparsity=named["sparsity"].as_float() if "sparsity" in named else 1.0,
                seed=seed,
                pdf=named["pdf"].as_string() if "pdf" in named else "uniform",
            )
            ctx.trace_datagen(self.output, self, seed)
            self.bind_block(ctx, block)
        elif method == "fill":
            block = BasicTensorBlock.full(
                (named["rows"].as_int(), named["cols"].as_int()), named["value"].as_float()
            )
            self.bind_block(ctx, block)
        elif method == "seq":
            step = named["incr"].as_float() if "incr" in named else None
            start = named["from"].as_float()
            stop = named["to"].as_float()
            if step is None:
                step = 1.0 if stop >= start else -1.0
            self.bind_block(ctx, ops.seq(start, stop, step))
        elif method == "sample":
            seed = named["seed"].as_int() if "seed" in named else ctx.next_seed()
            block = ops.sample(
                named["range"].as_int(),
                named["size"].as_int(),
                replace_draws=named["replace"].as_bool() if "replace" in named else False,
                seed=seed,
            )
            ctx.trace_datagen(self.output, self, seed)
            self.bind_block(ctx, block)
        else:
            raise RuntimeDMLError(f"unknown datagen {method!r}")


class ReadInstruction(Instruction):
    """Persistent read of a matrix or frame from the filesystem."""

    def __init__(self, inputs: Sequence[Operand], output: str, params: dict):
        super().__init__("pread", inputs, output, params)

    def execute(self, ctx) -> None:
        from repro.io import readers

        path = self.scalar_in(0, ctx).as_string()
        named = {
            name: self._resolve(operand, ctx)
            for name, operand in zip(self.params.get("names", []), self.inputs[1:])
        }
        result = readers.read_any(path, named, ctx.config)
        if ctx.stats is not None:
            ctx.stats.count("persistent_reads")
            ctx.stats.count("bytes_read", int(result.memory_size()))
        if isinstance(result, Frame):
            self.bind_frame(ctx, result)
        else:
            self.bind_block(ctx, result)
        ctx.trace_pread(self.output, path)


class WriteInstruction(Instruction):
    """Persistent write of a matrix/frame/scalar to the filesystem."""

    def __init__(self, inputs: Sequence[Operand], params: dict):
        super().__init__("pwrite", inputs, None, params)

    def execute(self, ctx) -> None:
        from repro.io import writers

        value = self._resolve(self.inputs[0], ctx)
        path = self.scalar_in(1, ctx).as_string()
        named = {
            name: self._resolve(operand, ctx)
            for name, operand in zip(self.params.get("names", []), self.inputs[2:])
        }
        if isinstance(value, MatrixObject):
            writers.write_matrix(value.acquire_local(ctx.collect), path, named)
        elif isinstance(value, FrameObject):
            writers.write_frame(value.frame, path, named)
        elif isinstance(value, ScalarObject):
            writers.write_scalar(value.value, path, named)
        else:
            raise RuntimeDMLError(f"cannot write {type(value).__name__}")


class PrintInstruction(Instruction):
    def __init__(self, operand: Operand):
        super().__init__("print", [operand], None)

    def execute(self, ctx) -> None:
        value = self._resolve(self.inputs[0], ctx)
        if isinstance(value, ScalarObject):
            text = value.as_string()
        elif isinstance(value, MatrixObject):
            text = _format_block(value.acquire_local(ctx.collect))
        elif isinstance(value, FrameObject):
            text = repr(value.frame)
        else:
            text = repr(value)
        ctx.emit_print(text)


class StopInstruction(Instruction):
    def __init__(self, operand: Operand):
        super().__init__("stop", [operand], None)

    def execute(self, ctx) -> None:
        message = self.scalar_in(0, ctx).as_string()
        raise DMLStopError(message)


class AssertInstruction(Instruction):
    def __init__(self, operand: Operand):
        super().__init__("assert", [operand], None)

    def execute(self, ctx) -> None:
        condition = self.scalar_in(0, ctx)
        if not condition.as_bool():
            raise DMLStopError("assertion failed")


class DiscardInstruction(Instruction):
    """Evaluate an expression for effect and drop the result."""

    def __init__(self, operand: Operand):
        super().__init__("discard", [operand], None)

    def execute(self, ctx) -> None:
        self._resolve(self.inputs[0], ctx)


def _format_block(block: BasicTensorBlock, max_rows: int = 20, max_cols: int = 12) -> str:
    data = block.to_numpy()
    if data.ndim == 2 and (data.shape[0] > max_rows or data.shape[1] > max_cols):
        data = data[:max_rows, :max_cols]
    lines = [" ".join(f"{v:.6g}" if isinstance(v, (int, float, np.floating)) else str(v)
                      for v in row) for row in np.atleast_2d(data)]
    return "\n".join(lines)


class FunctionCallInstruction(Instruction):
    """Call a compiled DML function: bind args, run its blocks, bind outputs."""

    def __init__(self, func_name: str, inputs: Sequence[Operand],
                 arg_names: Sequence[Optional[str]], outputs: Sequence[str]):
        super().__init__("fcall", inputs, None,
                         {"func": func_name, "arg_names": list(arg_names),
                          "outputs": list(outputs)})

    def output_names(self) -> List[str]:
        return list(self.params["outputs"])

    def execute(self, ctx) -> None:
        from repro.runtime.interpreter import call_function

        args = [self._resolve(operand, ctx) for operand in self.inputs]
        arg_items = None
        if ctx.tracer is not None:
            arg_items = [ctx.tracer.operand_item(operand) for operand in self.inputs]
        if ctx.stats is not None:
            # nested scope: recursive calls stack as fcall:f/fcall:g
            with ctx.stats.time(f"fcall:{self.params['func']}"):
                results, items = call_function(
                    ctx, self.params["func"], args, self.params["arg_names"], arg_items
                )
        else:
            results, items = call_function(
                ctx, self.params["func"], args, self.params["arg_names"], arg_items
            )
        for name, value, item in zip(self.params["outputs"], results, items):
            ctx.set(name, value)
            if ctx.tracer is not None and item is not None:
                ctx.tracer.items[name] = item


class MultiReturnBuiltinInstruction(Instruction):
    """eigen / svd / transformencode with multiple outputs."""

    def __init__(self, op: str, inputs: Sequence[Operand], outputs: Sequence[str]):
        super().__init__(op, inputs, None, {"outputs": list(outputs)})

    def output_names(self) -> List[str]:
        return list(self.params["outputs"])

    def execute(self, ctx) -> None:
        outputs = self.params["outputs"]
        if self.opcode == "eigen":
            values, vectors = ops.eigen(self.block_in(0, ctx))
            ctx.set(outputs[0], MatrixObject.from_block(values, ctx.pool))
            ctx.set(outputs[1], MatrixObject.from_block(vectors, ctx.pool))
        elif self.opcode == "svd":
            u, s, v = ops.svd(self.block_in(0, ctx))
            for name, block in zip(outputs, (u, s, v)):
                ctx.set(name, MatrixObject.from_block(block, ctx.pool))
        elif self.opcode == "transformencode":
            from repro.prep.transform import transform_encode

            frame = self.frame_in(0, ctx)
            spec = self.scalar_in(1, ctx).as_string()
            matrix, meta = transform_encode(frame, spec)
            ctx.set(outputs[0], MatrixObject.from_block(matrix, ctx.pool))
            ctx.set(outputs[1], FrameObject(meta))
        else:
            raise RuntimeDMLError(f"unknown multi-return builtin {self.opcode!r}")


class ParamBuiltinInstruction(Instruction):
    """Parameterised builtins: removeEmpty, replace, order, outer, ..."""

    def __init__(self, op: str, param_operands: Dict[str, Operand], output: str):
        super().__init__(op, list(param_operands.values()), output,
                         {"names": list(param_operands.keys())})

    def _operand(self, name: str) -> Optional[int]:
        try:
            return self.params["names"].index(name)
        except ValueError:
            return None

    def _param(self, name: str, ctx, default=None):
        index = self._operand(name)
        if index is None:
            return default
        return self._resolve(self.inputs[index], ctx)

    def execute(self, ctx) -> None:
        op = self.opcode
        if op == "removeEmpty":
            target = self._block_param("target", ctx)
            margin = self._scalar_param("margin", ctx, "rows").as_string()
            select_obj = self._param("select", ctx)
            select = None
            if isinstance(select_obj, MatrixObject):
                select = select_obj.acquire_local(ctx.collect)
            self.bind_block(ctx, ops.remove_empty(target, margin, select))
        elif op == "replace":
            target = self._block_param("target", ctx)
            pattern = self._scalar_param("pattern", ctx).as_float()
            replacement = self._scalar_param("replacement", ctx).as_float()
            self.bind_block(ctx, ops.replace(target, pattern, replacement))
        elif op == "order":
            target = self._block_param("target", ctx)
            by = self._scalar_param("by", ctx, 1).as_int()
            decreasing = self._scalar_param("decreasing", ctx, False).as_bool()
            index_return = self._scalar_param("index.return", ctx, False).as_bool()
            self.bind_block(ctx, ops.order(target, by, decreasing, index_return))
        elif op == "outer":
            u = self._block_param("u", ctx)
            v = self._block_param("v", ctx)
            operator = self._scalar_param("op", ctx, "*").as_string()
            self.bind_block(ctx, ops.outer(u, v, operator))
        elif op in ("lowertri", "uppertri"):
            target = self._block_param("target", ctx)
            include_diag = self._scalar_param("diag", ctx, False).as_bool()
            data = target.to_numpy()
            k = 0 if include_diag else (-1 if op == "lowertri" else 1)
            masked = np.tril(data, k) if op == "lowertri" else np.triu(data, k)
            self.bind_block(ctx, BasicTensorBlock.from_numpy(masked))
        elif op == "toString":
            target = self._param("target", ctx)
            if isinstance(target, MatrixObject):
                self.bind_scalar(ctx, _format_block(target.acquire_local(ctx.collect)))
            elif isinstance(target, ScalarObject):
                self.bind_scalar(ctx, target.as_string())
            else:
                self.bind_scalar(ctx, repr(target))
        elif op == "time":
            self.bind_scalar(ctx, float(_time.time_ns()))
        elif op == "lineage":
            if ctx.tracer is None:
                self.bind_scalar(ctx, "lineage tracing is disabled")
            else:
                index = self._operand("target")
                item = ctx.tracer.operand_item(self.inputs[index])
                self.bind_scalar(ctx, item.explain())
        elif op == "transformapply":
            from repro.prep.transform import transform_apply

            frame = self._frame_param("target", ctx)
            meta = self._frame_param("meta", ctx)
            spec = self._scalar_param("spec", ctx, "").as_string()
            self.bind_block(ctx, transform_apply(frame, meta, spec))
        elif op == "detectSchema":
            from repro.prep.schema import detect_schema

            frame = self._frame_param("target", ctx)
            self.bind_frame(ctx, detect_schema(frame))
        elif op == "federated":
            self._federated(ctx)
        elif op == "paramserv":
            from repro.runtime.paramserv import run_paramserv

            named = {
                name: self._resolve(operand, ctx)
                for name, operand in zip(self.params["names"], self.inputs)
            }
            result = run_paramserv(ctx, named)
            self.bind(ctx, result)
        else:
            raise RuntimeDMLError(f"unknown parameterised builtin {op!r}")

    def _federated(self, ctx) -> None:
        from repro.federated.tensor import build_federated_matrix

        addresses = self._param("addresses", ctx)
        ranges = self._param("ranges", ctx)
        federated = build_federated_matrix(ctx, addresses, ranges)
        self.bind(ctx, MatrixObject.from_federated(federated))

    def _block_param(self, name: str, ctx) -> BasicTensorBlock:
        value = self._param(name, ctx)
        if isinstance(value, MatrixObject):
            return value.acquire_local(ctx.collect)
        if isinstance(value, ScalarObject):
            return BasicTensorBlock.scalar(value.as_float())
        raise RuntimeDMLError(f"{self.opcode}: parameter {name!r} must be a matrix")

    def _scalar_param(self, name: str, ctx, default=None) -> ScalarObject:
        value = self._param(name, ctx)
        if value is None:
            if default is None:
                raise RuntimeDMLError(f"{self.opcode}: missing parameter {name!r}")
            return ScalarObject(default)
        if isinstance(value, ScalarObject):
            return value
        if isinstance(value, MatrixObject):
            return ScalarObject(value.acquire_local(ctx.collect).as_scalar())
        raise RuntimeDMLError(f"{self.opcode}: parameter {name!r} must be scalar")

    def _frame_param(self, name: str, ctx) -> Frame:
        value = self._param(name, ctx)
        if isinstance(value, FrameObject):
            return value.frame
        if isinstance(value, MatrixObject):
            return Frame.from_matrix(value.acquire_local(ctx.collect))
        raise RuntimeDMLError(f"{self.opcode}: parameter {name!r} must be a frame")
