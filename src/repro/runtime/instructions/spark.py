"""Distributed (Spark-like) instruction set.

Selected by the compiler when an operator's memory estimate exceeds the
configured budget (paper section 2.3(2)).  Inputs that are still local are
"parallelized" into blocked tensors on first use; outputs stay distributed
(as ``MatrixObject.from_blocked``) unless the result is inherently small
(full aggregates, TSMM over tall-skinny inputs), in which case it comes
back local immediately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.distributed import dist_ops
from repro.distributed.blocked import BlockedTensor, block_sizes_for
from repro.errors import RuntimeDMLError
from repro.runtime.data import MatrixObject, ScalarObject
from repro.runtime.instructions.base import Instruction, Operand
from repro.types import Direction, ExecType


class SparkInstruction(Instruction):
    exec_type = ExecType.SPARK

    def blocked_in(self, index: int, ctx) -> BlockedTensor:
        """Input as a blocked tensor (parallelizing local payloads)."""
        matrix = self.matrix_in(index, ctx)
        if matrix.rdd is not None:
            return matrix.rdd
        block = matrix.acquire_local(ctx.collect)
        sizes = block_sizes_for(block.ndim, ctx.config.block_size)
        blocked = BlockedTensor.from_local(block, ctx.spark(), sizes)
        matrix.rdd = blocked  # remember the distributed view
        if ctx.stats is not None:
            ctx.stats.count("sp_parallelize")
            ctx.stats.count("sp_parallelize_bytes", int(block.memory_size()))
        return blocked

    def bind_blocked(self, ctx, blocked: BlockedTensor) -> None:
        ctx.set(self.output, MatrixObject.from_blocked(blocked))


class BinarySPInstruction(SparkInstruction):
    """Elementwise binary over aligned blocked tensors (or scalar map)."""

    def __init__(self, op: str, left: Operand, right: Operand, output: str):
        super().__init__(op, [left, right], output)

    def execute(self, ctx) -> None:
        left = self._resolve(self.inputs[0], ctx)
        right = self._resolve(self.inputs[1], ctx)
        if isinstance(left, ScalarObject) and isinstance(right, ScalarObject):
            raise RuntimeDMLError("scalar-scalar op selected for Spark backend")
        if isinstance(right, ScalarObject):
            blocked = self.blocked_in(0, ctx)
            result = dist_ops.elementwise_scalar(self.opcode, blocked, right.as_float())
        elif isinstance(left, ScalarObject):
            blocked = self.blocked_in(1, ctx)
            result = dist_ops.elementwise_scalar(
                self.opcode, blocked, left.as_float(), scalar_left=True
            )
        else:
            a = self.blocked_in(0, ctx)
            b = self.blocked_in(1, ctx)
            if a.shape != b.shape:
                # broadcasting across blocks: fall back through local kernels
                from repro.tensor import ops as local_ops

                result_block = local_ops.binary_op(
                    self.opcode, a.collect_local(), b.collect_local()
                )
                if ctx.stats is not None:
                    ctx.stats.count("sp_local_fallbacks")
                self.bind_block(ctx, result_block)
                return
            if a.block_sizes != b.block_sizes:
                b = b.reblock(a.block_sizes)
            result = dist_ops.elementwise(self.opcode, a, b)
        self.bind_blocked(ctx, result)


class AggSPInstruction(SparkInstruction):
    def __init__(self, op: str, direction: Direction, operand: Operand, output: str):
        super().__init__(op, [operand], output, {"direction": direction})

    def execute(self, ctx) -> None:
        blocked = self.blocked_in(0, ctx)
        direction: Direction = self.params["direction"]
        result = dist_ops.aggregate(self.opcode, blocked, direction)
        if direction == Direction.FULL:
            self.bind_scalar(ctx, float(result))
        else:
            self.bind_block(ctx, result)


class ReorgSPInstruction(SparkInstruction):
    def __init__(self, op: str, operand: Operand, output: str):
        super().__init__(op, [operand], output)

    def execute(self, ctx) -> None:
        if self.opcode != "t":
            raise RuntimeDMLError(f"unsupported distributed reorg {self.opcode!r}")
        self.bind_blocked(ctx, dist_ops.transpose(self.blocked_in(0, ctx)))


class MatMultSPInstruction(SparkInstruction):
    """Distributed matmult: tsmm/tmm fused forms, mapmm broadcast, or cpmm."""

    reusable = True

    #: Right-hand sides smaller than this stay local and are broadcast.
    BROADCAST_THRESHOLD = 64 * 1024 * 1024

    def __init__(self, physical: str, inputs: Sequence[Operand], output: str):
        super().__init__(physical, inputs, output)

    def execute(self, ctx) -> None:
        if self.opcode == "tsmm":
            blocked = self.blocked_in(0, ctx)
            self.bind_block(ctx, dist_ops.tsmm(blocked))
            return
        if self.opcode == "tmm":
            a = self.blocked_in(0, ctx)
            b = self.blocked_in(1, ctx)
            if a.block_sizes[0] != b.block_sizes[0]:
                b = b.reblock((a.block_sizes[0], b.block_sizes[1]))
            self.bind_block(ctx, dist_ops.tmm(a, b))
            return
        left = self.matrix_in(0, ctx)
        right = self.matrix_in(1, ctx)
        right_size = right.memory_size()
        if right.is_local and right_size <= self.BROADCAST_THRESHOLD:
            blocked = self.blocked_in(0, ctx)
            result = dist_ops.mapmm(blocked, right.acquire_local(ctx.collect),
                                    ctx.config.native_blas)
            if ctx.stats is not None:
                ctx.stats.count("sp_broadcast_mapmm")
                ctx.stats.count("sp_broadcast_bytes", int(right_size))
            self.bind_blocked(ctx, result)
            return
        a = self.blocked_in(0, ctx)
        b = self.blocked_in(1, ctx)
        if a.block_sizes[1] != b.block_sizes[0]:
            b = b.reblock((a.block_sizes[1], b.block_sizes[1]))
        self.bind_blocked(ctx, dist_ops.cpmm(a, b))


class RandSPInstruction(SparkInstruction):
    def __init__(self, param_operands: Dict[str, Operand], output: str):
        super().__init__("datagen_rand", list(param_operands.values()), output,
                         {"names": list(param_operands.keys()), "method": "rand"})

    def execute(self, ctx) -> None:
        named = {}
        for name, operand in zip(self.params["names"], self.inputs):
            value = self._resolve(operand, ctx)
            if not isinstance(value, ScalarObject):
                raise RuntimeDMLError("rand parameters must be scalars")
            named[name] = value
        seed = named["seed"].as_int() if "seed" in named else ctx.next_seed()
        sizes = block_sizes_for(2, ctx.config.block_size)
        blocked = dist_ops.rand(
            ctx.spark(),
            named["rows"].as_int(),
            named["cols"].as_int(),
            sizes,
            min_value=named["min"].as_float() if "min" in named else 0.0,
            max_value=named["max"].as_float() if "max" in named else 1.0,
            sparsity=named["sparsity"].as_float() if "sparsity" in named else 1.0,
            seed=seed,
        )
        ctx.trace_datagen(self.output, self, seed)
        self.bind_blocked(ctx, blocked)


def create(kind: str, *args) -> Optional[Instruction]:
    """Factory used by instruction generation for distributed operators."""
    if kind == "binary":
        op, left, right, out = args
        return BinarySPInstruction(op, left, right, out)
    if kind == "agg":
        op, direction, operand, out = args
        return AggSPInstruction(op, direction, operand, out)
    if kind == "reorg":
        op, operand, out = args
        if op != "t":
            return None
        return ReorgSPInstruction(op, operand, out)
    if kind == "matmult":
        physical, operands, out, __shapes = args
        return MatMultSPInstruction(physical, operands, out)
    if kind == "rand":
        params, out = args
        return RandSPInstruction(params, out)
    return None
