"""Runtime instruction sets: CP (local), Spark-like (distributed), federated."""
