"""Instruction and operand model shared by all backends.

Instructions are the unit of interpretation of the control program (paper
section 2.3(3)): each carries an opcode, input operands (variable names or
inline literals), one or more output variable names, and backend-specific
parameters.  ``execute`` runs against an
:class:`~repro.runtime.context.ExecutionContext`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import RuntimeDMLError
from repro.runtime.data import (
    FrameObject,
    ListObject,
    MatrixObject,
    ScalarObject,
)
from repro.tensor import BasicTensorBlock, Frame
from repro.types import ExecType


class Operand:
    """A variable reference or an inline scalar literal."""

    __slots__ = ("name", "literal")

    def __init__(self, name: Optional[str] = None, literal: Optional[ScalarObject] = None):
        if (name is None) == (literal is None):
            raise ValueError("operand is either a variable or a literal")
        self.name = name
        self.literal = literal

    @classmethod
    def var(cls, name: str) -> "Operand":
        return cls(name=name)

    @classmethod
    def lit(cls, value) -> "Operand":
        return cls(literal=ScalarObject(value))

    @property
    def is_literal(self) -> bool:
        return self.literal is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_literal:
            return f"Lit({self.literal.value!r})"
        return f"Var({self.name})"


class Instruction:
    """Base runtime instruction."""

    exec_type = ExecType.CP
    #: Opcodes eligible for lineage-based reuse probe before execution.
    reusable = False

    def __init__(self, opcode: str, inputs: Sequence[Operand], output: Optional[str],
                 params: Optional[dict] = None):
        self.opcode = opcode
        self.inputs: List[Operand] = list(inputs)
        self.output = output
        self.params = dict(params or {})

    @property
    def stat_key(self) -> str:
        """Profiling key of this instruction (``cp.ba+*``, ``spark.tsmm``)."""
        return f"{self.exec_type.value}.{self.opcode}"

    # --- operand resolution ------------------------------------------------------

    def _resolve(self, operand: Operand, ctx):
        if operand.is_literal:
            return operand.literal
        return ctx.get(operand.name)

    def scalar_in(self, index: int, ctx) -> ScalarObject:
        value = self._resolve(self.inputs[index], ctx)
        if isinstance(value, ScalarObject):
            return value
        if isinstance(value, MatrixObject):
            block = value.acquire_local(ctx.collect)
            return ScalarObject(block.as_scalar())
        raise RuntimeDMLError(
            f"{self.opcode}: expected a scalar, found {type(value).__name__}"
        )

    def matrix_in(self, index: int, ctx) -> MatrixObject:
        value = self._resolve(self.inputs[index], ctx)
        if isinstance(value, MatrixObject):
            return value
        if isinstance(value, ScalarObject) and value.is_numeric:
            return MatrixObject.from_block(
                BasicTensorBlock.scalar(value.as_float()), ctx.pool
            )
        if isinstance(value, FrameObject):
            return MatrixObject.from_block(value.frame.to_matrix(), ctx.pool)
        raise RuntimeDMLError(
            f"{self.opcode}: expected a matrix, found {type(value).__name__}"
        )

    def block_in(self, index: int, ctx) -> BasicTensorBlock:
        return self.matrix_in(index, ctx).acquire_local(ctx.collect)

    def frame_in(self, index: int, ctx) -> Frame:
        value = self._resolve(self.inputs[index], ctx)
        if isinstance(value, FrameObject):
            return value.frame
        if isinstance(value, MatrixObject):
            return Frame.from_matrix(value.acquire_local(ctx.collect))
        raise RuntimeDMLError(
            f"{self.opcode}: expected a frame, found {type(value).__name__}"
        )

    def any_in(self, index: int, ctx):
        return self._resolve(self.inputs[index], ctx)

    # --- result binding ------------------------------------------------------------------

    def bind_block(self, ctx, block: BasicTensorBlock) -> None:
        ctx.set(self.output, MatrixObject.from_block(block, ctx.pool))

    def bind_scalar(self, ctx, value) -> None:
        scalar = value if isinstance(value, ScalarObject) else ScalarObject(value)
        ctx.set(self.output, scalar)

    def bind_frame(self, ctx, frame: Frame) -> None:
        ctx.set(self.output, FrameObject(frame))

    def bind_list(self, ctx, items, names=None) -> None:
        ctx.set(self.output, ListObject(items, names))

    def bind(self, ctx, value) -> None:
        ctx.set(self.output, value)

    # --- contract ----------------------------------------------------------------------------

    def execute(self, ctx) -> None:
        raise NotImplementedError

    def output_names(self) -> List[str]:
        return [self.output] if self.output else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ins = ", ".join(repr(op) for op in self.inputs)
        return f"{self.exec_type.value}.{self.opcode}({ins}) -> {self.output}"
