"""Runtime control program (paper Figure 3, steps 3-4).

The compiled runtime program — a hierarchy of program blocks with linear
instruction sequences — is interpreted here.  The runtime also hosts the
multi-level buffer pool, the parfor backend, and the parameter server.
"""
