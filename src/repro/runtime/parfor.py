"""Parallel for loops (paper section 2.3(4), citing the ParFor work [5]).

The parfor backend runs loop iterations on a thread pool.  Before spawning
workers it performs a loop-dependency analysis over the body: result
variables (written in the body and live after the loop) must be updated
through left-indexing whose subscripts are *linear in the loop variable*
(guaranteeing disjoint writes across iterations), otherwise a loop-carried
dependency is reported — unless the user passes ``check=0``, mirroring the
``parfor(..., check=0)`` escape hatch of SystemDS.

Result merge follows SystemML's merge-with-compare: each worker operates on
a copy-on-write view; after the join, cells that differ from the pre-loop
snapshot are merged into the final result.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Optional, Set

import numpy as np

from repro.compiler.blocks import ForBlock
from repro.errors import RuntimeDMLError
from repro.lang import ast
from repro.runtime.data import MatrixObject, ScalarObject
from repro.tensor import BasicTensorBlock


class ParForDependencyError(RuntimeDMLError):
    """A loop-carried dependency was detected for a result variable."""


# ---------------------------------------------------------------------------
# dependency analysis
# ---------------------------------------------------------------------------


def _expr_is_linear_in(expr: ast.Expr, var: str) -> bool:
    """True when ``expr`` is a non-degenerate linear function of ``var``.

    Accepts ``var``, ``var + c``, ``c + var``, ``var - c``, ``c * var``,
    ``var * c`` and nested combinations thereof; a conservative subset of
    the Banerjee-style tests used by SystemML.
    """
    if isinstance(expr, ast.Identifier):
        return expr.name == var
    if isinstance(expr, ast.BinaryExpr):
        left_uses = _uses_var(expr.left, var)
        right_uses = _uses_var(expr.right, var)
        if left_uses and right_uses:
            return False  # e.g. i*i -- not linear
        if expr.op in ("+", "-"):
            side = expr.left if left_uses else expr.right
            return _expr_is_linear_in(side, var)
        if expr.op == "*":
            side = expr.left if left_uses else expr.right
            other = expr.right if left_uses else expr.left
            # coefficient must be a non-zero literal to guarantee injectivity
            coefficient = _literal_value(other)
            if coefficient in (None, 0):
                return False
            return _expr_is_linear_in(side, var)
    return False


def _literal_value(expr: ast.Expr):
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    return None


def _uses_var(expr: ast.Expr, var: str) -> bool:
    statement = ast.ExprStatement(value=expr)
    return var in ast.read_variables(statement)


def _collect_statements(body) -> List[ast.Statement]:
    from repro.compiler.blocks import BasicBlock, ForBlock as FB, IfBlock, WhileBlock

    statements: List[ast.Statement] = []
    for block in body:
        if isinstance(block, BasicBlock):
            statements.extend(block.statements)
        elif isinstance(block, IfBlock):
            statements.extend(_collect_statements(block.then_blocks))
            statements.extend(_collect_statements(block.else_blocks))
        elif isinstance(block, (WhileBlock, FB)):
            statements.extend(_collect_statements(block.body))
    return statements


def check_dependencies(block: ForBlock, result_vars: Set[str]) -> None:
    """Raise :class:`ParForDependencyError` on unsafe result-variable updates."""
    statements = _collect_statements(block.body)
    for statement in statements:
        written = ast.written_variables(statement)
        conflict = written & result_vars
        if not conflict:
            continue
        if isinstance(statement, ast.IndexedAssign):
            if any(
                rng.is_single and _expr_is_linear_in(rng.lower, block.var)
                for rng in statement.ranges
                if rng.lower is not None
            ):
                continue
            raise ParForDependencyError(
                f"parfor: left-indexing of result variable "
                f"{statement.target!r} is not linear in {block.var!r}"
            )
        raise ParForDependencyError(
            f"parfor: result variable {sorted(conflict)[0]!r} is overwritten "
            f"whole in every iteration (loop-carried dependency)"
        )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def execute_parfor(block: ForBlock, ctx, start: int, stop: int, step: int) -> None:
    """Run a parfor: dependency check, threaded workers, result merge."""
    from repro.runtime.interpreter import execute_blocks

    iterations = list(range(start, stop + (1 if step > 0 else -1), step))
    if not iterations:
        return
    result_vars = (block.writes() & block.live_out) - {block.var}
    check = _opt_int(block, ctx, "check", 1)
    if check:
        check_dependencies(block, result_vars)
    degree = _opt_int(block, ctx, "par", ctx.config.parallelism)
    degree = max(1, min(degree, len(iterations)))

    snapshots: Dict[str, Optional[BasicTensorBlock]] = {}
    for name in result_vars:
        value = ctx.get_or_none(name)
        if isinstance(value, MatrixObject):
            snapshots[name] = value.acquire_local(ctx.collect)
        else:
            snapshots[name] = None

    def run_chunk(chunk: List[int]):
        worker = ctx.child()
        worker.variables = dict(ctx.variables)
        if worker.tracer is not None and ctx.tracer is not None:
            worker.tracer.items = dict(ctx.tracer.items)
        for i in chunk:
            worker.set(block.var, ScalarObject(int(i)))
            if worker.tracer is not None:
                worker.tracer.items[block.var] = worker.tracer.make("lit", (), f"int:{int(i)}")
            execute_blocks(block.body, worker)
        return worker

    chunks = [iterations[i::degree] for i in range(degree)]
    chunks = [chunk for chunk in chunks if chunk]
    if len(chunks) == 1:
        workers = [run_chunk(chunks[0])]
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            workers = list(pool.map(run_chunk, chunks))

    _merge_results(ctx, result_vars, snapshots, workers)


def _opt_int(block: ForBlock, ctx, name: str, default: int) -> int:
    expr = block.opts.get(name)
    if expr is None:
        return default
    value = _literal_value(expr)
    if value is not None:
        return int(value)
    if isinstance(expr, ast.Identifier):
        bound = ctx.get_or_none(expr.name)
        if isinstance(bound, ScalarObject):
            return bound.as_int()
    raise RuntimeDMLError(f"parfor option {name!r} must be a literal or scalar variable")


def _merge_results(ctx, result_vars: Set[str], snapshots, workers) -> None:
    for name in sorted(result_vars):
        initial = snapshots.get(name)
        if initial is None:
            # created inside the loop: last writer wins
            for worker in reversed(workers):
                value = worker.get_or_none(name)
                if value is not None:
                    ctx.set(name, value)
                    if ctx.tracer is not None and worker.tracer is not None:
                        item = worker.tracer.get(name)
                        if item is not None:
                            ctx.tracer.items[name] = item
                    break
            continue
        merged = initial.to_numpy().astype(np.float64, copy=True)
        base = initial.to_numpy()
        items = []
        for worker in workers:
            value = worker.get_or_none(name)
            if not isinstance(value, MatrixObject):
                continue
            candidate = value.acquire_local(ctx.collect)
            if candidate.shape != initial.shape:
                raise RuntimeDMLError(
                    f"parfor: result variable {name!r} changed shape "
                    f"{initial.shape} -> {candidate.shape}"
                )
            data = candidate.to_numpy()
            # NaN-aware merge-with-compare: NaN != NaN is True, so a plain
            # comparison would treat every untouched NaN cell as "changed"
            # and let a later worker overwrite an earlier worker's write.
            changed = (data != base) & ~(np.isnan(data) & np.isnan(base))
            merged = np.where(changed, data, merged)
            if worker.tracer is not None:
                item = worker.tracer.get(name)
                if item is not None:
                    items.append(item)
        ctx.set(name, MatrixObject.from_block(BasicTensorBlock.from_numpy(merged), ctx.pool))
        if ctx.tracer is not None and items:
            ctx.tracer.items[name] = ctx.tracer.make("parfor_merge", items)
