"""The compiled runtime program handed from the compiler to the interpreter."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiler.blocks import FunctionBlocks, StatementBlock
from repro.config import ReproConfig
from repro.lang import ast


class RuntimeProgram:
    """A compiled DML script: block hierarchy plus compiled functions.

    ``ast_functions`` retains the function ASTs so dynamic recompilation can
    rebuild basic-block DAGs against live statistics.
    """

    def __init__(
        self,
        blocks: List[StatementBlock],
        functions: Dict[str, FunctionBlocks],
        ast_functions: Dict[str, ast.FunctionDef],
        config: ReproConfig,
        outputs: Optional[List[str]] = None,
    ):
        self.blocks = blocks
        self.functions = functions
        self.ast_functions = ast_functions
        self.config = config
        self.outputs = list(outputs or [])

    def explain(self) -> str:
        """A readable rendering of the compiled program (for debugging)."""
        lines: List[str] = []
        self._explain_blocks(self.blocks, lines, 0)
        for name, func in self.functions.items():
            lines.append(f"FUNCTION {name}:")
            self._explain_blocks(func.blocks, lines, 1)
        return "\n".join(lines)

    def _explain_blocks(self, blocks, lines, depth) -> None:
        from repro.compiler.blocks import BasicBlock, ForBlock, IfBlock, WhileBlock

        pad = "  " * depth
        for block in blocks:
            if isinstance(block, BasicBlock):
                lines.append(f"{pad}GENERIC (recompile={block.requires_recompile}):")
                for instruction in block.instructions:
                    lines.append(f"{pad}  {instruction!r}")
            elif isinstance(block, IfBlock):
                lines.append(f"{pad}IF:")
                self._explain_blocks(block.then_blocks, lines, depth + 1)
                if block.else_blocks:
                    lines.append(f"{pad}ELSE:")
                    self._explain_blocks(block.else_blocks, lines, depth + 1)
            elif isinstance(block, WhileBlock):
                lines.append(f"{pad}WHILE:")
                self._explain_blocks(block.body, lines, depth + 1)
            elif isinstance(block, ForBlock):
                kind = "PARFOR" if block.parallel else "FOR"
                lines.append(f"{pad}{kind} {block.var}:")
                self._explain_blocks(block.body, lines, depth + 1)
