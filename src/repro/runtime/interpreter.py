"""The interpreter of compiled runtime programs (the control program).

Executes the statement-block hierarchy: basic blocks run their instruction
sequences (recompiling first when sizes were unknown at compile time),
control blocks evaluate their predicate DAGs and drive iteration, and
function calls push fresh symbol-table frames.  Lineage tracing and
reuse-cache probing wrap every instruction execution.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.compiler.blocks import (
    BasicBlock,
    ForBlock,
    IfBlock,
    PredicateBlock,
    WhileBlock,
)
from repro.errors import RuntimeDMLError
from repro.runtime.context import ExecutionContext
from repro.runtime.data import MatrixObject, ScalarObject
from repro.runtime.instructions.base import Instruction
from repro.tensor import BasicTensorBlock


def execute_program(program, ctx: ExecutionContext) -> None:
    """Interpret a compiled runtime program against a fresh context."""
    checkpoints = ctx.checkpoints
    if checkpoints is not None:
        checkpoints.begin(ctx)
        if checkpoints.resumed and ctx.traces is not None:
            # the restored symbol table may diverge from the shapes hot
            # traces were compiled against; re-heat from scratch
            ctx.traces.invalidate_all("resume")
    execute_blocks(program.blocks, ctx, top_level=True)
    if checkpoints is not None:
        checkpoints.finish(ctx)


def _boundary(ctx: ExecutionContext) -> None:
    """One loop-iteration/top-level boundary of the main frame.

    The injection point fires first (so ``crash=`` kills the run even in
    frames without a checkpoint manager), then the manager snapshots on
    its cadence.  Callers guard with the same ``is None`` fast-path checks
    as ``ctx.stats``, so boundary costs nothing when both are off.
    """
    if ctx.faults is not None:
        ctx.faults.fire("checkpoint.boundary")
    if ctx.checkpoints is not None:
        ctx.checkpoints.boundary(ctx)


def execute_blocks(blocks, ctx: ExecutionContext, top_level: bool = False) -> None:
    """Run a block sequence; after top-level blocks, non-live variables die."""
    checkpoints = ctx.checkpoints
    if checkpoints is None:
        for block in blocks:
            execute_block(block, ctx)
            if top_level:
                live = set(block.live_out) | set(ctx.program.outputs)
                ctx.cleanup_nonlive(live)
                if ctx.faults is not None:
                    ctx.faults.fire("checkpoint.boundary")
            else:
                ctx.cleanup_temps()
        return
    start = checkpoints.enter_seq()
    try:
        for index, block in enumerate(blocks):
            if index < start:
                continue  # fast-forward past blocks a checkpoint completed
            checkpoints.advance_seq(index)
            execute_block(block, ctx)
            if top_level:
                live = set(block.live_out) | set(ctx.program.outputs)
                ctx.cleanup_nonlive(live)
                _boundary(ctx)
            else:
                ctx.cleanup_temps()
    finally:
        checkpoints.exit_seq()


def execute_block(block, ctx: ExecutionContext) -> None:
    """Dispatch one statement block: basic, if, while, or (par)for."""
    if isinstance(block, BasicBlock):
        _execute_basic(block, ctx)
    elif isinstance(block, IfBlock):
        _execute_if(block, ctx)
    elif isinstance(block, WhileBlock):
        _execute_while(block, ctx)
    elif isinstance(block, ForBlock):
        _execute_for(block, ctx)
    else:
        raise RuntimeDMLError(f"unknown block type: {type(block).__name__}")


def _execute_if(block: IfBlock, ctx: ExecutionContext) -> None:
    checkpoints = ctx.checkpoints
    if checkpoints is None:
        condition = eval_predicate(block.predicate, ctx).as_bool()
        execute_blocks(block.then_blocks if condition else block.else_blocks, ctx)
        return
    if checkpoints.resuming:
        # replay the recorded decision: the restored state is mid-branch,
        # so the predicate may no longer evaluate the way it did then
        condition = checkpoints.resume_if()
    else:
        condition = eval_predicate(block.predicate, ctx).as_bool()
        checkpoints.enter_if(condition)
    try:
        execute_blocks(block.then_blocks if condition else block.else_blocks, ctx)
    finally:
        checkpoints.exit_if()


def _execute_while(block: WhileBlock, ctx: ExecutionContext) -> None:
    checkpoints = ctx.checkpoints
    if checkpoints is None:
        fire = ctx.faults is not None
        while eval_predicate(block.predicate, ctx).as_bool():
            execute_blocks(block.body, ctx)
            if fire:
                ctx.faults.fire("checkpoint.boundary")
        return
    iterations = checkpoints.enter_while()
    # a resume with deeper frames left was checkpointed mid-body: re-enter
    # the body directly, skipping one predicate evaluation
    skip_predicate = checkpoints.resuming
    try:
        while True:
            if skip_predicate:
                skip_predicate = False
            elif not eval_predicate(block.predicate, ctx).as_bool():
                break
            execute_blocks(block.body, ctx)
            iterations += 1
            checkpoints.while_iter(iterations)
            _boundary(ctx)
    finally:
        checkpoints.exit_loop()


#: How many instructions ahead of execution the pool is told about reads.
#: Matched to small out-of-core pools: deep enough that the async worker
#: has restores in flight while the current instruction computes, shallow
#: enough that warmed blocks are consumed before room-making pressure
#: builds (a whole-block burst just thrashes a pool a few blocks wide).
_PREFETCH_LOOKAHEAD = 4


def _prefetch_window(instructions, start: int, stop: int,
                     ctx: ExecutionContext) -> None:
    """Announce instructions[start:stop]'s matrix reads to the buffer pool.

    The pool's background worker restores evicted entries while earlier
    instructions run, so demand ``get``/``pin`` calls find them warm.
    Bound variables only — temporaries produced inside the block don't
    exist yet, and pool-less (``_direct``) objects have nothing to warm.
    """
    pool = ctx.pool
    variables = ctx.variables
    entry_ids = []
    for instruction in instructions[start:stop]:
        for operand in instruction.inputs:
            if operand.is_literal:
                continue
            value = variables.get(operand.name)
            if (value is not None and getattr(value, "_pool", None) is pool
                    and value._entry_id is not None):
                entry_ids.append(value._entry_id)
    if entry_ids:
        pool.prefetch(entry_ids)


def _execute_basic(block: BasicBlock, ctx: ExecutionContext) -> None:
    traces = ctx.traces
    instructions = block.instructions
    prefetching = ctx.pool.wants_prefetch
    if prefetching:
        _prefetch_window(instructions, 0, _PREFETCH_LOOKAHEAD, ctx)
    if block.requires_recompile and ctx.config.enable_recompile:
        # trace-first: a guard-matching trace proves the plan-cache lookup
        # would return the very plan it fused, so skip the lookup outright
        if traces is not None and traces.execute_block(block, ctx):
            return
        from repro.compiler.recompile import recompile_basic_block

        instructions = recompile_basic_block(block, ctx)
        ctx.metrics["recompiles"] += 1
    if traces is not None and traces.execute(block, instructions, ctx):
        return  # traced: exports applied, hooks replayed, no temps bound
    releases = _temp_release_points(instructions)
    for index, instruction in enumerate(instructions):
        if prefetching:
            # slide the window: announce the instruction entering it
            _prefetch_window(instructions, index + _PREFETCH_LOOKAHEAD,
                             index + _PREFETCH_LOOKAHEAD + 1, ctx)
        execute_instruction(instruction, ctx)
        if index in releases:
            # dead-temp release: a ``_t`` past its last static read holds
            # a payload (often a full matrix block) hostage in the buffer
            # pool until block end; dropping the binding at last use keeps
            # the pool's working set at the instruction's live set
            for name in releases[index]:
                ctx.remove(name)
    ctx.cleanup_temps()


def _temp_release_points(instructions) -> dict:
    """instruction index -> temp names whose last static read is there.

    Instruction temps (``_t...``) are block-local by construction (see
    ``cleanup_temps``), so after the last instruction that reads one, its
    binding is dead — ``assignvar`` rebinds shared payloads under the real
    variable name, so dropping the temp name never drops live data.
    """
    last_use = {}
    for index, instruction in enumerate(instructions):
        for operand in instruction.inputs:
            if (operand is not None and not operand.is_literal
                    and operand.name and operand.name.startswith("_t")):
                last_use[operand.name] = index
    releases: dict = {}
    for name, index in last_use.items():
        releases.setdefault(index, []).append(name)
    return releases


def _for_bounds(block: ForBlock, ctx: ExecutionContext):
    start = eval_predicate(block.from_block, ctx).as_int()
    stop = eval_predicate(block.to_block, ctx).as_int()
    step = 1
    if block.step_block is not None:
        step = eval_predicate(block.step_block, ctx).as_int()
        if step == 0:
            raise RuntimeDMLError("for loop step must be non-zero")
    elif stop < start:
        step = -1
    return start, stop, step


def _execute_for(block: ForBlock, ctx: ExecutionContext) -> None:
    if block.parallel:
        # parfor checkpoints at whole-loop granularity: no cursor frame is
        # pushed, so a snapshot at the completion boundary resumes *after*
        # the loop, and a crash mid-parfor re-runs it from the start
        start, stop, step = _for_bounds(block, ctx)
        from repro.runtime.parfor import execute_parfor

        execute_parfor(block, ctx, start, stop, step)
        if ctx.faults is not None or ctx.checkpoints is not None:
            _boundary(ctx)
        return
    checkpoints = ctx.checkpoints
    resume = checkpoints.enter_for() if checkpoints is not None else None
    try:
        if resume is not None:
            # resume at the saved iteration with the *originally evaluated*
            # bounds: the restored symbol state is mid-loop, so the bound
            # expressions may no longer evaluate to their entry values
            i, stop, step = resume
        else:
            i, stop, step = _for_bounds(block, ctx)
            if checkpoints is not None:
                checkpoints.set_for_bounds(i, stop, step)
        fire = ctx.faults is not None or checkpoints is not None
        while (step > 0 and i <= stop) or (step < 0 and i >= stop):
            ctx.set(block.var, ScalarObject(int(i)))
            if ctx.tracer is not None:
                ctx.tracer.items[block.var] = ctx.tracer.make("lit", (), f"int:{int(i)}")
            if checkpoints is not None:
                checkpoints.for_iter(i)
            execute_blocks(block.body, ctx)
            if fire:
                _boundary(ctx)
            i += step
        ctx.remove(block.var)
    finally:
        if checkpoints is not None:
            checkpoints.exit_loop()


def eval_predicate(block: PredicateBlock, ctx: ExecutionContext) -> ScalarObject:
    """Evaluate a predicate/bound DAG to a scalar."""
    for instruction in block.instructions:
        execute_instruction(instruction, ctx)
    operand = block.result
    if operand.is_literal:
        result = operand.literal
    else:
        value = ctx.get(operand.name)
        if isinstance(value, ScalarObject):
            result = value
        elif isinstance(value, MatrixObject):
            result = ScalarObject(value.acquire_local(ctx.collect).as_scalar())
        else:
            raise RuntimeDMLError("predicate did not evaluate to a scalar")
    ctx.cleanup_temps()
    return result


# ---------------------------------------------------------------------------
# instruction execution with lineage + reuse
# ---------------------------------------------------------------------------


def execute_instruction(instruction: Instruction, ctx: ExecutionContext) -> None:
    """Run one instruction with lineage tracing and reuse-cache probing.

    With a stats registry attached the execution is wall-timed and folded
    into the per-opcode heavy-hitter profile; without one, the unprofiled
    fast path below runs with a single extra attribute check.

    ``ctx.fast_hooks`` pre-folds the stats/tracer/reuse is-None probes
    into one flag (refreshed on attach/detach), so the fully unhooked hot
    path skips straight to ``instruction.execute``.
    """
    if ctx.fast_hooks:
        metrics = ctx.metrics
        metrics["instructions"] += 1
        limit = ctx.config.max_instructions
        if limit is not None and metrics["instructions"] > limit:
            raise RuntimeDMLError(
                f"instruction budget exceeded (max_instructions={limit}); "
                f"likely a non-terminating loop"
            )
        instruction.execute(ctx)
        return
    stats = ctx.stats
    if stats is None:
        _execute_instruction_inner(instruction, ctx)
        return
    start = time.perf_counter()
    reused = _execute_instruction_inner(instruction, ctx)
    elapsed = time.perf_counter() - start
    bytes_out = 0
    if instruction.output is not None:
        value = ctx.get_or_none(instruction.output)
        size_of = getattr(value, "memory_size", None)
        if size_of is not None:
            bytes_out = int(size_of())
    stats.record_instruction(instruction.stat_key, elapsed, bytes_out)
    if reused:
        stats.count("lineage_reuse_hits")


def _execute_instruction_inner(instruction: Instruction, ctx: ExecutionContext) -> bool:
    """Core execute; True when the result came from the reuse cache."""
    ctx.metrics["instructions"] += 1
    limit = ctx.config.max_instructions
    if limit is not None and ctx.metrics["instructions"] > limit:
        raise RuntimeDMLError(
            f"instruction budget exceeded (max_instructions={limit}); "
            f"likely a non-terminating loop"
        )
    tracer = ctx.tracer
    if tracer is not None and ctx.reuse is not None and instruction.reusable:
        if _try_reuse(instruction, ctx):
            return True
    instruction.execute(ctx)
    if tracer is not None and not _self_traced(instruction):
        tracer.trace(instruction)
    if tracer is not None and ctx.reuse is not None and instruction.reusable:
        _cache_result(instruction, ctx)
    return False


def _self_traced(instruction: Instruction) -> bool:
    return instruction.opcode in ("datagen_rand", "datagen_sample", "pread", "fcall", "eval")


def _output_item(instruction: Instruction, ctx: ExecutionContext):
    tracer = ctx.tracer
    inputs = [tracer.operand_item(operand) for operand in instruction.inputs]
    data = tracer._instruction_data(instruction)
    return tracer.make(instruction.opcode, inputs, data)


def _try_reuse(instruction: Instruction, ctx: ExecutionContext) -> bool:
    item = _output_item(instruction, ctx)
    cached = ctx.reuse.probe(item)
    if cached is not None:
        _bind_cached(instruction, ctx, cached, item)
        return True
    if not ctx.config.partial_reuse_enabled:
        return False
    if instruction.opcode == "tsmm":
        block = instruction.block_in(0, ctx)
        result = ctx.reuse.probe_partial_tsmm(item, block)
        if result is not None:
            _bind_cached(instruction, ctx, result, item, also_cache=True)
            return True
    elif instruction.opcode == "tmm":
        left = instruction.block_in(0, ctx)
        right = instruction.block_in(1, ctx)
        result = ctx.reuse.probe_partial_tmm(item, left, right)
        if result is not None:
            _bind_cached(instruction, ctx, result, item, also_cache=True)
            return True
    return False


def _bind_cached(instruction, ctx, cached, item, also_cache: bool = False) -> None:
    if isinstance(cached, BasicTensorBlock):
        instruction.bind_block(ctx, cached)
    else:
        instruction.bind(ctx, cached)
    ctx.tracer.items[instruction.output] = item
    if also_cache and isinstance(cached, BasicTensorBlock):
        ctx.reuse.put(item, cached, cached.memory_size())


def _cache_result(instruction: Instruction, ctx: ExecutionContext) -> None:
    output = instruction.output
    if output is None:
        return
    item = ctx.tracer.get(output)
    if item is None:
        return
    value = ctx.get_or_none(output)
    if isinstance(value, MatrixObject) and value.is_local:
        block = value.acquire_local()
        ctx.reuse.put(item, block, block.memory_size())
    elif isinstance(value, ScalarObject):
        ctx.reuse.put(item, value, 64)


# ---------------------------------------------------------------------------
# function calls
# ---------------------------------------------------------------------------


def call_function(
    ctx: ExecutionContext,
    func_name: str,
    args: Sequence,
    arg_names: Sequence[Optional[str]],
    arg_items: Optional[Sequence] = None,
) -> List:
    """Execute a compiled DML function and return its outputs in order."""
    func = ctx.program.functions.get(func_name)
    if func is None:
        raise RuntimeDMLError(f"undefined function: {func_name}")
    ctx.metrics["fcalls"] += 1
    frame = ctx.child()
    bound = set()
    positional = [a for a, n in zip(args, arg_names) if n is None]
    named = {n: a for a, n in zip(args, arg_names) if n is not None}
    if len(positional) > len(func.params):
        raise RuntimeDMLError(
            f"{func_name} takes {len(func.params)} arguments, got {len(positional)}"
        )
    item_by_arg = {}
    if arg_items is not None:
        for (arg, name), item in zip(zip(args, arg_names), arg_items):
            item_by_arg[id(arg)] = item
    for param, value in zip(func.params, positional):
        frame.set(param.name, value)
        bound.add(param.name)
        _bind_arg_lineage(frame, param.name, value, item_by_arg)
    param_names = {p.name for p in func.params}
    for name, value in named.items():
        if name not in param_names:
            raise RuntimeDMLError(f"{func_name} has no parameter {name!r}")
        if name in bound:
            raise RuntimeDMLError(f"{func_name}: parameter {name!r} bound twice")
        frame.set(name, value)
        bound.add(name)
        _bind_arg_lineage(frame, name, value, item_by_arg)
    for param in func.params:
        if param.name in bound:
            continue
        default_block = func.default_blocks.get(param.name)
        if default_block is None:
            raise RuntimeDMLError(f"{func_name}: missing argument {param.name!r}")
        frame.set(param.name, eval_predicate(default_block, frame))
    execute_blocks(func.blocks, frame)
    results = []
    items = []
    for ret in func.returns:
        value = frame.get_or_none(ret.name)
        if value is None:
            raise RuntimeDMLError(
                f"{func_name} did not assign return variable {ret.name!r}"
            )
        results.append(value)
        items.append(frame.tracer.get(ret.name) if frame.tracer is not None else None)
    return results, items


def _bind_arg_lineage(frame: ExecutionContext, name: str, value, item_by_arg) -> None:
    if frame.tracer is None:
        return
    item = item_by_arg.get(id(value))
    if item is not None:
        frame.tracer.items[name] = item
