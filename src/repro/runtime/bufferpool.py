"""Multi-level buffer pool for intermediate variables (paper section 2.3(3)).

The buffer pool owns the in-memory payloads of matrix/tensor variables.  When
the managed footprint exceeds its budget it evicts unpinned entries in LRU
order by serialising them to spill files; a later access restores them
transparently.  Pinning protects entries while an instruction computes on
them.

The pool tracks simple statistics (evictions, restores, bytes spilled) so
the buffer-pool ablation bench can observe its behaviour.
"""

from __future__ import annotations

import collections
import itertools
import os
import pickle
import shutil
import threading
from typing import Dict, Optional

from repro.errors import BufferPoolError, InjectedFaultError, SpillFailureError
from repro.io.atomic import atomic_write_bytes

#: Name of the ownership marker inside each spill directory.  It holds the
#: owning process id; scavenging only removes directories whose owner is
#: provably dead, so concurrent pools of live processes are never touched.
PID_FILE = "owner.pid"

#: Prefix of spill directories created by ``ReproConfig.resolve_spill_dir``.
SPILL_PREFIX = "repro-spill-"

#: Parent directories already scavenged by this process (scavenging is an
#: O(listdir) scan — once per root per process is enough).
_SCAVENGED_ROOTS = set()
_SCAVENGE_LOCK = threading.Lock()


def _pid_alive(pid: int) -> bool:
    """True when a process with this pid exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned by someone else — leave it alone
    return True


def scavenge_spill_dirs(root: str, prefix: str = SPILL_PREFIX,
                        skip: tuple = ()) -> int:
    """Remove orphaned spill directories under ``root``.

    A directory qualifies when its name starts with ``prefix``, it is not
    listed in ``skip``, and its :data:`PID_FILE` names a process that no
    longer exists.  Directories without a readable pid marker are left
    alone (conservative: they may belong to an older version or another
    tool).  Returns the number of directories removed.
    """
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if not name.startswith(prefix):
            continue
        candidate = os.path.join(root, name)
        if candidate in skip or not os.path.isdir(candidate):
            continue
        try:
            with open(os.path.join(candidate, PID_FILE), "r",
                      encoding="utf-8") as handle:
                pid = int(handle.read().strip())
        except (OSError, ValueError):
            continue  # no marker — not provably ours/dead
        if pid == os.getpid() or _pid_alive(pid):
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        removed += 1
    return removed


def _scavenge_once(root: str, own_dir: str) -> None:
    with _SCAVENGE_LOCK:
        if root in _SCAVENGED_ROOTS:
            return
        _SCAVENGED_ROOTS.add(root)
    scavenge_spill_dirs(root, skip=(own_dir,))


class CacheEntry:
    """One buffered payload: in memory, spilled to disk, or both."""

    __slots__ = ("entry_id", "payload", "size", "pin_count", "spill_path", "dirty")

    def __init__(self, entry_id: int, payload, size: int):
        self.entry_id = entry_id
        self.payload = payload
        self.size = size
        self.pin_count = 0
        self.spill_path: Optional[str] = None
        self.dirty = True  # not yet persisted to the spill file

    @property
    def in_memory(self) -> bool:
        return self.payload is not None


class BufferPool:
    """LRU buffer pool with pinning and spill-to-disk eviction."""

    def __init__(self, budget: int, spill_dir: str, resilience=None):
        if budget <= 0:
            raise ValueError("buffer pool budget must be positive")
        self.budget = budget
        self.spill_dir = spill_dir
        #: Optional :class:`repro.resilience.ResilienceManager`.  When set,
        #: spill writes/reads retry transient I/O failures (``spill.write``
        #: and ``spill.read`` injection points); writes that stay broken
        #: fall back to pinning the entry in memory instead of losing it.
        self.resilience = resilience
        self._pid_written = False
        # One startup scavenge per parent directory: reclaim spill dirs a
        # crashed process left behind (its pid is gone, ours differs).
        _scavenge_once(os.path.dirname(os.path.abspath(spill_dir)),
                       os.path.abspath(spill_dir))
        self._entries: Dict[int, CacheEntry] = {}
        self._lru = collections.OrderedDict()  # entry_id -> None, oldest first
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._used = 0
        self._evictable = 0  # entries in memory with pin_count == 0
        self.stats = {
            "puts": 0,
            "gets": 0,
            "evictions": 0,
            "restores": 0,
            "bytes_spilled": 0,
            "evict_scans": 0,
        }

    # --- public protocol -------------------------------------------------------

    def put(self, payload, size: int, pinned: bool = False) -> int:
        """Register a payload; returns the entry id used for later access.

        With ``pinned=True`` the entry is born pinned (long-lived model
        weights on a serving path): it never competes for eviction until a
        matching :meth:`unpin`.
        """
        with self._lock:
            entry = CacheEntry(next(self._ids), payload, max(int(size), 0))
            self._entries[entry.entry_id] = entry
            self._lru[entry.entry_id] = None
            self._used += entry.size
            if pinned:
                entry.pin_count = 1
            else:
                self._evictable += 1
            self.stats["puts"] += 1
            self._evict_if_needed()
            return entry.entry_id

    def get(self, entry_id: int):
        """The payload for an entry, restoring it from disk if evicted."""
        with self._lock:
            entry = self._require(entry_id)
            self.stats["gets"] += 1
            if not entry.in_memory:
                self._restore(entry)
                payload = entry.payload
                # restoring added entry.size back to _used: without an
                # eviction pass, repeated gets of evicted entries push the
                # pool arbitrarily over budget until the next put.  The
                # restored entry was just touched (MRU), so the LRU scan
                # only takes it when nothing else is evictable.
                self._touch(entry)
                self._evict_if_needed()
                return payload
            self._touch(entry)
            return entry.payload

    def pin(self, entry_id: int):
        """Pin an entry (restore if needed) and return its payload."""
        with self._lock:
            entry = self._require(entry_id)
            if not entry.in_memory:
                self._restore(entry)
            if entry.pin_count == 0:
                self._evictable -= 1
            entry.pin_count += 1
            self._touch(entry)
            return entry.payload

    def unpin(self, entry_id: int) -> None:
        with self._lock:
            entry = self._require(entry_id)
            if entry.pin_count <= 0:
                raise BufferPoolError(f"unpin of unpinned entry {entry_id}")
            entry.pin_count -= 1
            if entry.pin_count == 0 and entry.in_memory:
                self._evictable += 1
            self._evict_if_needed()

    def update(self, entry_id: int, payload, size: int) -> None:
        """Replace the payload of an entry (e.g. after an in-place op)."""
        with self._lock:
            entry = self._require(entry_id)
            if entry.in_memory:
                self._used -= entry.size
            elif entry.pin_count == 0:
                self._evictable += 1  # evicted entry becomes resident again
            entry.payload = payload
            entry.size = max(int(size), 0)
            entry.dirty = True
            self._used += entry.size
            self._touch(entry)
            self._evict_if_needed()

    def free(self, entry_id: int) -> None:
        """Drop an entry and its spill file (variable went out of scope)."""
        with self._lock:
            entry = self._entries.pop(entry_id, None)
            if entry is None:
                return  # idempotent: rmvar on already-freed entries is fine
            self._lru.pop(entry_id, None)
            if entry.in_memory:
                self._used -= entry.size
                if entry.pin_count == 0:
                    self._evictable -= 1
            if entry.spill_path and os.path.exists(entry.spill_path):
                os.unlink(entry.spill_path)

    @property
    def used(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            for entry_id in list(self._entries):
                self.free(entry_id)

    def close(self) -> None:
        """Drop all entries and remove the spill directory.

        The directory is only removed when it ends up empty (modulo our own
        pid marker): the spill dir may be shared by other pools of the same
        config, whose files must survive.  Also scavenges orphaned sibling
        spill dirs left behind by crashed processes.  Safe to call more
        than once.
        """
        with self._lock:
            self.clear()
            if self._pid_written:
                try:
                    leftover = [n for n in os.listdir(self.spill_dir)
                                if n != PID_FILE]
                    if not leftover:
                        os.unlink(os.path.join(self.spill_dir, PID_FILE))
                        self._pid_written = False
                except OSError:
                    pass
            try:
                os.rmdir(self.spill_dir)
            except OSError:
                pass  # never created, already gone, or other pools still spill here
        scavenge_spill_dirs(
            os.path.dirname(os.path.abspath(self.spill_dir)),
            skip=(os.path.abspath(self.spill_dir),),
        )

    # --- internals ------------------------------------------------------------------

    def _require(self, entry_id: int) -> CacheEntry:
        entry = self._entries.get(entry_id)
        if entry is None:
            raise BufferPoolError(f"unknown buffer pool entry {entry_id}")
        return entry

    def _touch(self, entry: CacheEntry) -> None:
        self._lru.pop(entry.entry_id, None)
        self._lru[entry.entry_id] = None

    def _evict_if_needed(self) -> None:
        if self._used <= self.budget or self._evictable == 0:
            return  # under budget, or every resident entry is pinned
        self.stats["evict_scans"] += 1
        for entry_id in list(self._lru):
            if self._used <= self.budget or self._evictable == 0:
                return
            entry = self._entries[entry_id]
            if entry.pin_count > 0 or not entry.in_memory:
                continue
            self._evict(entry)

    def _evict(self, entry: CacheEntry) -> None:
        if entry.dirty or entry.spill_path is None:
            try:
                self._spill_write(entry)
            except (InjectedFaultError, OSError):
                # Write retries exhausted (resilience on): never drop the
                # payload — pin it in memory so it stops competing for
                # eviction until the entry is freed or updated.
                entry.pin_count += 1
                self._evictable -= 1
                self.resilience.stats.incr("spill_pin_fallbacks")
                return
            entry.dirty = False
            self.stats["bytes_spilled"] += entry.size
        entry.payload = None
        self._used -= entry.size
        self._evictable -= 1
        self._lru.pop(entry.entry_id, None)
        self.stats["evictions"] += 1

    def _spill_write(self, entry: CacheEntry) -> None:
        """Serialise a payload to its spill file (``spill.write`` point).

        Retries run with ``sleep=None`` — the pool lock is held, so backoff
        sleeps here would stall every other pool user.
        """
        resilience = self.resilience

        def write_once() -> None:
            if resilience is not None:
                resilience.fire("spill.write")
            os.makedirs(self.spill_dir, exist_ok=True)
            if not self._pid_written:
                atomic_write_bytes(
                    os.path.join(self.spill_dir, PID_FILE),
                    f"{os.getpid()}\n".encode("ascii"),
                )
                self._pid_written = True
            path = os.path.join(
                self.spill_dir, f"entry-{id(self)}-{entry.entry_id}.bin"
            )
            # Atomic publish: a crash mid-write leaves only a temp file, so
            # a later restore never unpickles a truncated payload.
            payload = pickle.dumps(entry.payload, protocol=pickle.HIGHEST_PROTOCOL)
            atomic_write_bytes(path, payload)
            entry.spill_path = path

        if resilience is None:
            write_once()
            return
        from repro.resilience.retry import call_with_retry

        call_with_retry(
            write_once, resilience.retry_policy, (InjectedFaultError, OSError),
            sleep=None, stats=resilience.stats, kind="spill",
        )

    def _restore(self, entry: CacheEntry) -> None:
        if entry.spill_path is None or not os.path.exists(entry.spill_path):
            raise BufferPoolError(
                f"entry {entry.entry_id} evicted without a spill file"
            )
        resilience = self.resilience

        def read_once():
            if resilience is not None:
                resilience.fire("spill.read")
            with open(entry.spill_path, "rb") as handle:
                return pickle.load(handle)

        if resilience is None:
            entry.payload = read_once()
        else:
            from repro.resilience.retry import call_with_retry

            try:
                entry.payload = call_with_retry(
                    read_once, resilience.retry_policy,
                    (InjectedFaultError, OSError),
                    sleep=None, stats=resilience.stats, kind="spill",
                )
            except (InjectedFaultError, OSError) as exc:
                raise SpillFailureError("spill.read", entry.entry_id) from exc
        self._used += entry.size
        if entry.pin_count == 0:
            self._evictable += 1
        self.stats["restores"] += 1
