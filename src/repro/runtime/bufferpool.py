"""Multi-level buffer pool for intermediate variables (paper section 2.3(3)).

The buffer pool owns the in-memory payloads of matrix/tensor variables.  When
the managed footprint exceeds its budget it evicts unpinned entries in LRU
order by serialising them to spill files; a later access restores them
transparently.  Pinning protects entries while an instruction computes on
them.

Out-of-core extensions (PR 9):

* **Compressed spills.**  Eligible payloads (dense 2D FP64 blocks) are run
  through the CLA encoders (:mod:`repro.tensor.compressed`) on eviction and
  written in compressed form when the ratio pays; restores stay compressed
  (lazy :class:`~repro.tensor.compressed.CompressedStore`) until a kernel
  needs the dense array.  The codec is bit-exact (dictionaries over uint64
  bit patterns) and layout-preserving (only dense stores are eligible), so
  compressed paging is invisible to bitwise differential comparisons.
* **Async prefetch/writeback.**  A lazily-started worker thread restores
  entries the interpreter's basic-block lookahead announces (``prefetch``)
  and proactively cleans dirty LRU entries once the pool is near budget,
  so evictions on the hot path are usually payload drops, not writes.  The
  ``spill.write``/``spill.read`` fault points fire on the async paths too.

Spill files are versioned (``...-v<n>.bin``): writers write their own
version and commit it under the lock only while it is still current, so a
racing update can never leave a stale payload behind a live path.

The pool tracks statistics (evictions, restores, compressed spills,
prefetch hits/waste, async writebacks) surfaced through the obs
``bufferpool`` section.
"""

from __future__ import annotations

import collections
import itertools
import os
import pickle
import shutil
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import BufferPoolError, InjectedFaultError, SpillFailureError
from repro.io.atomic import atomic_write_bytes
from repro.tensor.block import BasicTensorBlock
from repro.tensor.compressed import CompressedBlock, CompressedStore
from repro.tensor.dense import DenseStore
from repro.types import ValueType

#: Name of the ownership marker inside each spill directory.  It holds the
#: owning process id; scavenging only removes directories whose owner is
#: provably dead, so concurrent pools of live processes are never touched.
PID_FILE = "owner.pid"

#: Prefix of spill directories created by ``ReproConfig.resolve_spill_dir``.
SPILL_PREFIX = "repro-spill-"

#: Blocks smaller than this (cells) are never worth compressing.
MIN_COMPRESS_CELLS = 64

#: Fraction of the budget above which the background worker starts
#: cleaning dirty LRU entries ahead of demand.
WRITEBACK_WATERMARK = 0.75

#: Parent directories already scavenged by this process (scavenging is an
#: O(listdir) scan — once per root per process is enough).
_SCAVENGED_ROOTS = set()
_SCAVENGE_LOCK = threading.Lock()


def _pid_alive(pid: int) -> bool:
    """True when a process with this pid exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned by someone else — leave it alone
    return True


def scavenge_spill_dirs(root: str, prefix: str = SPILL_PREFIX,
                        skip: tuple = ()) -> int:
    """Remove orphaned spill directories under ``root``.

    A directory qualifies when its name starts with ``prefix``, it is not
    listed in ``skip``, and its :data:`PID_FILE` names a process that no
    longer exists.  Directories without a readable pid marker are left
    alone (conservative: they may belong to an older version or another
    tool).  Returns the number of directories removed.
    """
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if not name.startswith(prefix):
            continue
        candidate = os.path.join(root, name)
        if candidate in skip or not os.path.isdir(candidate):
            continue
        try:
            with open(os.path.join(candidate, PID_FILE), "r",
                      encoding="utf-8") as handle:
                pid = int(handle.read().strip())
        except (OSError, ValueError):
            continue  # no marker — not provably ours/dead
        if pid == os.getpid() or _pid_alive(pid):
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        removed += 1
    return removed


def _scavenge_once(root: str, own_dir: str) -> None:
    with _SCAVENGE_LOCK:
        if root in _SCAVENGED_ROOTS:
            return
        _SCAVENGED_ROOTS.add(root)
    scavenge_spill_dirs(root, skip=(own_dir,))


class CacheEntry:
    """One buffered payload: in memory, spilled to disk, or both."""

    __slots__ = ("entry_id", "payload", "size", "pin_count", "spill_path",
                 "dirty", "version", "writing", "reading", "prefetched")

    def __init__(self, entry_id: int, payload, size: int):
        self.entry_id = entry_id
        self.payload = payload
        self.size = size
        self.pin_count = 0
        self.spill_path: Optional[str] = None
        self.dirty = True  # not yet persisted to the spill file
        #: Bumped on every payload replacement; spill files are committed
        #: only while their captured version is still current.
        self.version = 0
        #: Version the async writer is currently persisting (None = idle).
        self.writing: Optional[int] = None
        #: True while the async prefetcher reads this entry's spill file.
        self.reading = False
        #: Restored by the prefetcher and not yet touched by get/pin.
        self.prefetched = False

    @property
    def in_memory(self) -> bool:
        return self.payload is not None


class BufferPool:
    """LRU buffer pool with pinning, compressed spills, and async paging."""

    def __init__(self, budget: int, spill_dir: str, resilience=None,
                 compress_spills: bool = False,
                 compress_min_ratio: float = 1.2,
                 compressed_exec: bool = False,
                 prefetch: bool = False):
        if budget <= 0:
            raise ValueError("buffer pool budget must be positive")
        self.budget = budget
        self.spill_dir = spill_dir
        #: Optional :class:`repro.resilience.ResilienceManager`.  When set,
        #: spill writes/reads retry transient I/O failures (``spill.write``
        #: and ``spill.read`` injection points); writes that stay broken
        #: fall back to pinning the entry in memory instead of losing it.
        self.resilience = resilience
        self.compress_spills = compress_spills
        self.compress_min_ratio = compress_min_ratio
        #: When False, restored-compressed payloads inflate before leaving
        #: the pool, so kernels only ever see dense/sparse stores.
        self.compressed_exec = compressed_exec
        self.prefetch_enabled = prefetch
        self._pid_written = False
        # One startup scavenge per parent directory: reclaim spill dirs a
        # crashed process left behind (its pid is gone, ours differs).
        _scavenge_once(os.path.dirname(os.path.abspath(spill_dir)),
                       os.path.abspath(spill_dir))
        self._entries: Dict[int, CacheEntry] = {}
        self._lru = collections.OrderedDict()  # entry_id -> None, oldest first
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._used = 0
        self._evictable = 0  # entries in memory with pin_count == 0
        self._evicted = 0  # entries currently without an in-memory payload
        self._prefetch_queue = collections.deque()
        self._prefetch_pending = set()
        self._worker: Optional[threading.Thread] = None
        self._inflight = 0  # tasks the worker has claimed but not finished
        self._closing = False
        self.stats = {
            "puts": 0,
            "gets": 0,
            "evictions": 0,
            "restores": 0,
            "bytes_spilled": 0,
            "evict_scans": 0,
            "compressed_spills": 0,
            "raw_spills": 0,
            "compress_rejects": 0,
            "spill_bytes_written": 0,
            "prefetch_requests": 0,
            "prefetch_hits": 0,
            "prefetch_wasted": 0,
            "prefetch_skipped": 0,
            "prefetch_errors": 0,
            "async_writebacks": 0,
            "writeback_races": 0,
            "writeback_errors": 0,
            "lazy_inflates": 0,
            "compressed_kernel_ops": 0,
            "compressed_kernel_fallbacks": 0,
        }

    # --- public protocol -------------------------------------------------------

    def put(self, payload, size: int, pinned: bool = False) -> int:
        """Register a payload; returns the entry id used for later access.

        With ``pinned=True`` the entry is born pinned (long-lived model
        weights on a serving path): it never competes for eviction until a
        matching :meth:`unpin`.
        """
        with self._lock:
            entry = CacheEntry(next(self._ids), payload, max(int(size), 0))
            self._entries[entry.entry_id] = entry
            self._lru[entry.entry_id] = None
            self._used += entry.size
            if pinned:
                entry.pin_count = 1
            else:
                self._evictable += 1
            self.stats["puts"] += 1
            self._evict_if_needed()
            self._kick_worker()
            return entry.entry_id

    def get(self, entry_id: int):
        """The payload for an entry, restoring it from disk if evicted."""
        with self._lock:
            entry = self._require(entry_id)
            self.stats["gets"] += 1
            if not entry.in_memory:
                self._await_async_restore(entry)
            if not entry.in_memory:
                self._restore(entry)
                self._note_access(entry)
                payload = self._outbound(entry)
                # restoring added entry.size back to _used: without an
                # eviction pass, repeated gets of evicted entries push the
                # pool arbitrarily over budget until the next put.  The
                # restored entry was just touched (MRU), so the LRU scan
                # only takes it when nothing else is evictable.
                self._touch(entry)
                self._evict_if_needed()
                return payload
            self._note_access(entry)
            self._touch(entry)
            return self._outbound(entry)

    def pin(self, entry_id: int):
        """Pin an entry (restore if needed) and return its payload."""
        with self._lock:
            entry = self._require(entry_id)
            if not entry.in_memory:
                self._await_async_restore(entry)
            if not entry.in_memory:
                self._restore(entry)
            self._note_access(entry)
            if entry.pin_count == 0:
                self._evictable -= 1
            entry.pin_count += 1
            self._touch(entry)
            return self._outbound(entry)

    def unpin(self, entry_id: int) -> None:
        with self._lock:
            entry = self._require(entry_id)
            if entry.pin_count <= 0:
                raise BufferPoolError(f"unpin of unpinned entry {entry_id}")
            entry.pin_count -= 1
            if entry.pin_count == 0 and entry.in_memory:
                self._evictable += 1
            self._evict_if_needed()

    def update(self, entry_id: int, payload, size: int) -> None:
        """Replace the payload of an entry (e.g. after an in-place op)."""
        with self._lock:
            entry = self._require(entry_id)
            if entry.in_memory:
                self._used -= entry.size
            else:
                self._evicted -= 1
                if entry.pin_count == 0:
                    self._evictable += 1  # evicted entry becomes resident again
            entry.payload = payload
            entry.size = max(int(size), 0)
            entry.dirty = True
            entry.version += 1
            entry.prefetched = False
            self._used += entry.size
            self._touch(entry)
            self._evict_if_needed()
            self._kick_worker()

    def free(self, entry_id: int) -> None:
        """Drop an entry and its spill file (variable went out of scope)."""
        with self._lock:
            entry = self._entries.pop(entry_id, None)
            if entry is None:
                return  # idempotent: rmvar on already-freed entries is fine
            self._lru.pop(entry_id, None)
            self._prefetch_pending.discard(entry_id)
            if entry.prefetched:
                entry.prefetched = False
                self.stats["prefetch_wasted"] += 1
            if entry.in_memory:
                self._used -= entry.size
                if entry.pin_count == 0:
                    self._evictable -= 1
            else:
                self._evicted -= 1
            if entry.spill_path and os.path.exists(entry.spill_path):
                os.unlink(entry.spill_path)

    def prefetch(self, entry_ids) -> None:
        """Queue evicted entries for background restoration.

        Called by the interpreter with the entry ids of a basic block's
        upcoming reads; the worker warms them while earlier instructions
        execute.  Entries that are resident, already queued, or unknown
        are skipped; restores that would breach the budget are skipped at
        restore time (``prefetch_skipped``).
        """
        if not self.prefetch_enabled:
            return
        # lock-free pre-filter: announcements are mostly for resident
        # entries, and taking the pool lock once per instruction to
        # discover that starves the demand path (dict reads are atomic
        # under the GIL; the locked pass below re-checks everything)
        candidates = [
            entry_id for entry_id in entry_ids
            if (entry := self._entries.get(entry_id)) is not None
            and not entry.in_memory and not entry.reading
            and entry.spill_path is not None
            and entry_id not in self._prefetch_pending
        ]
        if not candidates:
            return
        with self._lock:
            if self._closing:
                return
            queued = 0
            for entry_id in candidates:
                entry = self._entries.get(entry_id)
                if (entry is None or entry.in_memory or entry.reading
                        or entry.spill_path is None
                        or entry_id in self._prefetch_pending):
                    continue
                self._prefetch_pending.add(entry_id)
                self._prefetch_queue.append(entry_id)
                queued += 1
            if queued:
                self.stats["prefetch_requests"] += queued
                self._ensure_worker()
                self._cond.notify_all()

    @property
    def wants_prefetch(self) -> bool:
        """Cheap gate for the interpreter's lookahead: only worth walking
        a block's reads when something is actually evicted."""
        return self.prefetch_enabled and self._evicted > 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def drain_async(self, timeout: float = 5.0) -> None:
        """Block until the worker has no in-flight read/write (tests)."""
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        with self._cond:
            waited = 0.0
            while waited < deadline:
                busy = (bool(self._prefetch_queue) or self._inflight > 0
                        or (self.prefetch_enabled and not self._closing
                            and self._writeback_candidate() is not None))
                if not busy:
                    return
                self._cond.notify_all()  # wake the worker if it is idle
                self._cond.wait(0.01)
                waited += 0.01

    def clear(self) -> None:
        with self._lock:
            for entry_id in list(self._entries):
                self.free(entry_id)

    def close(self) -> None:
        """Drop all entries and remove the spill directory.

        Stops the async worker first, then removes the directory — but
        only when it ends up empty (modulo our own pid marker): the spill
        dir may be shared by other pools of the same config, whose files
        must survive.  Also scavenges orphaned sibling spill dirs left
        behind by crashed processes.  Safe to call more than once.
        """
        with self._cond:
            self._closing = True
            self._prefetch_queue.clear()
            self._prefetch_pending.clear()
            self._cond.notify_all()
            worker = self._worker
            self._worker = None
        if worker is not None:
            worker.join(timeout=10.0)
        with self._lock:
            self.clear()
            if self._pid_written:
                try:
                    leftover = [n for n in os.listdir(self.spill_dir)
                                if n != PID_FILE]
                    if not leftover:
                        os.unlink(os.path.join(self.spill_dir, PID_FILE))
                        self._pid_written = False
                except OSError:
                    pass
            try:
                os.rmdir(self.spill_dir)
            except OSError:
                pass  # never created, already gone, or other pools still spill here
        scavenge_spill_dirs(
            os.path.dirname(os.path.abspath(self.spill_dir)),
            skip=(os.path.abspath(self.spill_dir),),
        )

    # --- internals ------------------------------------------------------------------

    def _require(self, entry_id: int) -> CacheEntry:
        entry = self._entries.get(entry_id)
        if entry is None:
            raise BufferPoolError(f"unknown buffer pool entry {entry_id}")
        return entry

    def _touch(self, entry: CacheEntry) -> None:
        self._lru.pop(entry.entry_id, None)
        self._lru[entry.entry_id] = None

    def _note_access(self, entry: CacheEntry) -> None:
        if entry.prefetched:
            entry.prefetched = False
            self.stats["prefetch_hits"] += 1

    def _outbound(self, entry: CacheEntry):
        """The payload as handed to callers: still-compressed restores
        inflate here unless compressed-space execution is enabled."""
        payload = entry.payload
        if (not self.compressed_exec
                and isinstance(payload, BasicTensorBlock)
                and payload.store.compressed):
            payload.inflate()
        return payload

    def _await_async_restore(self, entry: CacheEntry) -> None:
        """Wait out an in-flight prefetch read of this entry (the worker
        installs the payload, or leaves it evicted on failure)."""
        while entry.reading:
            self._cond.wait()

    # --- eviction --------------------------------------------------------------

    def _evict_if_needed(self) -> None:
        if self._used <= self.budget or self._evictable == 0:
            return  # under budget, or every resident entry is pinned
        self.stats["evict_scans"] += 1
        waits = 0
        while self._used > self.budget and self._evictable > 0:
            progressed = False
            saw_writing = False
            # victim order: clean cold entries first (dropping them is
            # free — the spill file is current), then unconsumed prefetch
            # results (wastes a restore), dirty entries last (a sync
            # write, usually for a temp that is about to be freed anyway)
            for tier in (0, 1, 2):
                for entry_id in list(self._lru):
                    if self._used <= self.budget or self._evictable == 0:
                        return
                    entry = self._entries.get(entry_id)
                    if entry is None or entry.pin_count > 0 or not entry.in_memory:
                        continue
                    if entry.writing is not None:
                        # async writer owns this entry's spill file right
                        # now; it becomes a clean, free eviction the
                        # moment the write commits
                        saw_writing = True
                        continue
                    if tier < 2 and (entry.dirty or entry.spill_path is None):
                        continue
                    if tier < 1 and entry.prefetched:
                        continue
                    self._evict(entry)
                    progressed = True
                if self._used <= self.budget:
                    return
            if progressed:
                continue
            if saw_writing and waits < 500:
                waits += 1
                self._cond.wait(0.01)
                continue
            return

    def _evict(self, entry: CacheEntry) -> None:
        if entry.dirty or entry.spill_path is None:
            try:
                self._spill_write(entry)
            except (InjectedFaultError, OSError):
                # Write retries exhausted (resilience on): never drop the
                # payload — pin it in memory so it stops competing for
                # eviction until the entry is freed or updated.
                entry.pin_count += 1
                self._evictable -= 1
                self.resilience.stats.incr("spill_pin_fallbacks")
                return
        if entry.prefetched:
            entry.prefetched = False
            self.stats["prefetch_wasted"] += 1
        entry.payload = None
        self._used -= entry.size
        self._evictable -= 1
        self._evicted += 1
        self._lru.pop(entry.entry_id, None)
        self.stats["evictions"] += 1

    # --- spill serialisation ----------------------------------------------------

    def _compress_payload(self, payload) -> Optional[CompressedBlock]:
        """The CLA form of an eligible payload, or None to spill raw.

        Eligibility is deliberately narrow — dense 2D FP64 blocks — so a
        restore reconstructs the exact store layout the block had in
        memory (sparse blocks spill raw: re-encoding them dense would
        change downstream kernel selection and break bitwise configs).
        """
        if not self.compress_spills or not isinstance(payload, BasicTensorBlock):
            return None
        store = payload.store
        if store.compressed:
            return store.block  # restored and never inflated: spill as-is
        if (type(store) is not DenseStore
                or store.ndim != 2
                or store.value_type is not ValueType.FP64
                or store.size < MIN_COMPRESS_CELLS):
            return None
        # cheap cardinality probe: a strided sample that already looks
        # high-entropy means the encoder would only burn a full sort to
        # reject on ratio afterwards — spill raw straight away
        flat = store.array.ravel()
        if flat.size >= 512:
            sample = flat[:: max(1, flat.size // 256)][:256]
            if np.unique(sample).size * 2 > sample.size:
                self.stats["compress_rejects"] += 1
                return None
        try:
            compressed = CompressedBlock.compress(payload)
        except Exception:  # noqa: BLE001 - compression must never sink a spill
            self.stats["compress_rejects"] += 1
            return None
        if compressed.memory_size() * self.compress_min_ratio > store.memory_size():
            self.stats["compress_rejects"] += 1
            return None
        return compressed

    def _serialize(self, payload) -> Tuple[bytes, bool]:
        compressed = self._compress_payload(payload)
        if compressed is not None:
            blob = pickle.dumps(("cla", compressed),
                                protocol=pickle.HIGHEST_PROTOCOL)
            return blob, True
        blob = pickle.dumps(("raw", payload), protocol=pickle.HIGHEST_PROTOCOL)
        return blob, False

    def _deserialize(self, blob: bytes):
        tag, value = pickle.loads(blob)
        if tag == "cla":
            store = CompressedStore(value, on_event=self._cla_event)
            return BasicTensorBlock(store)
        return value

    def _cla_event(self, name: str) -> None:
        """Counter hook handed to restored CompressedStores (fires from
        kernel threads; the RLock makes it safe under the pool lock too)."""
        with self._lock:
            if name in self.stats:
                self.stats[name] += 1

    def _spill_file(self, entry: CacheEntry, version: int) -> str:
        return os.path.join(
            self.spill_dir,
            f"entry-{id(self)}-{entry.entry_id}-v{version}.bin",
        )

    def _ensure_spill_dir(self) -> None:
        os.makedirs(self.spill_dir, exist_ok=True)
        if not self._pid_written:
            atomic_write_bytes(
                os.path.join(self.spill_dir, PID_FILE),
                f"{os.getpid()}\n".encode("ascii"),
            )
            self._pid_written = True

    def _commit_spill(self, entry: CacheEntry, version: int, path: str,
                      compressed: bool, blob_size: int) -> None:
        """Publish a written spill file (lock held); unlinks the previous
        version's file once the new path is live."""
        previous = entry.spill_path
        entry.spill_path = path
        entry.dirty = False
        self.stats["bytes_spilled"] += entry.size
        self.stats["spill_bytes_written"] += blob_size
        self.stats["compressed_spills" if compressed else "raw_spills"] += 1
        if previous and previous != path and os.path.exists(previous):
            try:
                os.unlink(previous)
            except OSError:
                pass

    def _spill_write(self, entry: CacheEntry) -> None:
        """Serialise a payload to its spill file (``spill.write`` point).

        Retries run with ``sleep=None`` — the pool lock is held, so backoff
        sleeps here would stall every other pool user.
        """
        resilience = self.resilience
        blob, compressed = self._serialize(entry.payload)
        version = entry.version
        path = self._spill_file(entry, version)

        def write_once() -> None:
            if resilience is not None:
                resilience.fire("spill.write")
            self._ensure_spill_dir()
            # Atomic publish: a crash mid-write leaves only a temp file, so
            # a later restore never unpickles a truncated payload.
            atomic_write_bytes(path, blob)

        if resilience is None:
            write_once()
        else:
            from repro.resilience.retry import call_with_retry

            call_with_retry(
                write_once, resilience.retry_policy,
                (InjectedFaultError, OSError),
                sleep=None, stats=resilience.stats, kind="spill",
            )
        self._commit_spill(entry, version, path, compressed, len(blob))

    def _read_spill(self, path: str):
        """Read + deserialise a spill file (``spill.read`` point)."""
        resilience = self.resilience

        def read_once():
            if resilience is not None:
                resilience.fire("spill.read")
            with open(path, "rb") as handle:
                return self._deserialize(handle.read())

        if resilience is None:
            return read_once()
        from repro.resilience.retry import call_with_retry

        return call_with_retry(
            read_once, resilience.retry_policy,
            (InjectedFaultError, OSError),
            sleep=None, stats=resilience.stats, kind="spill",
        )

    def _restore(self, entry: CacheEntry) -> None:
        if entry.spill_path is None or not os.path.exists(entry.spill_path):
            raise BufferPoolError(
                f"entry {entry.entry_id} evicted without a spill file"
            )
        try:
            entry.payload = self._read_spill(entry.spill_path)
        except (InjectedFaultError, OSError) as exc:
            raise SpillFailureError("spill.read", entry.entry_id) from exc
        self._used += entry.size
        self._evicted -= 1
        if entry.pin_count == 0:
            self._evictable += 1
        self.stats["restores"] += 1

    # --- async worker -----------------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._worker is None and not self._closing:
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-pool-ooc", daemon=True
            )
            self._worker.start()

    def _kick_worker(self) -> None:
        """Wake (or start) the worker when clean-ahead writeback has work."""
        if not self.prefetch_enabled or self._closing:
            return
        if self._used >= self.budget * WRITEBACK_WATERMARK and self._evictable:
            self._ensure_worker()
            self._cond.notify_all()

    def _make_prefetch_room(self, needed: int, exclude_id: int) -> bool:
        """Drop clean cold payloads until ``needed`` bytes fit (lock held).

        Only *clean* entries (spill file current) are dropped — that is a
        free eviction, so prefetching swaps cold-for-warm without sync
        writes on the async path.  The writeback worker keeps cleaning the
        LRU tail, so in steady state room is usually available.  Returns
        False when even dropping every clean entry would not make room.
        """
        if self._used + needed <= self.budget:
            return True
        # two passes: spare unconsumed prefetch results first, so a deep
        # lookahead can't cannibalise blocks it just warmed; fall back to
        # taking them only when nothing else is droppable
        for take_prefetched in (False, True):
            for entry_id in list(self._lru):
                entry = self._entries.get(entry_id)
                if (entry is None or entry_id == exclude_id
                        or not entry.in_memory or entry.pin_count > 0
                        or entry.dirty or entry.writing is not None
                        or entry.spill_path is None):
                    continue
                if entry.prefetched:
                    if not take_prefetched:
                        continue
                    entry.prefetched = False
                    self.stats["prefetch_wasted"] += 1
                entry.payload = None
                self._used -= entry.size
                self._evictable -= 1
                self._evicted += 1
                self._lru.pop(entry_id, None)
                self.stats["evictions"] += 1
                if self._used + needed <= self.budget:
                    return True
        return self._used + needed <= self.budget

    def _writeback_candidate(self) -> Optional[CacheEntry]:
        """Oldest dirty, unpinned, resident entry (lock held), but only
        once the pool is close enough to budget that eviction is likely
        AND no clean entry is droppable — while clean victims exist,
        eviction never writes, so persisting young dirty entries (temps,
        rebound accumulators that are freed moments later) would only
        burn spill bandwidth."""
        if self._used < self.budget * WRITEBACK_WATERMARK:
            return None
        candidate = None
        for entry_id in self._lru:
            entry = self._entries.get(entry_id)
            if (entry is None or not entry.in_memory or entry.pin_count > 0
                    or entry.writing is not None or entry.reading):
                continue
            if not entry.dirty and entry.spill_path is not None:
                return None  # a free eviction exists; no write needed yet
            if candidate is None and entry.dirty:
                candidate = entry
        return candidate

    def _worker_loop(self) -> None:
        while True:
            task = None
            with self._cond:
                while task is None:
                    if self._closing:
                        return
                    if self._prefetch_queue:
                        entry_id = self._prefetch_queue.popleft()
                        self._prefetch_pending.discard(entry_id)
                        task = ("prefetch", entry_id)
                        break
                    candidate = self._writeback_candidate()
                    if candidate is not None:
                        candidate.writing = candidate.version
                        task = ("writeback", candidate, candidate.payload,
                                candidate.version)
                        break
                    self._cond.wait(0.5)
                self._inflight += 1
            try:
                if task[0] == "prefetch":
                    self._prefetch_one(task[1])
                else:
                    self._writeback_one(task[1], task[2], task[3])
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _prefetch_one(self, entry_id: int) -> None:
        """Restore one evicted entry off-thread (fires ``spill.read``)."""
        with self._cond:
            entry = self._entries.get(entry_id)
            if (entry is None or entry.in_memory or entry.reading
                    or entry.spill_path is None or self._closing):
                return
            if not self._make_prefetch_room(entry.size, entry_id):
                # no clean cold payload to swap out: restoring would force
                # a sync spill of something warmer — let demand handle it
                self.stats["prefetch_skipped"] += 1
                return
            entry.reading = True
            path = entry.spill_path
        payload = None
        try:
            payload = self._read_spill(path)
        except Exception:  # noqa: BLE001 - demand restore will retry/raise
            pass
        with self._cond:
            entry.reading = False
            live = self._entries.get(entry_id) is entry
            if payload is None:
                if live:
                    self.stats["prefetch_errors"] += 1
            elif (live and not entry.in_memory
                    and self._make_prefetch_room(entry.size, entry_id)):
                entry.payload = payload
                entry.prefetched = True
                self._used += entry.size
                self._evicted -= 1
                if entry.pin_count == 0:
                    self._evictable += 1
                self._touch(entry)  # about to be read: most-recently-used
                self.stats["restores"] += 1
            else:
                self.stats["prefetch_skipped"] += 1
            self._cond.notify_all()

    def _writeback_one(self, entry: CacheEntry, payload, version: int) -> None:
        """Persist one dirty entry off-thread (fires ``spill.write``).

        The payload reference and version were captured under the lock;
        the write lands in a version-suffixed file and only commits while
        that version is still current, so a racing ``update`` can never
        end up behind a stale spill path.
        """
        resilience = self.resilience
        blob = None
        path = None
        try:
            blob, compressed = self._serialize(payload)
            path = self._spill_file(entry, version)

            def write_once() -> None:
                if resilience is not None:
                    resilience.fire("spill.write")
                self._ensure_spill_dir()
                atomic_write_bytes(path, blob)

            if resilience is None:
                write_once()
            else:
                from repro.resilience.retry import call_with_retry

                call_with_retry(
                    write_once, resilience.retry_policy,
                    (InjectedFaultError, OSError),
                    sleep=None, stats=resilience.stats, kind="spill",
                )
        except Exception:  # noqa: BLE001 - sync eviction will rewrite later
            with self._cond:
                entry.writing = None
                self.stats["writeback_errors"] += 1
                self._cond.notify_all()
            return
        with self._cond:
            entry.writing = None
            live = self._entries.get(entry.entry_id) is entry
            if live and entry.version == version and entry.in_memory:
                self._commit_spill(entry, version, path, compressed, len(blob))
                self.stats["async_writebacks"] += 1
            else:
                # the entry was updated, freed, or evicted meanwhile: the
                # written file describes a stale version — discard it
                self.stats["writeback_races"] += 1
                try:
                    if path is not None and os.path.exists(path):
                        os.unlink(path)
                except OSError:
                    pass
            self._cond.notify_all()
