"""Symbol-table value objects of the runtime control program.

Every live DML variable maps to one of these handles:

* :class:`ScalarObject` — int/float/bool/string scalars (held directly).
* :class:`MatrixObject` — matrices and n-d tensors.  The payload lives in
  the buffer pool (local :class:`BasicTensorBlock`), in the distributed
  backend (:class:`~repro.distributed.blocked.BlockedTensor`), or in the
  federated backend (:class:`~repro.federated.tensor.FederatedTensor`);
  the handle carries metadata (shape, nnz) either way.
* :class:`FrameObject` — 2D tables with schema.
* :class:`ListObject` — ordered, optionally named collections of handles.

``MatrixObject.acquire_local`` is the single funnel through which non-local
payloads become local blocks, so every collect/transfer is observable.
"""

from __future__ import annotations

import contextlib
import enum
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import RuntimeDMLError
from repro.runtime.bufferpool import BufferPool
from repro.tensor import BasicTensorBlock, DataTensorBlock, Frame
from repro.types import DataType, ValueType


class Representation(enum.Enum):
    """Where a matrix payload lives: one block, blocked RDD, or fed sites."""

    LOCAL = "local"
    DISTRIBUTED = "distributed"
    FEDERATED = "federated"


#: Exact Python type -> ValueType for the ScalarObject fast path (bool
#: must map before int semantics apply, which exact-type keys guarantee).
_VALUE_TYPES_BY_PY_TYPE = {
    bool: ValueType.BOOLEAN,
    int: ValueType.INT64,
    float: ValueType.FP64,
    str: ValueType.STRING,
}


class ScalarObject:
    """An immutable scalar value."""

    __slots__ = ("value", "value_type")

    data_type = DataType.SCALAR

    def __init__(self, value, value_type: Optional[ValueType] = None):
        if value_type is None:
            # exact-type fast path: the value already is its canonical
            # representation, so the conversion below would be an identity
            value_type = _VALUE_TYPES_BY_PY_TYPE.get(type(value))
            if value_type is not None:
                self.value = value
                self.value_type = value_type
                return
            if isinstance(value, bool):
                value_type = ValueType.BOOLEAN
            elif isinstance(value, (int, np.integer)):
                value_type = ValueType.INT64
            elif isinstance(value, (float, np.floating)):
                value_type = ValueType.FP64
            elif isinstance(value, str):
                value_type = ValueType.STRING
            else:
                raise RuntimeDMLError(f"unsupported scalar type: {type(value).__name__}")
        if value_type == ValueType.BOOLEAN:
            value = bool(value)
        elif value_type in (ValueType.INT32, ValueType.INT64):
            value = int(value)
        elif value_type in (ValueType.FP32, ValueType.FP64):
            value = float(value)
        elif value_type == ValueType.STRING:
            value = str(value)
        self.value = value
        self.value_type = value_type

    @property
    def is_numeric(self) -> bool:
        return self.value_type.is_numeric

    def as_float(self) -> float:
        """The value as a float (numeric strings parse; others reject)."""
        if self.value_type == ValueType.STRING:
            try:
                return float(self.value)
            except ValueError:
                raise RuntimeDMLError(f"string {self.value!r} used as number") from None
        return float(self.value)

    def as_int(self) -> int:
        return int(self.as_float())

    def as_bool(self) -> bool:
        if self.value_type == ValueType.STRING:
            raise RuntimeDMLError(f"string {self.value!r} used as boolean")
        return bool(self.value)

    def as_string(self) -> str:
        if self.value_type == ValueType.BOOLEAN:
            return "TRUE" if self.value else "FALSE"
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScalarObject({self.value!r}, {self.value_type.value})"


class MatrixObject:
    """Handle for a matrix/tensor variable with buffer-pool-managed payload."""

    data_type = DataType.MATRIX

    def __init__(
        self,
        shape: Sequence[int],
        value_type: ValueType = ValueType.FP64,
        nnz: int = -1,
    ):
        self.shape: Tuple[int, ...] = tuple(int(d) for d in shape)
        self.value_type = value_type
        self.nnz = int(nnz)
        self.representation = Representation.LOCAL
        self._pool: Optional[BufferPool] = None
        self._entry_id: Optional[int] = None
        self._direct: Optional[BasicTensorBlock] = None  # fallback without a pool
        self.rdd = None  # BlockedTensor when DISTRIBUTED
        self.federated = None  # FederatedTensor when FEDERATED

    # --- constructors ---------------------------------------------------------

    @classmethod
    def from_block(cls, block: BasicTensorBlock, pool: Optional[BufferPool] = None) -> "MatrixObject":
        """Wrap a local block; with a pool, its payload becomes evictable."""
        obj = cls(block.shape, block.value_type, block.nnz)
        obj.set_local(block, pool)
        return obj

    @classmethod
    def from_blocked(cls, blocked) -> "MatrixObject":
        obj = cls(blocked.shape, blocked.value_type, blocked.nnz)
        obj.representation = Representation.DISTRIBUTED
        obj.rdd = blocked
        return obj

    @classmethod
    def from_federated(cls, federated) -> "MatrixObject":
        obj = cls(federated.shape, ValueType.FP64, -1)
        obj.representation = Representation.FEDERATED
        obj.federated = federated
        return obj

    # --- metadata -----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.shape[0] if self.shape else 1

    @property
    def num_cols(self) -> int:
        return self.shape[1] if len(self.shape) > 1 else 1

    @property
    def is_local(self) -> bool:
        return self.representation == Representation.LOCAL

    def memory_size(self) -> int:
        """Estimated payload bytes (sparse-aware when nnz is known)."""
        cells = 1
        for dim in self.shape:
            cells *= max(dim, 1)
        if 0 <= self.nnz < cells:
            return int(self.nnz * 12 + self.num_rows * 8)
        return int(cells * 8)

    # --- payload management ----------------------------------------------------------

    def set_local(self, block: BasicTensorBlock, pool: Optional[BufferPool] = None) -> None:
        """Replace the payload with a local block and refresh the metadata."""
        self.representation = Representation.LOCAL
        self.rdd = None
        self.federated = None
        self.shape = block.shape
        self.value_type = block.value_type
        self.nnz = block.nnz
        if pool is not None:
            if self._pool is not None and self._entry_id is not None:
                self._pool.free(self._entry_id)
            self._pool = pool
            self._entry_id = pool.put(block, block.memory_size())
            self._direct = None
        else:
            self._direct = block
            self._pool = None
            self._entry_id = None

    def acquire_local(self, collector=None) -> BasicTensorBlock:
        """The payload as a local block.

        Non-local representations are collected through ``collector`` (an
        ``ExecutionContext`` method) so transfers are accounted; without a
        collector, non-local access is an error.
        """
        if self.representation == Representation.LOCAL:
            if self._pool is not None:
                return self._pool.get(self._entry_id)
            if self._direct is None:
                raise RuntimeDMLError("matrix object has no payload")
            return self._direct
        if collector is None:
            raise RuntimeDMLError(
                f"{self.representation.value} matrix used where a local block is required"
            )
        block = collector(self)
        self.set_local(block, self._pool)
        return block

    @contextlib.contextmanager
    def pinned(self):
        """Pin the local payload for the duration of a kernel call."""
        if self.representation != Representation.LOCAL:
            raise RuntimeDMLError("pinned() requires a local payload")
        if self._pool is None:
            yield self._direct
            return
        block = self._pool.pin(self._entry_id)
        try:
            yield block
        finally:
            self._pool.unpin(self._entry_id)

    def pin_persistent(self) -> None:
        """Permanently pin the pooled payload (long-lived model weights).

        Unlike :meth:`pinned`, the pin is never released: the entry stays
        resident for the lifetime of the handle, so serving hot paths never
        pay an eviction/restore round-trip for weights.  A no-op for
        payloads held outside a pool.
        """
        if self._pool is not None and self._entry_id is not None:
            self._pool.pin(self._entry_id)

    def free(self) -> None:
        """Release the payload (variable removed from the symbol table)."""
        if self._pool is not None and self._entry_id is not None:
            self._pool.free(self._entry_id)
            self._entry_id = None
        self._direct = None
        self.rdd = None
        self.federated = None

    def __del__(self):  # payload lifetime follows the handle's references
        try:
            self.free()
        except Exception:  # noqa: BLE001 - interpreter teardown must not raise
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MatrixObject(shape={self.shape}, nnz={self.nnz},"
            f" repr={self.representation.value})"
        )


class FrameObject:
    """Handle for a frame variable."""

    data_type = DataType.FRAME

    def __init__(self, frame: Frame):
        self.frame = frame

    @property
    def shape(self):
        return self.frame.shape

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    @property
    def num_cols(self) -> int:
        return self.frame.num_cols

    def memory_size(self) -> int:
        return self.frame.memory_size()

    def free(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrameObject({self.frame!r})"


class TensorObject(MatrixObject):
    """Handle for n-dimensional (possibly heterogeneous) tensors."""

    data_type = DataType.TENSOR

    def __init__(self, shape: Sequence[int], value_type: ValueType = ValueType.FP64, nnz: int = -1):
        super().__init__(shape, value_type, nnz)
        self.data_tensor: Optional[DataTensorBlock] = None

    @classmethod
    def from_data_tensor(cls, tensor: DataTensorBlock) -> "TensorObject":
        obj = cls(tensor.shape)
        obj.data_tensor = tensor
        return obj


class ListObject:
    """An ordered, optionally named, list of data objects."""

    data_type = DataType.LIST

    def __init__(self, items: List, names: Optional[List[str]] = None):
        self.items = list(items)
        if names is not None and len(names) != len(items):
            raise RuntimeDMLError("list names must match item count")
        self.names = list(names) if names is not None else None

    def __len__(self) -> int:
        return len(self.items)

    def get(self, key):
        if isinstance(key, str):
            if self.names is None or key not in self.names:
                raise RuntimeDMLError(f"list has no element named {key!r}")
            return self.items[self.names.index(key)]
        index = int(key)
        if not 1 <= index <= len(self.items):
            raise RuntimeDMLError(f"list index {index} out of range 1..{len(self.items)}")
        return self.items[index - 1]

    def append(self, item, name: Optional[str] = None) -> "ListObject":
        items = self.items + [item]
        names = None
        if self.names is not None:
            names = self.names + [name or f"e{len(items)}"]
        return ListObject(items, names)

    def free(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ListObject(n={len(self.items)})"


DataObject = Union[ScalarObject, MatrixObject, FrameObject, TensorObject, ListObject]
