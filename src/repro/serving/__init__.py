"""Concurrent model-scoring on top of prepared scripts (deployment stage).

The paper frames SystemDS as covering the lifecycle "from data integration
... to deployment and serving"; this package is the serving stage.  It
turns :class:`~repro.api.jmlc.PreparedScript` into a multi-tenant scoring
engine:

* :class:`ModelRegistry` — register/version DML scoring scripts, compile
  once, pin model weights in a shared buffer pool so eviction never hits
  the hot path;
* :class:`ScoringService` — a thread-pool executor with a bounded
  admission queue, per-model concurrency limits, request deadlines, and
  reject-with-:class:`~repro.errors.ServiceOverloadedError` backpressure;
* :class:`MicroBatcher` — coalesces single-row requests into one matrix
  op per tick and splits results back per request;
* :class:`ServingMetrics` — latency percentiles, queue depth, batch-size
  histogram, and reuse-cache hit rates via ``snapshot()``.

    registry = ModelRegistry()
    registry.register("lm", "yhat = X %*% B", weights={"B": coefficients})
    with ScoringService(registry) as service:
        yhat = service.score("lm", feature_row)
"""

from repro.errors import (
    ScoreTimeoutError,
    ServiceOverloadedError,
    ServingError,
    TenantThrottledError,
    UnknownModelError,
)
from repro.serving.batcher import MicroBatcher, shard_of
from repro.serving.metrics import ServingMetrics
from repro.serving.qos import QosController, TenantPolicy, TokenBucket
from repro.serving.registry import ModelRegistry, ServableModel
from repro.serving.service import ScoreFuture, ScoringService
from repro.serving.workers import ShardedScoringService

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "QosController",
    "ScoreFuture",
    "ScoreTimeoutError",
    "ScoringService",
    "ServableModel",
    "ServiceOverloadedError",
    "ServingError",
    "ServingMetrics",
    "ShardedScoringService",
    "TenantPolicy",
    "TenantThrottledError",
    "TokenBucket",
    "UnknownModelError",
    "shard_of",
]
