"""Per-tenant quality of service: token-bucket rate limits + weighted
fair queueing.

The PR 3 load-shed watermark protects the *service* from aggregate
overload; this module protects *tenants from each other*:

* a :class:`TokenBucket` per tenant caps sustained request rate (with a
  configurable burst), rejecting excess with
  :class:`~repro.errors.TenantThrottledError` before the request touches
  the shared admission queue;
* weighted fair queueing (WFQ) orders admitted requests by per-tenant
  *virtual finish time* — each tenant's virtual clock advances by
  ``rows / weight`` per request, so over any congested interval tenants
  drain in proportion to their weights regardless of offered load.

Requests without a tenant (or tenants without a policy, when no default
is set) bypass both mechanisms: single-tenant deployments pay nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ServingError


class TenantPolicy:
    """Rate/weight configuration of one tenant (or the default tenant)."""

    __slots__ = ("rate", "burst", "weight")

    def __init__(self, rate: Optional[float] = None,
                 burst: Optional[float] = None, weight: float = 1.0):
        if rate is not None and rate <= 0:
            raise ServingError("tenant rate must be > 0 (or None = unlimited)")
        if weight <= 0:
            raise ServingError("tenant weight must be > 0")
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else None)
        self.weight = float(weight)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)  # start full: first burst is free
        self._clock = clock
        self._stamp = clock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class QosController:
    """Admission + ordering decisions for all tenants of one service.

    Thread-safe; one instance is shared by the admission path (token
    buckets, WFQ tags) and the snapshot reader.
    """

    def __init__(self, default_policy: Optional[TenantPolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._policies: Dict[str, TenantPolicy] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        #: Per-tenant virtual clocks plus the global virtual time floor.
        self._vtime: Dict[str, float] = {}
        self._vnow = 0.0
        self.default_policy = default_policy
        self.metrics = {"admitted": 0, "throttled": 0}

    def set_policy(self, tenant: str, rate: Optional[float] = None,
                   burst: Optional[float] = None,
                   weight: float = 1.0) -> TenantPolicy:
        policy = TenantPolicy(rate=rate, burst=burst, weight=weight)
        with self._lock:
            self._policies[tenant] = policy
            self._buckets.pop(tenant, None)  # rebuilt from the new policy
        return policy

    def policy_for(self, tenant: str) -> Optional[TenantPolicy]:
        with self._lock:
            return self._policies.get(tenant, self.default_policy)

    # --- admission (token bucket) --------------------------------------------

    def admit(self, tenant: Optional[str], rows: int = 1) -> bool:
        """True when the tenant's bucket covers the request.

        Un-policied tenants (and tenant-less requests) are always
        admitted; the aggregate queue bound still applies downstream.
        """
        if tenant is None:
            return True
        with self._lock:
            policy = self._policies.get(tenant, self.default_policy)
            if policy is None or policy.rate is None:
                return True
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    policy.rate, policy.burst or policy.rate, self._clock
                )
            admitted = bucket.try_acquire(rows)
            self.metrics["admitted" if admitted else "throttled"] += 1
            return admitted

    # --- ordering (weighted fair queueing) -----------------------------------

    def tag(self, tenant: Optional[str], rows: int = 1) -> float:
        """The request's WFQ virtual finish time (its queue priority).

        An idle tenant's clock restarts at the current global virtual
        time (no credit accrues while idle — the standard start-time
        rule), then advances by ``rows / weight``: heavier tenants drain
        proportionally faster under congestion.
        """
        if tenant is None:
            return 0.0  # tenant-less requests keep plain FIFO order
        with self._lock:
            policy = self._policies.get(tenant, self.default_policy)
            weight = policy.weight if policy is not None else 1.0
            start = max(self._vtime.get(tenant, 0.0), self._vnow)
            finish = start + max(rows, 1) / weight
            self._vtime[tenant] = finish
            self._vnow = max(self._vnow, start)
            return finish

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "admitted": self.metrics["admitted"],
                "throttled": self.metrics["throttled"],
                "tenants": {
                    tenant: {
                        "weight": policy.weight,
                        "rate": policy.rate,
                        "vtime": self._vtime.get(tenant, 0.0),
                    }
                    for tenant, policy in self._policies.items()
                },
            }
