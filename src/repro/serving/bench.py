"""Serving smoke bench: micro-batching vs. one-request-at-a-time.

Registers a linear scoring model, fires a burst of single-row requests at
the service twice — once with batching disabled (every request is its own
script execution) and once with micro-batching — and reports throughput,
latency percentiles, queue depth, and the batch-size histogram.

With ``--procs`` the bench instead measures the *multi-process* data
plane: a 1/2/4/8-worker scaling curve over :class:`ShardedScoringService`
(shared-memory weights, one OS process per shard), plus an optional
kill-one-worker chaos run (``--kill-worker``) that SIGKILLs a worker
mid-batch under a seeded fault plan and checks bit-identical results.

Runs as ``repro-serve-bench``, via ``repro-dml --serve-bench``, or through
``benchmarks/bench_serving.py``; writes ``BENCH_serving.json`` with
``--out``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.config import ReproConfig
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService

#: DML scoring script of the bench model: linear scores plus a model-side
#: normaliser (a weights-only tsmm) so lineage reuse on the weight sub-DAG
#: is observable: its key is stable across requests while X changes.
SCORING_SCRIPT = """
norm = sum(t(B) %*% B)
yhat = (X %*% B) / sqrt(norm)
"""


def _make_registry(features: int, seed: int) -> ModelRegistry:
    config = ReproConfig(enable_lineage=True, reuse_policy="full")
    registry = ModelRegistry(config)
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((features, 1))
    registry.register("lm-score", SCORING_SCRIPT, weights={"B": weights})
    return registry


def _fire_burst(service: ScoringService, rows: List[np.ndarray],
                timeout: float) -> float:
    """Submit every row, wait for all futures; returns the elapsed seconds."""
    start = time.monotonic()
    futures = [service.submit("lm-score", row, timeout=timeout) for row in rows]
    for future in futures:
        future.result(timeout)
    return time.monotonic() - start


def run_smoke_bench(
    requests: int = 1000,
    features: int = 16,
    workers: int = 4,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    timeout: float = 120.0,
    seed: int = 7,
) -> dict:
    """The smoke-bench report dict (see module docstring)."""
    rng = np.random.default_rng(seed + 1)
    rows = [rng.standard_normal(features) for _ in range(requests)]

    def run(batching: bool) -> dict:
        registry = _make_registry(features, seed)
        expected = None
        try:
            service = ScoringService(
                registry, workers=workers, queue_limit=requests,
                max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
                batching=batching, default_timeout=timeout,
            )
            with service:
                elapsed = _fire_burst(service, rows, timeout)
                # correctness spot check against the closed form
                sample = service.score("lm-score", rows[0], timeout=timeout)
                weights = registry.get("lm-score").weights["B"].acquire_local()
                b = weights.to_numpy()
                expected = float(
                    (rows[0].reshape(1, -1) @ b / np.sqrt((b * b).sum()))[0, 0]
                )
                assert abs(float(sample[0, 0]) - expected) < 1e-9
                snapshot = service.snapshot()
        finally:
            registry.close()
        return {
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
            "metrics": snapshot,
        }

    unbatched = run(batching=False)
    batched = run(batching=True)
    speedup = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"] > 0 else 0.0
    )
    return {
        "bench": "serving_smoke",
        "requests": requests,
        "features": features,
        "workers": workers,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "unbatched": unbatched,
        "batched": batched,
        "batching_speedup": speedup,
    }


def _expected_score(row: np.ndarray, b: np.ndarray) -> float:
    return float((row.reshape(1, -1) @ b / np.sqrt((b * b).sum()))[0, 0])


def run_scaling_bench(
    requests: int = 400,
    features: int = 16,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    timeout: float = 120.0,
    seed: int = 7,
    kill_worker: bool = False,
) -> dict:
    """Throughput curve over OS worker-process counts (the sharded plane).

    Each point of the curve spins up a fresh registry and a
    :class:`ShardedScoringService` with ``procs`` workers, fires the same
    burst of single-row requests, spot-checks one result against the
    closed form, and records throughput plus the worker/shared-memory
    counters.  ``scaling`` maps each count to its speedup over the
    1-worker point.  With ``kill_worker`` a final 2-worker run injects
    ``serve.worker:fail=1`` (seeded) so one worker is SIGKILLed mid-batch;
    the run asserts every result still matches and reports the recovery
    counters CI gates on.
    """
    from repro.resilience.manager import ResilienceManager
    from repro.serving.workers import ShardedScoringService

    rng = np.random.default_rng(seed + 1)
    rows = [rng.standard_normal(features) for _ in range(requests)]

    def run(procs: int, fault_spec: Optional[str] = None) -> dict:
        registry = _make_registry(features, seed)
        resilience = None
        if fault_spec:
            resilience = ResilienceManager.from_config(
                ReproConfig(fault_spec=fault_spec, fault_seed=seed)
            )
        try:
            service = ShardedScoringService(
                # 2x headroom: the whole burst sits queued at once and must
                # stay under the PR 3 load-shed watermark (90% of the limit)
                registry, procs=procs, queue_limit=requests * 2,
                max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
                default_timeout=timeout, resilience=resilience,
            )
            with service:
                elapsed = _fire_burst(service, rows, timeout)
                sample = service.score("lm-score", rows[0], timeout=timeout)
                weights = registry.get("lm-score").weights["B"].acquire_local()
                expected = _expected_score(rows[0], weights.to_numpy())
                assert abs(float(sample[0, 0]) - expected) < 1e-9
                snapshot = service.snapshot()
        finally:
            registry.close()
        workers = snapshot.get("workers", {})
        point = {
            "procs": procs,
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
            "shm_segments_attached": sum(
                w["shm_segments_attached"] for w in workers.values()),
            "shm_checksums_verified": sum(
                w["shm_checksums_verified"] for w in workers.values()),
            "worker_deaths": sum(w["deaths"] for w in workers.values()),
            "worker_respawns": sum(w["respawns"] for w in workers.values()),
            "resent_requests": sum(
                w["resent_requests"] for w in workers.values()),
            "metrics": snapshot,
        }
        if resilience is not None:
            point["resilience"] = resilience.stats.snapshot()
        return point

    curve = {str(count): run(count) for count in worker_counts}
    base = curve[str(worker_counts[0])]["throughput_rps"]
    scaling = {
        key: (point["throughput_rps"] / base if base > 0 else 0.0)
        for key, point in curve.items()
    }
    report = {
        "bench": "serving_scaling",
        "requests": requests,
        "features": features,
        "worker_counts": list(worker_counts),
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "cpu_count": os.cpu_count(),
        "curve": curve,
        "scaling": scaling,
    }
    if kill_worker:
        chaos = run(2, fault_spec="serve.worker:fail=1")
        # the SIGKILL happened and recovery re-sent the in-flight batch
        assert chaos["worker_deaths"] >= 1, "kill-worker run saw no death"
        assert chaos["worker_respawns"] >= 1, "worker was not respawned"
        report["kill_worker"] = chaos
    return report


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description="Concurrent model-scoring smoke bench (micro-batching).",
    )
    parser.add_argument("--requests", type=int, default=1000,
                        help="burst size (single-row scoring requests)")
    parser.add_argument("--features", type=int, default=16,
                        help="feature-vector width")
    parser.add_argument("--workers", type=int, default=4,
                        help="scoring worker threads")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="micro-batch size cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batch linger time")
    parser.add_argument("--procs", metavar="N[,N...]", default=None,
                        help="run the multi-process scaling bench over these "
                             "worker-process counts (e.g. 1,2,4,8)")
    parser.add_argument("--kill-worker", action="store_true",
                        help="add a kill-one-worker chaos run to the "
                             "scaling bench (implies --procs)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON report (e.g. BENCH_serving.json)")
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.features < 1:
        parser.error("--features must be >= 1")

    if args.procs is not None or args.kill_worker:
        try:
            counts = [int(part) for part in (args.procs or "1,2").split(",")]
        except ValueError:
            parser.error("--procs must be a comma-separated list of ints")
        if any(count < 1 for count in counts):
            parser.error("--procs counts must be >= 1")
        report = run_scaling_bench(
            requests=args.requests, features=args.features,
            worker_counts=counts, max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms, kill_worker=args.kill_worker,
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.out:
            write_report(report, args.out)
        if any(point["throughput_rps"] <= 0 for point in report["curve"].values()):
            print("error: a scaling point has zero throughput", file=sys.stderr)
            return 1
        return 0

    report = run_smoke_bench(
        requests=args.requests, features=args.features, workers=args.workers,
        max_batch_size=args.max_batch, max_wait_ms=args.max_wait_ms,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        write_report(report, args.out)
    if report["batched"]["throughput_rps"] <= 0:
        print("error: batched throughput is zero", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
