"""Serving smoke bench: micro-batching vs. one-request-at-a-time.

Registers a linear scoring model, fires a burst of single-row requests at
the service twice — once with batching disabled (every request is its own
script execution) and once with micro-batching — and reports throughput,
latency percentiles, queue depth, and the batch-size histogram.

Runs as ``repro-serve-bench``, via ``repro-dml --serve-bench``, or through
``benchmarks/bench_serving.py``; writes ``BENCH_serving.json`` with
``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from repro.config import ReproConfig
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService

#: DML scoring script of the bench model: linear scores plus a model-side
#: normaliser (a weights-only tsmm) so lineage reuse on the weight sub-DAG
#: is observable: its key is stable across requests while X changes.
SCORING_SCRIPT = """
norm = sum(t(B) %*% B)
yhat = (X %*% B) / sqrt(norm)
"""


def _make_registry(features: int, seed: int) -> ModelRegistry:
    config = ReproConfig(enable_lineage=True, reuse_policy="full")
    registry = ModelRegistry(config)
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((features, 1))
    registry.register("lm-score", SCORING_SCRIPT, weights={"B": weights})
    return registry


def _fire_burst(service: ScoringService, rows: List[np.ndarray],
                timeout: float) -> float:
    """Submit every row, wait for all futures; returns the elapsed seconds."""
    start = time.monotonic()
    futures = [service.submit("lm-score", row, timeout=timeout) for row in rows]
    for future in futures:
        future.result(timeout)
    return time.monotonic() - start


def run_smoke_bench(
    requests: int = 1000,
    features: int = 16,
    workers: int = 4,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    timeout: float = 120.0,
    seed: int = 7,
) -> dict:
    """The smoke-bench report dict (see module docstring)."""
    rng = np.random.default_rng(seed + 1)
    rows = [rng.standard_normal(features) for _ in range(requests)]

    def run(batching: bool) -> dict:
        registry = _make_registry(features, seed)
        expected = None
        try:
            service = ScoringService(
                registry, workers=workers, queue_limit=requests,
                max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
                batching=batching, default_timeout=timeout,
            )
            with service:
                elapsed = _fire_burst(service, rows, timeout)
                # correctness spot check against the closed form
                sample = service.score("lm-score", rows[0], timeout=timeout)
                weights = registry.get("lm-score").weights["B"].acquire_local()
                b = weights.to_numpy()
                expected = float(
                    (rows[0].reshape(1, -1) @ b / np.sqrt((b * b).sum()))[0, 0]
                )
                assert abs(float(sample[0, 0]) - expected) < 1e-9
                snapshot = service.snapshot()
        finally:
            registry.close()
        return {
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
            "metrics": snapshot,
        }

    unbatched = run(batching=False)
    batched = run(batching=True)
    speedup = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"] > 0 else 0.0
    )
    return {
        "bench": "serving_smoke",
        "requests": requests,
        "features": features,
        "workers": workers,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "unbatched": unbatched,
        "batched": batched,
        "batching_speedup": speedup,
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description="Concurrent model-scoring smoke bench (micro-batching).",
    )
    parser.add_argument("--requests", type=int, default=1000,
                        help="burst size (single-row scoring requests)")
    parser.add_argument("--features", type=int, default=16,
                        help="feature-vector width")
    parser.add_argument("--workers", type=int, default=4,
                        help="scoring worker threads")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="micro-batch size cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batch linger time")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON report (e.g. BENCH_serving.json)")
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.features < 1:
        parser.error("--features must be >= 1")

    report = run_smoke_bench(
        requests=args.requests, features=args.features, workers=args.workers,
        max_batch_size=args.max_batch, max_wait_ms=args.max_wait_ms,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        write_report(report, args.out)
    if report["batched"]["throughput_rps"] <= 0:
        print("error: batched throughput is zero", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
