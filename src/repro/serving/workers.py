"""Multi-process scoring: the sharded serving data plane.

:class:`ShardedScoringService` keeps the single-process front end — the
same ``submit``/``score`` admission path, bounded queue, deadlines,
per-tenant QoS, breakers, and load shedding — but executes batches in N
OS worker *processes*, so scoring escapes the GIL:

* at ``start()`` the parent publishes every registered model's weights
  into content-addressed shared memory (:mod:`repro.io.shm`) and spawns
  one worker per shard; each worker attaches the segments zero-copy,
  checksum-verifies them, recompiles the scoring scripts locally, and
  reports a ready handshake with its attach counts;
* models route to shards by ``crc32(model) % shards`` (the
  :class:`~repro.serving.batcher.MicroBatcher`'s shard routing), and one
  parent dispatcher thread per shard forms batches with
  ``take(shard=...)`` and round-trips them to its worker — one in-flight
  batch per worker, which keeps worker death recovery exact;
* a worker death (detected while awaiting its result) respawns the
  worker on **fresh queues** — a SIGKILL can corrupt a pipe mid-write,
  so queues are per-incarnation — re-attaches the same shared segments,
  and *resends* the in-flight batch.  Scoring is deterministic and
  :class:`~repro.serving.service.ScoreFuture` is set-once, so a resend
  is bit-identical and duplicate results are harmless: zero requests are
  dropped, no request observes the death;
* the ``serve.worker`` fault point turns the death path into a seeded
  chaos experiment: when its rule trips after a batch is sent, the
  parent SIGKILLs the worker mid-batch.

Workers are ``spawn``-context (fork is unsafe under the parent's
threads); the child re-imports :mod:`repro`, so ``PYTHONPATH`` carries
over naturally.
"""

from __future__ import annotations

import os
import queue as queue_mod
import signal
import threading
import time
from typing import List, Optional

import numpy as np

from repro.errors import ServingError, WorkerDiedError
from repro.serving.metrics import ServingMetrics
from repro.serving.qos import QosController
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService

#: How long ``start()`` waits for one worker's ready handshake.  Spawned
#: children import numpy and recompile every model, so this is generous.
READY_TIMEOUT_S = 60.0

#: Poll interval while awaiting a worker's batch result (each wait also
#: probes worker liveness, so this bounds death-detection latency).
_RESULT_POLL_S = 0.05


def _worker_main(index: int, entries, config, task_queue, result_queue) -> None:
    """Entry point of one scoring worker process.

    Rebuilds the model registry over the parent's shared-memory weights,
    handshakes, then serves ``(batch_id, name, version, features)`` tasks
    until it reads the ``None`` sentinel.  Any per-batch exception is
    returned to the parent, never raised out of the loop — a worker only
    dies by sentinel or by signal.
    """
    from repro.io import shm as shm_mod

    # this worker shares the parent's resource tracker (spawn inherits it);
    # the parent's registration is the one that must survive
    shm_mod.UNTRACK_ON_ATTACH = False
    store = shm_mod.SharedWeightStore(scavenge=False)
    try:
        registry = ModelRegistry.from_shared(entries, store, config)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        result_queue.put(("fatal", -1, _portable(exc)))
        store.close(unlink=False)
        return
    shm = store.snapshot()
    result_queue.put(
        ("ready", index,
         {"pid": os.getpid(), "segments": shm["attached"],
          "verified": shm["verified"]})
    )
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            batch_id, name, version, features = task
            try:
                servable = registry.get(name, version)
                scores = servable.score_batch(features)
                result_queue.put(("ok", batch_id, scores))
            except BaseException as exc:  # noqa: BLE001
                result_queue.put(("err", batch_id, _portable(exc)))
    finally:
        registry.close()
        store.close(unlink=False)


def _portable(exc: BaseException) -> BaseException:
    """An exception safe to pickle across the result queue."""
    try:
        import pickle

        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - unpicklable payload/ctor
        return ServingError(f"{type(exc).__name__}: {exc}")


class _WorkerHandle:
    """One worker incarnation: process + its private queue pair."""

    __slots__ = ("index", "incarnation", "process", "task_queue",
                 "result_queue")

    def __init__(self, index: int, incarnation: int, process, task_queue,
                 result_queue):
        self.index = index
        self.incarnation = incarnation
        self.process = process
        self.task_queue = task_queue
        self.result_queue = result_queue

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.process.pid is not None and self.alive():
            os.kill(self.process.pid, signal.SIGKILL)


class ShardedScoringService(ScoringService):
    """A :class:`ScoringService` whose batches execute in worker processes.

    ``procs`` is both the worker count and the shard count: every model
    lives on exactly one worker, so its per-process plan/reuse caches
    stay hot.  The admission path (queue bound, deadlines, QoS, shed
    watermark, breakers) is inherited unchanged — only batch execution
    crosses the process boundary.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        procs: int = 2,
        queue_limit: int = 256,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        batching: bool = True,
        default_timeout: Optional[float] = 30.0,
        metrics: Optional[ServingMetrics] = None,
        resilience=None,
        qos: Optional[QosController] = None,
        respawn_limit: int = 3,
    ):
        if procs < 1:
            raise ServingError("procs must be >= 1")
        super().__init__(
            registry, workers=1, queue_limit=queue_limit,
            max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
            batching=batching, default_timeout=default_timeout,
            metrics=metrics, resilience=resilience, qos=qos, shards=procs,
        )
        self.procs = procs
        self.respawn_limit = respawn_limit
        import multiprocessing

        self._mp = multiprocessing.get_context("spawn")
        self._store = None
        self._entries = None
        self._worker_config = None
        self._handles: List[Optional[_WorkerHandle]] = [None] * procs
        self._dispatchers: List[threading.Thread] = []
        self._batch_seq = 0
        self._seq_lock = threading.Lock()

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardedScoringService":
        if self._started:
            return self
        from repro.io.shm import SharedWeightStore

        self._started = True
        self._stop.clear()
        self._store = SharedWeightStore()
        self._entries = self.registry.share_weights(self._store)
        # workers must not re-inject the parent's faults or share its spill
        # directory; everything else (lineage reuse, kernels) carries over
        self._worker_config = self.registry.config.copy(
            spill_dir=None, fault_spec=None, enable_resilience=False,
        )
        for shard in range(self.procs):
            self._handles[shard] = self._spawn(shard, incarnation=0)
        for shard in range(self.procs):
            self._await_ready(self._handles[shard])
        for shard in range(self.procs):
            dispatcher = threading.Thread(
                target=self._dispatch_loop, args=(shard,),
                name=f"shard-dispatch-{shard}", daemon=True,
            )
            dispatcher.start()
            self._dispatchers.append(dispatcher)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._stop.set()
        leftovers = self._batcher.close()
        for request in leftovers:
            request.future.set_exception(
                ServingError("service stopped before the request ran")
            )
        for dispatcher in self._dispatchers:
            dispatcher.join(timeout=10.0)
        self._dispatchers = []
        for handle in self._handles:
            if handle is None:
                continue
            try:
                handle.task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead queue
                pass
        for handle in self._handles:
            if handle is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.alive():  # pragma: no cover - wedged worker
                handle.kill()
                handle.process.join(timeout=5.0)
            self._close_queues(handle)
        self._handles = [None] * self.procs
        if self._store is not None:
            self._store.close(unlink=True)
            self._store = None
        self._started = False

    # --- worker lifecycle ----------------------------------------------------

    def _spawn(self, shard: int, incarnation: int) -> _WorkerHandle:
        task_queue = self._mp.Queue()
        result_queue = self._mp.Queue()
        process = self._mp.Process(
            target=_worker_main,
            args=(shard, self._entries, self._worker_config, task_queue,
                  result_queue),
            name=f"scoring-worker-{shard}.{incarnation}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(shard, incarnation, process, task_queue,
                             result_queue)

    def _await_ready(self, handle: _WorkerHandle) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServingError(
                    f"worker {handle.index} did not become ready within "
                    f"{READY_TIMEOUT_S:.0f}s"
                )
            try:
                message = handle.result_queue.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                if not handle.alive():
                    raise ServingError(
                        f"worker {handle.index} died during startup"
                    )
                continue
            kind, _ident, payload = message
            if kind == "fatal":
                raise ServingError(
                    f"worker {handle.index} failed to bootstrap: {payload}"
                )
            if kind == "ready":
                self.metrics.record_worker_attach(
                    handle.index, payload["segments"], payload["verified"]
                )
                return

    @staticmethod
    def _close_queues(handle: _WorkerHandle) -> None:
        for q in (handle.task_queue, handle.result_queue):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _respawn(self, shard: int, resent: int) -> _WorkerHandle:
        """Replace a dead worker with a fresh incarnation (fresh queues)."""
        dead = self._handles[shard]
        self._close_queues(dead)
        handle = self._spawn(shard, incarnation=dead.incarnation + 1)
        self._await_ready(handle)
        self._handles[shard] = handle
        self.metrics.record_worker_respawn(shard, resent=resent)
        if self.resilience is not None:
            self.resilience.stats.incr("worker_respawns")
            self.resilience.stats.incr("resent_requests", resent)
        return handle

    # --- dispatch -----------------------------------------------------------

    def _dispatch_loop(self, shard: int) -> None:
        while not self._stop.is_set():
            taken = self._batcher.take(timeout=0.05, shard=shard)
            if taken is None:
                continue
            model_key, requests = taken
            try:
                self._execute_remote(shard, requests)
            finally:
                self._batcher.done(model_key)

    def _next_batch_id(self) -> int:
        with self._seq_lock:
            self._batch_seq += 1
            return self._batch_seq

    def _execute_remote(self, shard: int, requests) -> None:
        requests = self._split_expired(requests)
        if not requests:
            return
        servable = requests[0].servable
        self.metrics.record_batch(servable.key, sum(r.rows for r in requests))
        stacked = requests[0].features if len(requests) == 1 else np.vstack(
            [request.features for request in requests]
        )
        try:
            scores = self._round_trip(shard, servable, stacked, len(requests))
        except Exception as exc:  # noqa: BLE001 - fail the batch, not the plane
            self.metrics.record_error(servable.key, count=len(requests))
            for request in requests:
                request.future.set_exception(exc)
            return
        finished = time.monotonic()
        offset = 0
        for request in requests:
            request.future.set_result(scores[offset:offset + request.rows])
            offset += request.rows
            self.metrics.record_completed(
                servable.key, finished - request.enqueued,
                tenant=request.tenant,
            )
        self.metrics.record_worker_batch(shard, len(requests))

    def _round_trip(self, shard: int, servable, stacked: np.ndarray,
                    n_requests: int) -> np.ndarray:
        """Send one batch to the shard's worker and await its result.

        A dead worker is respawned (fresh queues, same shared segments)
        and the batch is *resent* — scoring is deterministic, so the
        retried result is bit-identical and no request is dropped.
        """
        deaths = 0
        while True:
            handle = self._handles[shard]
            batch_id = self._next_batch_id()
            handle.task_queue.put(
                (batch_id, servable.name, servable.version, stacked)
            )
            if self.resilience is not None \
                    and self.resilience.trip("serve.worker"):
                # seeded chaos: SIGKILL the worker mid-batch; recovery
                # below must make this invisible to every request
                handle.kill()
            result = self._await_result(handle, batch_id)
            if result is not None:
                kind, payload = result
                if kind == "ok":
                    return payload
                raise payload  # the worker's per-batch exception
            # worker died mid-batch
            deaths += 1
            self.metrics.record_worker_death(shard)
            if self.resilience is not None:
                self.resilience.stats.incr("worker_deaths")
            if deaths > self.respawn_limit:
                raise WorkerDiedError(
                    f"worker {shard} died {deaths} times executing one "
                    f"batch (respawn_limit={self.respawn_limit})"
                )
            self._respawn(shard, resent=n_requests)

    def _await_result(self, handle: _WorkerHandle, batch_id: int):
        """(kind, payload) from the worker, or None when it died."""
        while True:
            try:
                kind, ident, payload = handle.result_queue.get(
                    timeout=_RESULT_POLL_S
                )
            except queue_mod.Empty:
                if not handle.alive():
                    # drain whatever made it out before the death: the
                    # result may have been queued before the kill landed
                    try:
                        kind, ident, payload = handle.result_queue.get(
                            timeout=_RESULT_POLL_S
                        )
                    except queue_mod.Empty:
                        return None
                    if ident == batch_id and kind in ("ok", "err"):
                        return kind, payload
                    return None
                continue
            if ident != batch_id:  # stale/handshake noise — ignore
                continue
            if kind in ("ok", "err"):
                return kind, payload

    # --- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        if self._store is not None:
            snap["shared_memory"] = self._store.snapshot()
        if self.qos is not None:
            snap["qos"] = self.qos.snapshot()
        return snap
