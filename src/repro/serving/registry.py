"""Model registry: versioned scoring scripts with pinned weights.

Registering a model compiles its DML scoring script once (the JMLC path)
and converts its weights into buffer-pool-backed matrix objects that are
*persistently pinned*: under memory pressure the pool evicts request
intermediates, never the weights, so the serving hot path is free of
restore round-trips.

All models of one registry share a single buffer pool and per-model
lineage reuse caches.  The weight objects are bound by identity on every
``execute``, so their slot guids are stable and the model-side sub-DAG
(anything derived from the weights alone) gets full lineage reuse across
requests.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from typing import Dict, Optional, Sequence

import numpy as np

from repro.api.jmlc import PreparedScript
from repro.config import ReproConfig
from repro.errors import ServingError, UnknownModelError
from repro.io.atomic import atomic_write_bytes, atomic_write_json, checksum_bytes
from repro.runtime.bufferpool import BufferPool
from repro.runtime.data import MatrixObject
from repro.tensor import BasicTensorBlock

#: Name of the registry manifest written by :meth:`ModelRegistry.checkpoint_to`.
SERVING_MANIFEST = "registry.json"


def _to_weight_object(value, pool: BufferPool) -> MatrixObject:
    """Convert a weight to a pool-backed, persistently pinned matrix."""
    if isinstance(value, MatrixObject):
        block = value.acquire_local()
    elif isinstance(value, BasicTensorBlock):
        block = value
    elif isinstance(value, np.ndarray):
        array = value if value.ndim == 2 else np.atleast_2d(value).T
        block = BasicTensorBlock.from_numpy(np.asarray(array, dtype=np.float64))
    elif hasattr(value, "tocsr"):  # scipy sparse
        block = BasicTensorBlock.from_scipy(value.tocsr())
    else:
        raise ServingError(
            f"model weights must be matrices, got {type(value).__name__}"
        )
    weight = MatrixObject.from_block(block, pool)
    weight.pin_persistent()
    return weight


class ServableModel:
    """One registered (model, version): prepared script + pinned weights."""

    def __init__(
        self,
        name: str,
        version: int,
        script: PreparedScript,
        weights: Dict[str, MatrixObject],
        data_input: str,
        output: str,
        max_concurrency: Optional[int] = None,
    ):
        self.name = name
        self.version = version
        self.script = script
        self.weights = weights
        self.data_input = data_input
        self.output = output
        #: Cap on concurrent executions of this model (None = unbounded).
        self.max_concurrency = max_concurrency

    @property
    def key(self) -> str:
        return f"{self.name}@v{self.version}"

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        """Score a stacked feature matrix; one script execution per call.

        The weights are bound by identity (stable slot guids), the feature
        matrix is the only per-call binding.  Outputs are copied out and the
        execution context is closed, returning intermediates to the shared
        pool immediately.
        """
        results = self.script.execute(
            **{self.data_input: features}, **self.weights
        )
        try:
            return results.matrix(self.output)
        finally:
            results.close()

    def reuse_snapshot(self) -> dict:
        cache = self.script.reuse_cache
        return cache.snapshot() if cache is not None else {}

    def spec(self) -> dict:
        """Picklable description (sans weights) for worker-side rebuild."""
        return {
            "name": self.name,
            "version": self.version,
            "source": self.script.source,
            "data_input": self.data_input,
            "output": self.output,
            "max_concurrency": self.max_concurrency,
        }

    def release(self) -> None:
        """Free the pinned weights (model unregistered)."""
        for weight in self.weights.values():
            weight.free()
        self.weights = {}


class ModelRegistry:
    """Versioned, thread-safe store of servable models over a shared pool."""

    def __init__(self, config: Optional[ReproConfig] = None):
        if config is None:
            # serving wants lineage reuse on by default: the model-side
            # sub-DAG is identical across requests
            config = ReproConfig(enable_lineage=True, reuse_policy="full")
        self.config = config
        self.pool = BufferPool(config.bufferpool_budget, config.resolve_spill_dir())
        self._models: Dict[str, Dict[int, ServableModel]] = {}
        self._lock = threading.RLock()
        self._stats = None

    def register(
        self,
        name: str,
        source: str,
        weights: Optional[Dict[str, object]] = None,
        data_input: str = "X",
        output: str = "yhat",
        version: Optional[int] = None,
        max_concurrency: Optional[int] = None,
    ) -> ServableModel:
        """Compile a scoring script and pin its weights; returns the model.

        ``source`` reads the feature matrix from ``data_input`` and writes
        the scores to ``output``; every weight name becomes an additional
        script input bound to the pinned weight object on each request.
        """
        weights = weights or {}
        if data_input in weights:
            raise ServingError(
                f"data input {data_input!r} collides with a weight name"
            )
        inputs = [data_input] + list(weights)
        script = PreparedScript(
            source, inputs=inputs, outputs=[output],
            config=self.config, pool=self.pool, stats=self._stats,
        )
        pinned = {
            wname: _to_weight_object(value, self.pool)
            for wname, value in weights.items()
        }
        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                version = max(versions) + 1 if versions else 1
            elif version in versions:
                raise ServingError(f"model {name!r} v{version} already registered")
            model = ServableModel(
                name, version, script, pinned, data_input, output,
                max_concurrency=max_concurrency,
            )
            versions[version] = model
            return model

    def get(self, name: str, version: Optional[int] = None) -> ServableModel:
        """The given (or latest) version of a model; raises when unknown."""
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise UnknownModelError(f"no model registered under {name!r}")
            if version is None:
                return versions[max(versions)]
            model = versions.get(version)
            if model is None:
                raise UnknownModelError(f"model {name!r} has no version {version}")
            return model

    def models(self) -> Sequence[str]:
        with self._lock:
            return sorted(self._models)

    def set_stats(self, registry) -> None:
        """Route instruction profiling of all models into ``registry``.

        Applies to already-registered scripts and to future ``register``
        calls, so serving workers fold into one heavy-hitter table.
        """
        with self._lock:
            self._stats = registry
            for versions in self._models.values():
                for model in versions.values():
                    model.script.set_stats(registry)

    def versions(self, name: str) -> Sequence[int]:
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise UnknownModelError(f"no model registered under {name!r}")
            return sorted(versions)

    def unregister(self, name: str, version: Optional[int] = None) -> None:
        """Drop one version (or all versions) of a model and free weights."""
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise UnknownModelError(f"no model registered under {name!r}")
            doomed = list(versions.values()) if version is None \
                else [self.get(name, version)]
            for model in doomed:
                versions.pop(model.version, None)
                model.release()
            if not versions:
                self._models.pop(name, None)

    # --- multi-process data plane -------------------------------------------

    def share_weights(self, store) -> list:
        """Publish every model's weights into shared memory.

        ``store`` is a :class:`repro.io.shm.SharedWeightStore`.  Returns a
        picklable list of model entries — :meth:`ServableModel.spec` plus a
        ``weights`` map of segment specs — which is the complete bootstrap
        payload a scoring worker needs to rebuild the registry with
        zero-copy weight views (:meth:`from_shared`).  Content addressing
        dedupes identical weights across models and across calls.
        """
        with self._lock:
            models = [
                model for versions in self._models.values()
                for model in versions.values()
            ]
        entries = []
        for model in sorted(models, key=lambda m: (m.name, m.version)):
            entry = model.spec()
            entry["weights"] = {
                wname: store.publish_block(weight.acquire_local())
                for wname, weight in sorted(model.weights.items())
            }
            entries.append(entry)
        return entries

    @classmethod
    def from_shared(cls, entries, store,
                    config: Optional[ReproConfig] = None) -> "ModelRegistry":
        """Rebuild a registry in a worker from :meth:`share_weights` output.

        Each weight attaches checksum-verified and stays a zero-copy view
        over the parent's shared pages; the nnz threaded through the
        segment header means no weight is ever re-scanned.  Scripts are
        recompiled locally (compilation is per-process by design — plan
        caches and reuse caches are not shareable).
        """
        registry = cls(config)
        for entry in entries:
            weights = {
                wname: store.attach(spec).as_block()
                for wname, spec in entry.get("weights", {}).items()
            }
            registry.register(
                entry["name"], entry["source"], weights=weights,
                data_input=entry.get("data_input", "X"),
                output=entry.get("output", "yhat"),
                version=entry.get("version"),
                max_concurrency=entry.get("max_concurrency"),
            )
        return registry

    # --- warm restart -------------------------------------------------------

    def checkpoint_to(self, directory: str) -> str:
        """Persist every registered model for a later :meth:`warm_restart`.

        Weight blocks land as content-addressed pickle files under
        ``directory/weights/`` via atomic writes; the registry manifest is
        written last (the commit point), so a crash mid-checkpoint never
        leaves a manifest referencing missing weights.  Returns the
        manifest path.
        """
        weights_dir = os.path.join(directory, "weights")
        os.makedirs(weights_dir, exist_ok=True)
        with self._lock:
            models = [
                model for versions in self._models.values()
                for model in versions.values()
            ]
        entries = []
        for model in sorted(models, key=lambda m: (m.name, m.version)):
            weight_meta = {}
            for wname, weight in sorted(model.weights.items()):
                block = weight.acquire_local()
                payload = pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)
                checksum = checksum_bytes(payload)
                filename = os.path.join("weights", f"w-{checksum}.bin")
                target = os.path.join(directory, filename)
                if not os.path.exists(target):
                    atomic_write_bytes(target, payload, fsync=True)
                weight_meta[wname] = {"file": filename, "checksum": checksum}
            entries.append({
                "name": model.name,
                "version": model.version,
                "source": model.script.source,
                "data_input": model.data_input,
                "output": model.output,
                "max_concurrency": model.max_concurrency,
                "weights": weight_meta,
            })
        manifest_path = os.path.join(directory, SERVING_MANIFEST)
        atomic_write_json(
            manifest_path, {"version": 1, "models": entries}, fsync=True
        )
        return manifest_path

    @classmethod
    def warm_restart(
        cls, directory: str, config: Optional[ReproConfig] = None
    ) -> "ModelRegistry":
        """Rebuild a registry from the last :meth:`checkpoint_to` manifest.

        Scripts are recompiled and weights re-pinned into a fresh buffer
        pool, so a restarted scoring service is hot (no lazy compile on the
        first request).  Raises :class:`ServingError` when the manifest is
        missing or corrupt.
        """
        manifest_path = os.path.join(directory, SERVING_MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise ServingError(
                f"no serving manifest at {manifest_path} — nothing to "
                f"warm-restart from"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ServingError(
                f"corrupt serving manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("version") != 1:
            raise ServingError(
                f"unsupported serving manifest version "
                f"{manifest.get('version')!r} in {manifest_path}"
            )
        registry = cls(config)
        for entry in manifest.get("models", []):
            weights = {}
            for wname, meta in entry.get("weights", {}).items():
                path = os.path.join(directory, meta["file"])
                try:
                    with open(path, "rb") as handle:
                        payload = handle.read()
                except OSError as exc:
                    raise ServingError(
                        f"serving manifest references missing weight file "
                        f"{path}"
                    ) from exc
                if checksum_bytes(payload) != meta.get("checksum"):
                    raise ServingError(
                        f"weight file {path} fails its checksum — refusing "
                        f"to warm-restart from corrupt state"
                    )
                weights[wname] = pickle.loads(payload)
            registry.register(
                entry["name"], entry["source"], weights=weights,
                data_input=entry.get("data_input", "X"),
                output=entry.get("output", "yhat"),
                version=entry.get("version"),
                max_concurrency=entry.get("max_concurrency"),
            )
        return registry

    def close(self) -> None:
        """Unregister everything and tear down the shared buffer pool."""
        with self._lock:
            for name in list(self._models):
                self.unregister(name)
            self.pool.close()
