"""The concurrent scoring service: workers, deadlines, backpressure.

Requests enter through :meth:`ScoringService.submit` (non-blocking, returns
a :class:`ScoreFuture`) or :meth:`ScoringService.score` (blocking).  Worker
threads pull coalesced batches from the :class:`MicroBatcher`, stack the
feature rows into one matrix, run the model's prepared script once, and
split the score rows back to the per-request futures.

Overload behaviour is explicit: a full admission queue rejects with
:class:`~repro.errors.ServiceOverloadedError`, and requests that miss
their deadline resolve with :class:`~repro.errors.ScoreTimeoutError`
instead of occupying a worker.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

import numpy as np

from repro.errors import (
    InjectedFaultError,
    ScoreTimeoutError,
    ServiceUnavailableError,
    ServingError,
    TenantThrottledError,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import ServingMetrics
from repro.serving.qos import QosController
from repro.serving.registry import ModelRegistry, ServableModel


class ScoreFuture:
    """Completion handle of one scoring request."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value) -> None:
        if not self._event.is_set():
            self._value = value
            self._event.set()

    def set_exception(self, error: BaseException) -> None:
        if not self._event.is_set():
            self._error = error
            self._event.set()

    def result(self, timeout: Optional[float] = None):
        """The score row(s); raises the request's error or a timeout."""
        if not self._event.wait(timeout):
            raise ScoreTimeoutError("scoring request timed out")
        if self._error is not None:
            raise self._error
        return self._value


class _Request:
    """One admitted scoring request (internal)."""

    __slots__ = ("model", "servable", "features", "rows", "future",
                 "enqueued", "deadline", "tenant", "priority")

    def __init__(self, servable: ServableModel, features: np.ndarray,
                 deadline: Optional[float], tenant: Optional[str] = None,
                 priority: float = 0.0):
        self.model = servable.key
        self.servable = servable
        self.features = features
        self.rows = features.shape[0]
        self.future = ScoreFuture()
        self.enqueued = time.monotonic()
        self.deadline = deadline
        self.tenant = tenant
        #: WFQ virtual finish time (the batcher's heap key); 0.0 = FIFO.
        self.priority = priority


class ScoringService:
    """Thread-pool scoring over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        workers: int = 4,
        queue_limit: int = 256,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        batching: bool = True,
        default_timeout: Optional[float] = 30.0,
        metrics: Optional[ServingMetrics] = None,
        resilience=None,
        qos: Optional[QosController] = None,
        shards: int = 1,
    ):
        if workers < 1:
            raise ServingError("workers must be >= 1")
        self.registry = registry
        self.default_timeout = default_timeout
        self.metrics = metrics or ServingMetrics()
        #: Optional :class:`repro.resilience.ResilienceManager`.  When set,
        #: scoring batches retry transient failures (``serve.score`` point),
        #: each model gets a circuit breaker, and a nearly full queue sheds
        #: load with fast :class:`ServiceUnavailableError` rejections.
        self.resilience = resilience
        #: Optional per-tenant QoS (token buckets + WFQ ordering).
        self.qos = qos
        self._shed_watermark = max(1, int(queue_limit * 0.9))
        self._limits = {}
        self._batcher = MicroBatcher(
            max_batch_size=max_batch_size if batching else 1,
            max_wait_ms=max_wait_ms if batching else 0.0,
            queue_limit=queue_limit,
            limit_of=self._limits.get,
            shards=shards,
        )
        self.metrics.depth_probe = lambda: self._batcher.depth
        self._workers: List[threading.Thread] = []
        self._num_workers = workers
        self._stop = threading.Event()
        self._started = False

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "ScoringService":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        for index in range(self._num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"scoring-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    def stop(self) -> None:
        """Drain nothing: refuse new work, fail pending, join workers."""
        self._stop.set()
        leftovers = self._batcher.close()
        for request in leftovers:
            request.future.set_exception(
                ServingError("service stopped before the request ran")
            )
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        self._started = False

    def __enter__(self) -> "ScoringService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --- request path -------------------------------------------------------

    def submit(
        self,
        model: str,
        features,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> ScoreFuture:
        """Admit one request (a feature row or a small row batch).

        Raises :class:`UnknownModelError` for unregistered models,
        :class:`ServiceOverloadedError` when the admission queue is full,
        and :class:`TenantThrottledError` when ``tenant`` exceeds its
        QoS rate limit (only with a :class:`QosController` attached).
        """
        servable = self.registry.get(model, version)
        if servable.key not in self._limits:
            # wire the concurrency limit and reuse probe on first contact
            self._limits[servable.key] = servable.max_concurrency
            self.metrics.attach_reuse_probe(servable.key, servable.reuse_snapshot)
        matrix = np.atleast_2d(np.asarray(features, dtype=np.float64))
        priority = 0.0
        if self.qos is not None and tenant is not None:
            # throttle *before* the shared queue: an over-rate tenant never
            # consumes an admission slot, so it cannot starve its peers
            if not self.qos.admit(tenant, matrix.shape[0]):
                self.metrics.record_throttled(servable.key, tenant)
                raise TenantThrottledError(tenant)
            priority = self.qos.tag(tenant, matrix.shape[0])
        timeout = self.default_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout if timeout is not None else None
        request = _Request(servable, matrix, deadline, tenant=tenant,
                           priority=priority)
        self.metrics.record_submitted(servable.key, tenant=tenant)
        if self.resilience is not None:
            self._admission_check(servable.key, tenant)
        try:
            self._batcher.offer(request)
        except ServingError:
            self.metrics.record_rejected(servable.key, tenant=tenant)
            raise
        return request.future

    def score(
        self,
        model: str,
        features,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> np.ndarray:
        """Submit and wait; returns the score rows for this request."""
        timeout = self.default_timeout if timeout is None else timeout
        future = self.submit(model, features, version=version,
                             timeout=timeout, tenant=tenant)
        return future.result(timeout)

    def snapshot(self) -> dict:
        """Live metrics: latency percentiles, queue depth, batches, reuse."""
        return self.metrics.snapshot()

    def attach_stats(self, stats_registry) -> "ScoringService":
        """Fold this service into a :class:`repro.obs.StatsRegistry`.

        Wires the ``serving`` section to the live metrics snapshot, the
        ``bufferpool`` section to the model registry's shared pool, and
        routes per-instruction profiling of every model's prepared script
        into the registry, so one ``obs.report()`` shows the scoring layer
        next to the runtime heavy hitters.
        """
        from repro.obs import attach_pool, attach_serving

        attach_serving(stats_registry, self.metrics)
        attach_pool(stats_registry, self.registry.pool)
        self.registry.set_stats(stats_registry)
        return self

    # --- resilience ---------------------------------------------------------

    def _admission_check(self, model_key, tenant=None) -> None:
        """Fast-fail before enqueueing: open breaker or shedding watermark.

        Both paths return a typed :class:`ServiceUnavailableError` in
        microseconds instead of letting the request queue behind work that
        is already doomed or drowning.
        """
        resilience = self.resilience
        breaker = resilience.breaker_for(model_key)
        if not breaker.allow():
            resilience.stats.incr("breaker_rejections")
            self.metrics.record_rejected(model_key, tenant=tenant)
            raise ServiceUnavailableError(
                f"model {model_key!r}: circuit open at point 'serve.score'"
            )
        if self._batcher.depth >= self._shed_watermark:
            resilience.stats.incr("shed_requests")
            self.metrics.record_rejected(model_key, tenant=tenant)
            raise ServiceUnavailableError(
                f"model {model_key!r}: load shed (queue depth "
                f">= {self._shed_watermark})"
            )

    def _score_batch(self, servable: ServableModel, stacked: np.ndarray):
        """Run one coalesced batch, with retry + breaker when resilience is on."""
        resilience = self.resilience
        if resilience is None:
            return servable.score_batch(stacked)
        from repro.resilience.retry import call_with_retry

        breaker = resilience.breaker_for(servable.key)

        def score_once():
            resilience.fire("serve.score")
            return servable.score_batch(stacked)

        try:
            scores = call_with_retry(
                score_once, resilience.retry_policy, (InjectedFaultError,),
                sleep=resilience.sleep, rng=resilience.rng,
                stats=resilience.stats, kind="serve",
            )
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        return scores

    # --- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            taken = self._batcher.take(timeout=0.05)
            if taken is None:
                continue
            model_key, requests = taken
            try:
                self._execute_batch(requests)
            finally:
                self._batcher.done(model_key)

    def _split_expired(self, requests: List[_Request]):
        """Resolve deadline-missed requests without running them."""
        now = time.monotonic()
        live: List[_Request] = []
        for request in requests:
            if request.deadline is not None and now > request.deadline:
                request.future.set_exception(
                    ScoreTimeoutError("request expired in the admission queue")
                )
                self.metrics.record_timeout(request.model)
            else:
                live.append(request)
        return live

    def _execute_batch(self, requests: List[_Request]) -> None:
        requests = self._split_expired(requests)
        if not requests:
            return
        servable = requests[0].servable
        self.metrics.record_batch(servable.key, sum(r.rows for r in requests))
        stacked = requests[0].features if len(requests) == 1 else np.vstack(
            [request.features for request in requests]
        )
        try:
            scores = self._score_batch(servable, stacked)
        except Exception as exc:  # noqa: BLE001 - fail the batch, not the worker
            self.metrics.record_error(servable.key, count=len(requests))
            for request in requests:
                request.future.set_exception(exc)
            return
        finished = time.monotonic()
        offset = 0
        for request in requests:
            request.future.set_result(scores[offset:offset + request.rows])
            offset += request.rows
            self.metrics.record_completed(
                servable.key, finished - request.enqueued,
                tenant=request.tenant,
            )
