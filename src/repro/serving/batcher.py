"""Bounded admission queue with per-model request coalescing.

The batcher is the single synchronisation point of the scoring service:

* ``offer`` admits a request or rejects it immediately when the bounded
  queue is full (backpressure instead of unbounded buffering);
* ``take`` hands a worker a *batch*: the oldest pending model's requests,
  coalesced up to ``max_batch_size``.  When a batch is still short, the
  worker lingers up to ``max_wait_ms`` for stragglers — the classic
  throughput/latency knob of model-serving systems;
* per-model in-flight counts enforce each model's concurrency limit, so
  one hot model cannot monopolise every worker.

Two orthogonal extensions serve the multi-process data plane:

* **sharding** — with ``shards > 1`` every model routes to a fixed shard
  (``crc32(model) % shards``; Python's ``hash`` is per-process salted and
  therefore useless across workers), and ``take(shard=...)`` only forms
  batches for that shard.  Batching stays per-model *within* a shard, so
  one coalesced batch always targets one model on one worker process;
* **priority ordering** — requests carry an optional ``priority`` (the
  QoS layer's weighted-fair-queueing virtual finish time).  Each model
  queue is a min-heap on ``(priority, seq)``; untagged requests all carry
  priority 0.0, which degrades to plain FIFO via the admission sequence.

With ``max_batch_size=1`` the batcher degenerates into a plain bounded
FIFO queue (the un-batched baseline of the serving bench).
"""

from __future__ import annotations

import collections
import heapq
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceOverloadedError, ServingError


def shard_of(model: str, shards: int) -> int:
    """The shard a model routes to (stable across processes and runs)."""
    if shards <= 1:
        return 0
    return zlib.crc32(model.encode("utf-8")) % shards


class MicroBatcher:
    """Admission queue + coalescing of single-row requests into batches."""

    def __init__(
        self,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        queue_limit: int = 256,
        limit_of: Optional[Callable[[str], Optional[int]]] = None,
        shards: int = 1,
    ):
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if queue_limit < 1:
            raise ServingError("queue_limit must be >= 1")
        if shards < 1:
            raise ServingError("shards must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait = max(max_wait_ms, 0.0) / 1e3
        self.queue_limit = queue_limit
        self.shards = shards
        self._limit_of = limit_of
        self._cond = threading.Condition()
        # shard -> (model -> min-heap of (priority, seq, request)); model
        # insertion order doubles as the round-robin order across models
        self._pending: Dict[int, "collections.OrderedDict[str, list]"] = {
            shard: collections.OrderedDict() for shard in range(shards)
        }
        self._seq = 0
        self._depth = 0
        self._running: Dict[str, int] = collections.Counter()
        self._closed = False

    def shard_for(self, model: str) -> int:
        return shard_of(model, self.shards)

    # --- admission ----------------------------------------------------------

    def offer(self, request) -> None:
        """Admit a request (``request.model`` names its queue) or reject."""
        with self._cond:
            if self._closed:
                raise ServingError("batcher is closed")
            if self._depth >= self.queue_limit:
                raise ServiceOverloadedError(
                    f"admission queue full ({self.queue_limit} pending)"
                )
            pending = self._pending[self.shard_for(request.model)]
            queue = pending.get(request.model)
            if queue is None:
                queue = pending[request.model] = []
            self._seq += 1
            heapq.heappush(
                queue,
                (getattr(request, "priority", 0.0), self._seq, request),
            )
            self._depth += 1
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        with self._cond:
            return self._depth

    # --- batch formation ----------------------------------------------------

    def _capacity(self, model: str) -> bool:
        if self._limit_of is None:
            return True
        limit = self._limit_of(model)
        return limit is None or self._running[model] < limit

    def _next_model(self, shard: Optional[int]) -> Optional[str]:
        pendings = (
            self._pending.values() if shard is None
            else (self._pending[shard],)
        )
        for pending in pendings:
            for model, queue in pending.items():
                if queue and self._capacity(model):
                    return model
        return None

    def _drain(self, model: str, room: int) -> List:
        pending = self._pending[self.shard_for(model)]
        queue = pending.get(model)
        batch: List = []
        while queue and room > 0:
            batch.append(heapq.heappop(queue)[2])
            room -= 1
        self._depth -= len(batch)
        if queue is not None and not queue:
            # rotate: an empty queue re-registers at the tail on next offer
            pending.pop(model, None)
        return batch

    def take(self, timeout: float = 0.1,
             shard: Optional[int] = None) -> Optional[Tuple[str, List]]:
        """The next (model, requests) batch, or None on timeout/shutdown.

        ``shard`` restricts batch formation to one shard's models (a
        shard dispatcher never steals another worker's work); None takes
        from any shard (the single-process thread-pool path).

        Marks the model as running; the worker must call :meth:`done` after
        executing the batch so concurrency slots free up.
        """
        if shard is not None and not 0 <= shard < self.shards:
            raise ServingError(f"shard {shard} out of range (shards={self.shards})")
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed and self._depth == 0:
                    return None
                model = self._next_model(shard)
                if model is not None:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            # Reserve the model's concurrency slot *before* draining and
            # lingering: the linger wait below releases the lock, and a
            # second worker must see this model at capacity rather than
            # take its next requests concurrently (per-model limits and
            # FIFO ordering would both break otherwise).
            self._running[model] += 1
            batch = self._drain(model, self.max_batch_size)
            if self.max_wait > 0 and len(batch) < self.max_batch_size \
                    and not self._closed:
                # linger briefly for stragglers to fill the batch
                linger = time.monotonic() + self.max_wait
                while len(batch) < self.max_batch_size:
                    remaining = linger - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                    batch.extend(
                        self._drain(model, self.max_batch_size - len(batch))
                    )
                    if self._closed:
                        break
            return model, batch

    def done(self, model: str) -> None:
        """Release the model's concurrency slot after a batch completes."""
        with self._cond:
            self._running[model] = max(self._running[model] - 1, 0)
            self._cond.notify_all()

    # --- shutdown -----------------------------------------------------------

    def close(self) -> List:
        """Refuse new work; returns the requests still pending (undrained)."""
        with self._cond:
            self._closed = True
            leftovers = [
                entry[2]
                for pending in self._pending.values()
                for queue in pending.values()
                for entry in queue
            ]
            for pending in self._pending.values():
                pending.clear()
            self._depth = 0
            self._cond.notify_all()
            return leftovers
