"""Observability for the scoring service.

One :class:`ServingMetrics` instance aggregates per-model counters, a
sliding window of request latencies (for percentiles), and a batch-size
histogram.  ``snapshot()`` returns a plain dict so benches and operators
can serialise it directly (``BENCH_serving.json``).

All record methods are thread-safe: workers, the admission path, and
readers share one lock, and snapshots are consistent copies.
"""

from __future__ import annotations

import collections
import math
import threading
from typing import Callable, Dict, Optional

#: Latencies kept per model for percentile estimation (sliding window).
DEFAULT_WINDOW = 4096


def percentile(samples, q: float) -> float:
    """The q-th percentile (0..100) of a sample list, nearest-rank method."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class _ModelStats:
    """Mutable per-model counters (guarded by the owning metrics lock)."""

    __slots__ = (
        "submitted", "completed", "rejected", "timeouts", "errors",
        "latencies", "batch_sizes",
    )

    def __init__(self, window: int):
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.latencies = collections.deque(maxlen=window)
        self.batch_sizes: Dict[int, int] = collections.Counter()


class ServingMetrics:
    """Thread-safe counters + latency/batch histograms for one service."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._window = window
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelStats] = {}
        #: Callable returning the live admission-queue depth (wired by the
        #: service); kept as a probe so snapshots never go stale.
        self.depth_probe: Optional[Callable[[], int]] = None
        #: Per-model reuse-cache snapshot probes (wired by the service).
        self._reuse_probes: Dict[str, Callable[[], dict]] = {}

    def _stats(self, model: str) -> _ModelStats:
        stats = self._models.get(model)
        if stats is None:
            stats = self._models[model] = _ModelStats(self._window)
        return stats

    # --- recording (called by the service) ---------------------------------

    def record_submitted(self, model: str) -> None:
        with self._lock:
            self._stats(model).submitted += 1

    def record_rejected(self, model: str) -> None:
        with self._lock:
            self._stats(model).rejected += 1

    def record_timeout(self, model: str) -> None:
        with self._lock:
            self._stats(model).timeouts += 1

    def record_error(self, model: str, count: int = 1) -> None:
        with self._lock:
            self._stats(model).errors += count

    def record_batch(self, model: str, size: int) -> None:
        with self._lock:
            self._stats(model).batch_sizes[int(size)] += 1

    def record_completed(self, model: str, latency_s: float) -> None:
        with self._lock:
            stats = self._stats(model)
            stats.completed += 1
            stats.latencies.append(latency_s)

    def attach_reuse_probe(self, model: str, probe: Callable[[], dict]) -> None:
        with self._lock:
            self._reuse_probes[model] = probe

    # --- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A serialisable view: queue depth, per-model latency percentiles,
        batch-size histogram, counters, and reuse-cache hit rates."""
        with self._lock:
            models = {
                name: (stats, list(stats.latencies), dict(stats.batch_sizes))
                for name, stats in self._models.items()
            }
            probes = dict(self._reuse_probes)
            depth_probe = self.depth_probe
        result = {
            "queue_depth": depth_probe() if depth_probe is not None else 0,
            "models": {},
        }
        for name, (stats, latencies, batch_sizes) in models.items():
            entry = {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "timeouts": stats.timeouts,
                "errors": stats.errors,
                "latency_ms": {
                    "p50": percentile(latencies, 50) * 1e3,
                    "p95": percentile(latencies, 95) * 1e3,
                    "p99": percentile(latencies, 99) * 1e3,
                    "max": max(latencies) * 1e3 if latencies else 0.0,
                    "mean": (sum(latencies) / len(latencies)) * 1e3
                    if latencies else 0.0,
                },
                "batch_sizes": batch_sizes,
            }
            probe = probes.get(name)
            if probe is not None:
                entry["reuse"] = probe()
            result["models"][name] = entry
        return result
