"""Observability for the scoring service.

One :class:`ServingMetrics` instance aggregates per-model counters, a
sliding window of request latencies (for percentiles), a batch-size
histogram, and — for the multi-process data plane — per-tenant QoS
counters and per-worker lifecycle/attach counters.  ``snapshot()``
returns a plain dict so benches and operators can serialise it directly
(``BENCH_serving.json``).

All record methods are thread-safe: workers, the admission path, and
readers share one lock, and snapshots are consistent copies — every
counter is read *under* the lock, so a snapshot can never observe
``completed > submitted`` or torn percentile windows while recorders
run concurrently.
"""

from __future__ import annotations

import collections
import math
import threading
from typing import Callable, Dict, Optional

#: Latencies kept per model for percentile estimation (sliding window).
DEFAULT_WINDOW = 4096


def percentile(samples, q: float) -> float:
    """The q-th percentile (0..100) of a sample list, nearest-rank method."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _latency_entry(latencies) -> dict:
    return {
        "p50": percentile(latencies, 50) * 1e3,
        "p95": percentile(latencies, 95) * 1e3,
        "p99": percentile(latencies, 99) * 1e3,
        "max": max(latencies) * 1e3 if latencies else 0.0,
        "mean": (sum(latencies) / len(latencies)) * 1e3 if latencies else 0.0,
    }


class _ModelStats:
    """Mutable per-model counters (guarded by the owning metrics lock)."""

    __slots__ = (
        "submitted", "completed", "rejected", "timeouts", "errors",
        "latencies", "batch_sizes",
    )

    def __init__(self, window: int):
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.latencies = collections.deque(maxlen=window)
        self.batch_sizes: Dict[int, int] = collections.Counter()


class _TenantStats:
    """Per-tenant QoS counters (guarded by the owning metrics lock)."""

    __slots__ = ("submitted", "completed", "throttled", "rejected")

    def __init__(self):
        self.submitted = 0
        self.completed = 0
        self.throttled = 0
        self.rejected = 0


class _WorkerStats:
    """Per-worker-process lifecycle counters (guarded by the metrics lock)."""

    __slots__ = (
        "batches", "requests", "deaths", "respawns", "resent_requests",
        "shm_segments_attached", "shm_checksums_verified",
    )

    def __init__(self):
        self.batches = 0
        self.requests = 0
        self.deaths = 0
        self.respawns = 0
        self.resent_requests = 0
        self.shm_segments_attached = 0
        self.shm_checksums_verified = 0


class ServingMetrics:
    """Thread-safe counters + latency/batch histograms for one service."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._window = window
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelStats] = {}
        self._tenants: Dict[str, _TenantStats] = {}
        self._workers: Dict[int, _WorkerStats] = {}
        #: Callable returning the live admission-queue depth (wired by the
        #: service); kept as a probe so snapshots never go stale.
        self.depth_probe: Optional[Callable[[], int]] = None
        #: Per-model reuse-cache snapshot probes (wired by the service).
        self._reuse_probes: Dict[str, Callable[[], dict]] = {}

    def _stats(self, model: str) -> _ModelStats:
        stats = self._models.get(model)
        if stats is None:
            stats = self._models[model] = _ModelStats(self._window)
        return stats

    def _tenant(self, tenant: str) -> _TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = _TenantStats()
        return stats

    def _worker(self, worker: int) -> _WorkerStats:
        stats = self._workers.get(worker)
        if stats is None:
            stats = self._workers[worker] = _WorkerStats()
        return stats

    # --- recording (called by the service) ---------------------------------

    def record_submitted(self, model: str, tenant: Optional[str] = None) -> None:
        with self._lock:
            self._stats(model).submitted += 1
            if tenant is not None:
                self._tenant(tenant).submitted += 1

    def record_rejected(self, model: str, tenant: Optional[str] = None) -> None:
        with self._lock:
            self._stats(model).rejected += 1
            if tenant is not None:
                self._tenant(tenant).rejected += 1

    def record_throttled(self, model: str, tenant: str) -> None:
        """A request refused by the tenant's token bucket (counts as a
        rejection on the model, plus the tenant's ``throttled``)."""
        with self._lock:
            self._stats(model).rejected += 1
            stats = self._tenant(tenant)
            stats.rejected += 1
            stats.throttled += 1

    def record_timeout(self, model: str) -> None:
        with self._lock:
            self._stats(model).timeouts += 1

    def record_error(self, model: str, count: int = 1) -> None:
        with self._lock:
            self._stats(model).errors += count

    def record_batch(self, model: str, size: int) -> None:
        with self._lock:
            self._stats(model).batch_sizes[int(size)] += 1

    def record_completed(self, model: str, latency_s: float,
                         tenant: Optional[str] = None) -> None:
        with self._lock:
            stats = self._stats(model)
            stats.completed += 1
            stats.latencies.append(latency_s)
            if tenant is not None:
                self._tenant(tenant).completed += 1

    # --- recording (multi-process data plane) -------------------------------

    def record_worker_attach(self, worker: int, segments: int,
                             verified: int) -> None:
        """A worker process finished its ready handshake: it attached
        ``segments`` shared-memory weight segments, ``verified`` of which
        passed their content checksum."""
        with self._lock:
            stats = self._worker(worker)
            stats.shm_segments_attached += segments
            stats.shm_checksums_verified += verified

    def record_worker_batch(self, worker: int, requests: int) -> None:
        with self._lock:
            stats = self._worker(worker)
            stats.batches += 1
            stats.requests += requests

    def record_worker_death(self, worker: int) -> None:
        with self._lock:
            self._worker(worker).deaths += 1

    def record_worker_respawn(self, worker: int, resent: int = 0) -> None:
        with self._lock:
            stats = self._worker(worker)
            stats.respawns += 1
            stats.resent_requests += resent

    def attach_reuse_probe(self, model: str, probe: Callable[[], dict]) -> None:
        with self._lock:
            self._reuse_probes[model] = probe

    # --- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A serialisable view: queue depth, per-model latency percentiles,
        batch-size histogram, counters, reuse-cache hit rates, and (when the
        multi-process plane is active) tenant and worker sections.

        Every mutable field is copied while the lock is held; percentile
        math runs on the copies afterwards so recorders are never blocked
        on sorting.
        """
        with self._lock:
            models = {
                name: {
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "rejected": stats.rejected,
                    "timeouts": stats.timeouts,
                    "errors": stats.errors,
                    "latencies": list(stats.latencies),
                    "batch_sizes": dict(stats.batch_sizes),
                }
                for name, stats in self._models.items()
            }
            tenants = {
                name: {
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "throttled": stats.throttled,
                    "rejected": stats.rejected,
                }
                for name, stats in self._tenants.items()
            }
            workers = {
                worker: {
                    "batches": stats.batches,
                    "requests": stats.requests,
                    "deaths": stats.deaths,
                    "respawns": stats.respawns,
                    "resent_requests": stats.resent_requests,
                    "shm_segments_attached": stats.shm_segments_attached,
                    "shm_checksums_verified": stats.shm_checksums_verified,
                }
                for worker, stats in self._workers.items()
            }
            probes = dict(self._reuse_probes)
            depth_probe = self.depth_probe
        result = {
            "queue_depth": depth_probe() if depth_probe is not None else 0,
            "models": {},
        }
        for name, entry in models.items():
            latencies = entry.pop("latencies")
            entry["latency_ms"] = _latency_entry(latencies)
            probe = probes.get(name)
            if probe is not None:
                entry["reuse"] = probe()
            result["models"][name] = entry
        if tenants:
            result["tenants"] = tenants
        if workers:
            result["workers"] = {str(k): v for k, v in workers.items()}
        return result
