"""Core enumerations shared across the compiler, runtime, and data model.

These mirror the type lattice of SystemDS: every value in a DML program has a
``DataType`` (scalar, matrix, tensor, frame, list) and — for scalars and
tensor cells — a ``ValueType``.  ``ExecType`` tags low-level operators with
the backend selected by the compiler, and ``FileFormat`` enumerates the
persistent representations understood by the I/O layer.
"""

from __future__ import annotations

import enum

import numpy as np


class ValueType(enum.Enum):
    """Cell/scalar value types supported by tensor blocks (paper section 2.4)."""

    FP32 = "fp32"
    FP64 = "fp64"
    INT32 = "int32"
    INT64 = "int64"
    BOOLEAN = "boolean"
    STRING = "string"
    UNKNOWN = "unknown"

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_VALUE_TYPES

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used to store cells of this value type."""
        return _NUMPY_DTYPES[self]

    @classmethod
    def from_numpy_dtype(cls, dtype) -> "ValueType":
        """Map a NumPy dtype (or anything ``np.dtype`` accepts) to a ValueType."""
        # dict fast path: dtype instances hash by identity semantics, and
        # this mapping sits on the per-intermediate hot path of the runtime
        value_type = _VALUE_TYPES_BY_DTYPE.get(dtype)
        if value_type is not None:
            return value_type
        dtype = np.dtype(dtype)
        value_type = _VALUE_TYPES_BY_DTYPE.get(dtype)
        if value_type is not None:
            return value_type
        if dtype.kind in ("U", "S", "O"):
            return cls.STRING
        raise ValueError(f"unsupported numpy dtype: {dtype}")

    @classmethod
    def common(cls, a: "ValueType", b: "ValueType") -> "ValueType":
        """The smallest value type that can represent both inputs."""
        if a == b:
            return a
        if cls.STRING in (a, b):
            return cls.STRING
        order = [cls.BOOLEAN, cls.INT32, cls.INT64, cls.FP32, cls.FP64]
        try:
            return order[max(order.index(a), order.index(b))]
        except ValueError:
            return cls.UNKNOWN


_NUMERIC_VALUE_TYPES = frozenset(
    {ValueType.FP32, ValueType.FP64, ValueType.INT32, ValueType.INT64, ValueType.BOOLEAN}
)

_NUMPY_DTYPES = {
    ValueType.FP32: np.dtype(np.float32),
    ValueType.FP64: np.dtype(np.float64),
    ValueType.INT32: np.dtype(np.int32),
    ValueType.INT64: np.dtype(np.int64),
    ValueType.BOOLEAN: np.dtype(np.bool_),
    ValueType.STRING: np.dtype(object),
    ValueType.UNKNOWN: np.dtype(np.float64),
}

#: Reverse mapping for ``from_numpy_dtype`` (object dtype maps to STRING;
#: UNKNOWN shares FP64 and must not shadow it).
_VALUE_TYPES_BY_DTYPE = {
    np.dtype(np.float32): ValueType.FP32,
    np.dtype(np.float64): ValueType.FP64,
    np.dtype(np.int32): ValueType.INT32,
    np.dtype(np.int64): ValueType.INT64,
    np.dtype("int"): ValueType.INT64,
    np.dtype(np.bool_): ValueType.BOOLEAN,
    np.dtype(object): ValueType.STRING,
}


class DataType(enum.Enum):
    """High-level data types of DML variables."""

    SCALAR = "scalar"
    MATRIX = "matrix"
    TENSOR = "tensor"
    FRAME = "frame"
    LIST = "list"
    UNKNOWN = "unknown"


class ExecType(enum.Enum):
    """Backend selected for a low-level operator (paper Figure 3, step 4)."""

    CP = "cp"  # local control-program instruction
    SPARK = "spark"  # distributed instruction on the SimRDD backend
    FED = "fed"  # federated instruction
    GPU = "gpu"  # reserved; lowered to CP in this reproduction


class FileFormat(enum.Enum):
    """Persistent file formats understood by the I/O layer."""

    CSV = "csv"
    BINARY = "binary"
    JSONL = "jsonl"
    TEXT = "text"  # i,j,v text cells (matrix market style)

    @classmethod
    def parse(cls, name: str) -> "FileFormat":
        try:
            return cls(name.lower())
        except ValueError:
            raise ValueError(f"unknown file format: {name!r}") from None


class Direction(enum.Enum):
    """Aggregation direction for (partial) aggregates."""

    FULL = "full"
    ROW = "row"  # aggregate each row -> column vector
    COL = "col"  # aggregate each column -> row vector
