"""The checkpoint manager: snapshot at boundaries, restore, fast-forward.

One :class:`CheckpointManager` serves the *main* interpretation frame of a
run (function-call and parfor frames never snapshot — ``ctx.child()``
deliberately drops the manager), tracking a live stack of cursor frames
as the interpreter enters block sequences, loops, and branches.  At every
while/for iteration boundary, after a completed parfor, and after each
top-level statement block, :meth:`boundary` fires; every
``checkpoint_every``-th boundary serialises the live symbol table plus
the cursor stack into the checkpoint directory.

Snapshots are incremental along two axes:

* **lineage skip** — a variable whose lineage hash equals the one stored
  at the previous checkpoint reuses its data file without even
  serialising the payload (the lineage key identifies the deterministic
  computation that produced the value);
* **content addressing** — payloads are stored under their blake2b
  checksum, so identical content is never written twice even without
  lineage.

The data files land first (atomic, fsynced), the manifest last — the
manifest write is the commit point.  After a commit, data files no longer
referenced are garbage collected.

Resume is restore + fast-forward: :meth:`prepare_resume` validates the
manifest, :meth:`begin` rebinds every saved variable into the fresh
context (matrices re-register with the buffer pool and get conservative
``ckpt`` lineage leaves, so reuse stays sound after resume), restores the
deterministic seed stream, and arms the saved cursor path.  The
interpreter then consumes the path frame by frame: completed blocks are
skipped, loops re-enter at the saved iteration with their originally
evaluated bounds (bounds are *not* re-evaluated — the symbol state has
moved on since loop entry), and ``if`` branches replay the recorded
decision without re-evaluating predicates.  Because snapshots happen at
iteration boundaries, the restored state is exactly the state an
uninterrupted run has at that point — resumed runs are bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from typing import Dict, List, Optional, Tuple

from repro.checkpoint import manifest as manifest_mod
from repro.errors import CheckpointError, CorruptCheckpointError
from repro.io.atomic import atomic_write_bytes, atomic_write_json, checksum_bytes


def script_fingerprint(source: str) -> str:
    """Identity of a script for resume-compatibility checks."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class CheckpointManager:
    """Snapshots and restores one run's state at loop boundaries."""

    def __init__(self, directory: str, every: int = 1,
                 fingerprint: Optional[str] = None,
                 clock=time.perf_counter):
        if every < 1:
            raise CheckpointError("checkpoint_every must be >= 1")
        self.directory = directory
        self.every = every
        #: sha256 of the script this checkpoint belongs to (None = unknown).
        self.fingerprint = fingerprint
        self._clock = clock
        os.makedirs(directory, exist_ok=True)
        self._stack: List[list] = []        # live cursor frames
        self._resume_path: List[list] = []  # frames left to fast-forward
        self._pending: Optional[dict] = None  # validated manifest to restore
        self._boundaries = 0
        self._checkpoint_id = 0
        #: lineage key hex -> (data file, checksum) at the last checkpoint.
        self._by_lineage: Dict[str, Tuple[str, str]] = {}
        self._stats = {
            "boundaries": 0,
            "checkpoints_written": 0,
            "entries_written": 0,
            "entries_skipped": 0,
            "bytes_written": 0,
            "restores": 0,
            "restore_time_s": 0.0,
            "checkpoint_time_s": 0.0,
        }

    @classmethod
    def from_config(cls, config, fingerprint: Optional[str] = None) -> "CheckpointManager":
        return cls(config.checkpoint_dir, every=config.checkpoint_every,
                   fingerprint=fingerprint)

    @property
    def manifest_path(self) -> str:
        return manifest_mod.manifest_path(self.directory)

    def bind_fingerprint(self, fingerprint: str) -> None:
        """Record the identity of the script about to execute."""
        self.fingerprint = fingerprint

    # --- resume -------------------------------------------------------------

    def prepare_resume(self) -> dict:
        """Validate the manifest and arm the next :meth:`begin` to restore.

        Raises :class:`CheckpointError` when there is nothing to resume and
        :class:`CorruptCheckpointError` when validation fails; the caller
        (CLI) turns both into clean diagnostics.
        """
        self._pending = manifest_mod.load_manifest(self.directory)
        return self._pending

    @property
    def resuming(self) -> bool:
        """True while the interpreter is still fast-forwarding."""
        return bool(self._resume_path)

    @property
    def resumed(self) -> bool:
        """True once this run restored state from a checkpoint.

        Unlike :attr:`resuming` this stays set after the fast-forward path
        drains — the trace cache keys invalidation on it, because restored
        symbol tables may not match the shapes hot traces were compiled
        against.
        """
        return self._stats["restores"] > 0

    def begin(self, ctx) -> None:
        """Start (or resume) a program run against ``ctx``."""
        self._stack = []
        self._resume_path = []
        if self._pending is None:
            return
        data, self._pending = self._pending, None
        recorded = data.get("fingerprint")
        if self.fingerprint and recorded and recorded != self.fingerprint:
            raise CheckpointError(
                "checkpoint manifest was written by a different script "
                "(fingerprint mismatch) — refusing to resume"
            )
        start = self._clock()
        self._by_lineage = {
            entry["lineage"]: (entry["file"], entry["checksum"])
            for entry in data["variables"].values()
            if entry.get("lineage") and entry.get("file")
        }
        for name, entry in data["variables"].items():
            ctx.set(name, self._thaw(name, entry, ctx))
        ctx._seed_state = int(data["seed_state"])
        for key, value in data.get("metrics", {}).items():
            ctx.metrics[key] = value
        self._boundaries = int(data["boundary"])
        self._checkpoint_id = int(data["checkpoint_id"])
        self._resume_path = [list(frame) for frame in data["path"]]
        self._stats["restores"] += 1
        self._stats["restore_time_s"] += self._clock() - start

    def finish(self, ctx) -> None:
        """Mark the run completed (a later ``--resume`` fails cleanly)."""
        manifest = {
            "version": manifest_mod.MANIFEST_VERSION,
            "completed": True,
            "checkpoint_id": self._checkpoint_id,
            "fingerprint": self.fingerprint,
            "boundary": self._boundaries,
            "path": [],
            "seed_state": ctx._seed_state,
            "metrics": dict(ctx.metrics),
            "variables": {},
        }
        atomic_write_json(self.manifest_path, manifest)
        self._by_lineage = {}
        self._gc(set())
        self._stack = []

    # --- cursor tracking (called by the interpreter) -------------------------

    def _pop_frame(self, expected: str) -> list:
        frame = self._resume_path.pop(0)
        if frame[0] != expected:
            raise CorruptCheckpointError(
                f"resume cursor expected a {expected!r} frame, found "
                f"{frame!r} — the checkpoint does not match the program"
            )
        return frame

    def enter_seq(self) -> int:
        """Enter a block sequence; returns the index to start at."""
        start = 0
        if self._resume_path:
            start = int(self._pop_frame("seq")[1])
        self._stack.append(["seq", start])
        return start

    def advance_seq(self, index: int) -> None:
        self._stack[-1][1] = index

    def exit_seq(self) -> None:
        self._stack.pop()

    def enter_if(self, branch: bool) -> None:
        self._stack.append(["if", bool(branch)])

    def resume_if(self) -> bool:
        """Replay the recorded branch decision instead of the predicate."""
        branch = bool(self._pop_frame("if")[1])
        self._stack.append(["if", branch])
        return branch

    def exit_if(self) -> None:
        self._stack.pop()

    def enter_for(self) -> Optional[Tuple[int, int, int]]:
        """Enter a for loop; a resume returns the saved (i, stop, step)."""
        if self._resume_path:
            frame = self._pop_frame("for")
            i, stop, step = int(frame[1]), int(frame[2]), int(frame[3])
            self._stack.append(["for", i, stop, step])
            return i, stop, step
        self._stack.append(["for", 0, 0, 1])
        return None

    def set_for_bounds(self, i: int, stop: int, step: int) -> None:
        frame = self._stack[-1]
        frame[1], frame[2], frame[3] = int(i), int(stop), int(step)

    def for_iter(self, i: int) -> None:
        self._stack[-1][1] = int(i)

    def enter_while(self) -> int:
        """Enter a while loop; returns completed iterations (resume only)."""
        n = 0
        if self._resume_path:
            n = int(self._pop_frame("while")[1])
        self._stack.append(["while", n])
        return n

    def while_iter(self, n: int) -> None:
        self._stack[-1][1] = int(n)

    def exit_loop(self) -> None:
        self._stack.pop()

    # --- boundaries and snapshots --------------------------------------------

    def boundary(self, ctx) -> None:
        """One iteration/top-level boundary; snapshot on cadence."""
        if self._resume_path:
            return  # still fast-forwarding (defensive; should be drained)
        self._boundaries += 1
        self._stats["boundaries"] += 1
        if self._boundaries % self.every:
            return
        self._snapshot(ctx)

    def _serialize_path(self) -> List[list]:
        """The cursor stack as a resume path.

        The innermost frame is advanced past the work already completed:
        a top-level ``seq`` boundary fires *after* block ``k``, so resume
        starts at ``k + 1``; a ``for`` boundary fires after iteration
        ``i``, so resume starts at ``i + step``.  ``while`` frames record
        completed iterations and re-evaluate their predicate on resume.
        Outer frames stay put — resume descends *into* them.
        """
        path = [list(frame) for frame in self._stack]
        if path:
            last = path[-1]
            if last[0] == "seq":
                last[1] += 1
            elif last[0] == "for":
                last[1] += last[3]
        return path

    def _snapshot(self, ctx) -> None:
        start = self._clock()
        self._checkpoint_id += 1
        variables = {}
        by_lineage: Dict[str, Tuple[str, str]] = {}
        referenced = set()
        for name in sorted(ctx.variables):
            if name.startswith("_t"):
                continue  # instruction temps never survive a boundary
            entry = self._freeze(name, ctx.variables[name], ctx)
            variables[name] = entry
            if entry.get("file"):
                referenced.add(os.path.basename(entry["file"]))
                if entry.get("lineage"):
                    by_lineage[entry["lineage"]] = (entry["file"], entry["checksum"])
        manifest = {
            "version": manifest_mod.MANIFEST_VERSION,
            "completed": False,
            "checkpoint_id": self._checkpoint_id,
            "fingerprint": self.fingerprint,
            "boundary": self._boundaries,
            "path": self._serialize_path(),
            "seed_state": ctx._seed_state,
            "metrics": dict(ctx.metrics),
            "variables": variables,
        }
        atomic_write_json(self.manifest_path, manifest)  # the commit point
        self._by_lineage = by_lineage
        self._gc(referenced)
        self._stats["checkpoints_written"] += 1
        self._stats["checkpoint_time_s"] += self._clock() - start

    def _gc(self, referenced) -> None:
        """Drop data files the just-committed manifest does not reference."""
        data_dir = os.path.join(self.directory, manifest_mod.DATA_DIR)
        try:
            names = os.listdir(data_dir)
        except OSError:
            return
        for name in names:
            if name not in referenced:
                try:
                    os.unlink(os.path.join(data_dir, name))
                except OSError:
                    pass

    # --- freeze / thaw --------------------------------------------------------

    def _freeze(self, name: str, value, ctx) -> dict:
        from repro.runtime.data import ScalarObject

        if isinstance(value, ScalarObject):
            return {
                "kind": "scalar",
                "value_type": value.value_type.value,
                "value": value.value,
            }
        lineage = None
        if ctx.tracer is not None:
            item = ctx.tracer.get(name)
            if item is not None:
                lineage = item.key.hex()
                cached = self._by_lineage.get(lineage)
                if cached is not None:
                    # unchanged since the last checkpoint: reuse its file
                    filename, checksum = cached
                    self._stats["entries_skipped"] += 1
                    return {
                        "kind": "data",
                        "type": _type_tag(value),
                        "file": filename,
                        "checksum": checksum,
                        "lineage": lineage,
                    }
        tag, payload = _freeze_payload(value, ctx)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        checksum = checksum_bytes(data)
        filename = os.path.join(manifest_mod.DATA_DIR, f"ck-{checksum}.bin")
        full = os.path.join(self.directory, filename)
        if os.path.exists(full):
            self._stats["entries_skipped"] += 1  # content-addressed dedup
        else:
            atomic_write_bytes(full, data, fsync=True)
            self._stats["entries_written"] += 1
            self._stats["bytes_written"] += len(data)
        return {
            "kind": "data",
            "type": tag,
            "file": filename,
            "checksum": checksum,
            "lineage": lineage,
        }

    def _thaw(self, name: str, entry: dict, ctx):
        from repro.runtime.data import ScalarObject
        from repro.types import ValueType

        if entry.get("kind") == "scalar":
            return ScalarObject(entry["value"], ValueType(entry["value_type"]))
        full = os.path.join(self.directory, entry["file"])
        try:
            with open(full, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise CorruptCheckpointError(
                f"checkpoint data file {full} (variable {name!r}) cannot be "
                f"deserialised: {exc}"
            ) from exc
        value = _thaw_payload(entry.get("type", "matrix"), payload, ctx)
        if ctx.tracer is not None:
            # a conservative fresh lineage leaf: deterministic in the stored
            # hash, so no false reuse hits, and the first post-resume
            # snapshot still lineage-skips unchanged restored variables
            ref = entry.get("lineage") or entry.get("checksum") or ""
            item = ctx.tracer.make("ckpt", (), f"{name}:{ref}")
            ctx.tracer.items[name] = item
            self._by_lineage[item.key.hex()] = (entry["file"], entry["checksum"])
        return value

    # --- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        """Stats for the obs ``checkpoint`` section."""
        stats = dict(self._stats)
        total = stats["entries_written"] + stats["entries_skipped"]
        stats["skip_rate"] = stats["entries_skipped"] / total if total else 0.0
        stats["last_checkpoint_id"] = self._checkpoint_id
        return stats


# ---------------------------------------------------------------------------
# payload freezing (handles -> picklable payloads and back)
# ---------------------------------------------------------------------------


def _type_tag(value) -> str:
    from repro.runtime.data import (
        FrameObject, ListObject, MatrixObject, TensorObject,
    )

    if isinstance(value, TensorObject) and value.data_tensor is not None:
        return "tensor"
    if isinstance(value, MatrixObject):
        return "matrix"
    if isinstance(value, FrameObject):
        return "frame"
    if isinstance(value, ListObject):
        return "list"
    raise CheckpointError(
        f"cannot checkpoint a variable of type {type(value).__name__}"
    )


def _local_block(value, ctx):
    """A matrix handle's payload as one local block, without mutating the
    handle (checkpointing must be observationally transparent)."""
    from repro.runtime.data import Representation

    if value.representation == Representation.LOCAL:
        return value.acquire_local()
    if value.rdd is not None:
        return value.rdd.collect_local()
    from repro.federated.instructions import collect_federated

    channel = ctx.faults.channel if ctx.faults is not None else None
    return collect_federated(value.federated, channel=channel)


def _freeze_payload(value, ctx):
    from repro.runtime.data import (
        FrameObject, ListObject, MatrixObject, TensorObject,
    )

    if isinstance(value, TensorObject) and value.data_tensor is not None:
        return "tensor", value.data_tensor
    if isinstance(value, MatrixObject):
        return "matrix", _local_block(value, ctx)
    if isinstance(value, FrameObject):
        return "frame", value.frame
    if isinstance(value, ListObject):
        from repro.runtime.data import ScalarObject

        items = []
        for item in value.items:
            if isinstance(item, ScalarObject):
                items.append(("scalar", (item.value, item.value_type.value)))
            else:
                items.append(_freeze_payload(item, ctx))
        return "list", (value.names, items)
    raise CheckpointError(
        f"cannot checkpoint a variable of type {type(value).__name__}"
    )


def _thaw_payload(tag: str, payload, ctx):
    from repro.runtime.data import (
        FrameObject, ListObject, MatrixObject, ScalarObject, TensorObject,
    )
    from repro.types import ValueType

    if tag == "matrix":
        return MatrixObject.from_block(payload, ctx.pool)
    if tag == "tensor":
        return TensorObject.from_data_tensor(payload)
    if tag == "frame":
        return FrameObject(payload)
    if tag == "list":
        names, frozen = payload
        items = []
        for item_tag, item_payload in frozen:
            if item_tag == "scalar":
                raw, value_type = item_payload
                items.append(ScalarObject(raw, ValueType(value_type)))
            else:
                items.append(_thaw_payload(item_tag, item_payload, ctx))
        return ListObject(items, names)
    raise CorruptCheckpointError(f"unknown checkpoint payload type {tag!r}")
