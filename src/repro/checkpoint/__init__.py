"""Crash-consistent checkpoint/restore for long-running DML programs.

A :class:`CheckpointManager` rides on the main interpretation frame
(``ctx.checkpoints``, ``None`` fast path like ``ctx.stats``/``ctx.faults``)
and snapshots the live symbol table plus the loop cursor at while/for/
parfor iteration boundaries.  Snapshots are incremental — a variable whose
lineage hash (or content checksum) is unchanged since the last checkpoint
reuses its existing data file — and land through the atomic-write
primitive of :mod:`repro.io.atomic` under a versioned JSON manifest, so a
kill at any instant leaves either the previous checkpoint or the new one,
never a torn state.  ``repro-dml --resume`` restores the manifest and
fast-forwards the program to the saved block/iteration; resumed runs are
bit-identical to uninterrupted ones.
"""

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.manifest import MANIFEST_NAME, MANIFEST_VERSION, load_manifest

__all__ = [
    "CheckpointManager",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "load_manifest",
]
