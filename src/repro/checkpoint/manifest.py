"""The versioned checkpoint manifest: load, validate, verify.

A checkpoint directory holds one ``manifest.json`` (the commit point —
always written atomically, last) and a ``data/`` directory of
content-addressed pickle files, one per non-scalar variable payload::

    manifest.json             # version, cursor path, variables, seed state
    data/ck-<checksum>.bin    # pickled payload, named by its blake2b hash

The manifest's ``path`` is the loop-cursor stack at the snapshot: a list
of frames, outermost first, each ``["seq", index]``, ``["for", next_i,
stop, step]``, ``["while", iterations]``, or ``["if", branch]``.  Resume
replays the frames to fast-forward the interpreter to the exact boundary
the snapshot was taken at.

``load_manifest`` performs all structural and checksum validation up
front and raises :class:`CheckpointError`/:class:`CorruptCheckpointError`
with actionable messages, so ``repro-dml --resume`` can turn any broken
state into a clean diagnostic instead of a traceback.
"""

from __future__ import annotations

import json
import os

from repro.errors import CheckpointError, CorruptCheckpointError
from repro.io.atomic import checksum_file

#: Manifest schema version; bump on any incompatible layout change.
MANIFEST_VERSION = 1

#: File name of the manifest inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory of the checkpoint directory holding payload files.
DATA_DIR = "data"

_REQUIRED_KEYS = ("checkpoint_id", "boundary", "path", "seed_state", "variables")

_FRAME_KINDS = ("seq", "for", "while", "if")


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def load_manifest(directory: str, verify_data: bool = True) -> dict:
    """Load and validate the manifest of a checkpoint directory.

    Raises :class:`CheckpointError` when there is nothing to resume
    (missing manifest, completed run) and :class:`CorruptCheckpointError`
    when the manifest or a referenced data file fails validation.
    """
    path = manifest_path(directory)
    if not os.path.exists(path):
        raise CheckpointError(
            f"no checkpoint manifest at {path} — nothing to resume "
            f"(was the run started with --checkpoint-dir?)"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorruptCheckpointError(
            f"checkpoint manifest {path} is unreadable or not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise CorruptCheckpointError(
            f"checkpoint manifest {path} is not a JSON object"
        )
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise CorruptCheckpointError(
            f"checkpoint manifest {path} has unsupported version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    if data.get("completed"):
        raise CheckpointError(
            f"checkpoint at {directory} marks a completed run — nothing to resume"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise CorruptCheckpointError(
            f"checkpoint manifest {path} is missing required keys: {missing}"
        )
    _validate_path(data["path"], path)
    if not isinstance(data["variables"], dict):
        raise CorruptCheckpointError(
            f"checkpoint manifest {path}: 'variables' must be an object"
        )
    if verify_data:
        verify_data_files(directory, data)
    return data


def _validate_path(frames, path: str) -> None:
    if not isinstance(frames, list):
        raise CorruptCheckpointError(
            f"checkpoint manifest {path}: 'path' must be a list of frames"
        )
    for frame in frames:
        if (not isinstance(frame, list) or not frame
                or frame[0] not in _FRAME_KINDS):
            raise CorruptCheckpointError(
                f"checkpoint manifest {path}: malformed cursor frame {frame!r}"
            )


def verify_data_files(directory: str, manifest: dict) -> None:
    """Checksum-verify every data file the manifest references."""
    for name, entry in manifest["variables"].items():
        if not isinstance(entry, dict):
            raise CorruptCheckpointError(
                f"checkpoint variable {name!r} has a malformed entry"
            )
        if entry.get("kind") == "scalar":
            continue
        filename = entry.get("file")
        expected = entry.get("checksum")
        if not filename or not expected:
            raise CorruptCheckpointError(
                f"checkpoint variable {name!r} lacks a data file or checksum"
            )
        full = os.path.join(directory, filename)
        if not os.path.exists(full):
            raise CorruptCheckpointError(
                f"checkpoint data file {full} (variable {name!r}) is missing"
            )
        actual = checksum_file(full)
        if actual != expected:
            raise CorruptCheckpointError(
                f"checkpoint data file {full} (variable {name!r}) is corrupt: "
                f"checksum {actual} != recorded {expected}"
            )
