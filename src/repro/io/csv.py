"""CSV reading and writing.

The numeric reader is chunk-parallel: the file is split at line boundaries
into one chunk per thread and each chunk is parsed with a vectorised
string-to-double kernel.  String-to-double conversion is compute-intensive
(the paper's explanation for SysDS beating TF/Julia at k=1), so parallel
parsing pays off even for local files.
"""

from __future__ import annotations

import concurrent.futures
import io
import warnings
from typing import List, Optional, Sequence

from repro.io.atomic import atomic_open

import numpy as np

from repro.errors import IOFormatError
from repro.tensor import BasicTensorBlock, Frame
from repro.types import ValueType


def _parse_numeric_chunk(text: str, sep: str, cols: int) -> np.ndarray:
    """Vectorised parse of a newline-delimited numeric chunk."""
    if not text:
        return np.zeros((0, cols))
    flat = text.replace("\n", sep)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        try:
            values = np.fromstring(flat, dtype=np.float64, sep=sep)  # noqa: NPY201
        except (ValueError, AttributeError):
            values = None
    if values is None or values.size % cols != 0:
        # robust fallback (handles trailing separators and blanks)
        tokens = [t for t in flat.split(sep) if t.strip() != ""]
        values = np.asarray(tokens, dtype=np.float64)
    if values.size % cols != 0:
        raise IOFormatError(
            f"CSV chunk size {values.size} is not a multiple of {cols} columns"
        )
    return values.reshape(-1, cols)


def _split_lines(text: str, parts: int) -> List[str]:
    """Split text into ~equal chunks at line boundaries."""
    if parts <= 1 or len(text) < 1 << 16:
        return [text]
    chunks = []
    target = len(text) // parts
    start = 0
    for __ in range(parts - 1):
        cut = text.find("\n", start + target)
        if cut < 0:
            break
        chunks.append(text[start : cut + 1])
        start = cut + 1
    chunks.append(text[start:])
    return [chunk for chunk in chunks if chunk]


def read_csv_matrix(
    path: str,
    sep: str = ",",
    header: bool = False,
    num_threads: int = 1,
) -> BasicTensorBlock:
    """Read a dense numeric CSV into a tensor block (chunk-parallel parse)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if header:
        newline = text.find("\n")
        text = text[newline + 1 :] if newline >= 0 else ""
    text = text.strip("\n")
    if not text:
        return BasicTensorBlock.from_numpy(np.zeros((0, 0)))
    first_line = text.split("\n", 1)[0]
    cols = first_line.count(sep) + 1
    chunks = _split_lines(text, num_threads)
    if len(chunks) == 1:
        data = _parse_numeric_chunk(chunks[0].strip("\n"), sep, cols)
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(
                pool.map(lambda c: _parse_numeric_chunk(c.strip("\n"), sep, cols), chunks)
            )
        data = np.vstack(parts)
    return BasicTensorBlock.from_numpy(data)


def write_csv_matrix(block: BasicTensorBlock, path: str, sep: str = ",") -> None:
    data = block.to_numpy()
    if data.ndim != 2:
        raise IOFormatError("CSV writer requires a 2D block")
    with atomic_open(path, "w", encoding="utf-8", newline="") as handle:
        buffer = io.StringIO()
        np.savetxt(buffer, data, delimiter=sep, fmt="%.17g")
        handle.write(buffer.getvalue())


def read_csv_frame(
    path: str,
    sep: str = ",",
    header: bool = True,
    schema: Optional[Sequence[str]] = None,
    na_strings: Sequence[str] = ("", "NA", "null"),
) -> Frame:
    """Read a heterogeneous CSV into a frame with schema inference."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n").rstrip("\r") for line in handle if line.strip() != ""]
    if not lines:
        return Frame([], [])
    names = None
    if header:
        names = [name.strip() for name in lines[0].split(sep)]
        lines = lines[1:]
    rows = [line.split(sep) for line in lines]
    n_cols = len(rows[0]) if rows else (len(names) if names else 0)
    columns = []
    for row in rows:
        if len(row) != n_cols:
            raise IOFormatError(f"ragged CSV row: expected {n_cols} fields, got {len(row)}")
    raw_columns = [np.asarray([row[j] for row in rows], dtype=object) for j in range(n_cols)]
    value_types = []
    for j, column in enumerate(raw_columns):
        declared = schema[j] if schema is not None and j < len(schema) else None
        vt = _schema_value_type(declared) if declared else _infer_column_type(column, na_strings)
        value_types.append(vt)
        columns.append(_convert_column(column, vt, na_strings))
    return Frame(columns, value_types, names)


def _schema_value_type(name: str) -> ValueType:
    mapping = {
        "double": ValueType.FP64, "fp64": ValueType.FP64, "fp32": ValueType.FP32,
        "int": ValueType.INT64, "int64": ValueType.INT64, "int32": ValueType.INT32,
        "boolean": ValueType.BOOLEAN, "string": ValueType.STRING,
    }
    vt = mapping.get(name.strip().lower())
    if vt is None:
        raise IOFormatError(f"unknown schema type {name!r}")
    return vt


def _infer_column_type(column: np.ndarray, na_strings) -> ValueType:
    is_int = True
    is_float = True
    is_bool = True
    for value in column:
        text = str(value).strip()
        if text in na_strings:
            is_int = is_bool = False
            continue
        if text in ("TRUE", "FALSE", "true", "false"):
            is_int = is_float = False
            continue
        is_bool = False
        try:
            number = float(text)
        except ValueError:
            return ValueType.STRING
        if not number.is_integer() or "." in text or "e" in text.lower():
            is_int = False
    if is_bool:
        return ValueType.BOOLEAN
    if is_int:
        return ValueType.INT64
    if is_float:
        return ValueType.FP64
    return ValueType.STRING


def _convert_column(column: np.ndarray, value_type: ValueType, na_strings) -> np.ndarray:
    if value_type == ValueType.STRING:
        return column
    if value_type == ValueType.BOOLEAN:
        return np.asarray([str(v).strip().lower() == "true" for v in column])
    def parse(value):
        text = str(value).strip()
        if text in na_strings:
            return np.nan
        return float(text)
    floats = np.asarray([parse(v) for v in column], dtype=np.float64)
    if value_type in (ValueType.INT32, ValueType.INT64) and not np.any(np.isnan(floats)):
        return floats.astype(value_type.numpy_dtype)
    return floats


def write_csv_frame(frame: Frame, path: str, sep: str = ",", header: bool = True) -> None:
    with atomic_open(path, "w", encoding="utf-8", newline="") as handle:
        if header:
            handle.write(sep.join(frame.names) + "\n")
        for i in range(frame.num_rows):
            fields = []
            for j, vt in enumerate(frame.schema):
                value = frame.get(i, j)
                if vt == ValueType.BOOLEAN:
                    fields.append("TRUE" if value else "FALSE")
                else:
                    fields.append(str(value))
            handle.write(sep.join(fields) + "\n")
