"""Crash-consistent file writes shared by io, checkpointing, and spilling.

Every writer in the system funnels through :func:`atomic_open`: the
content is written to a temporary file in the *same* directory as the
target and published with a single ``os.replace`` — so a reader (or a
restarted process) either sees the complete previous file or the complete
new one, never a truncated mix.  Any failure mid-write unlinks the
temporary file, leaving the target untouched.

Checkpoint manifests additionally want durability, not just atomicity:
``fsync=True`` flushes the temp file to stable storage before the rename.
Spill files skip the fsync — a crashed process loses its spills anyway,
only torn files would be a problem.

``checksum_bytes``/``checksum_file`` provide the blake2b content hashes
the checkpoint manifest stores next to every data file, so a restore can
detect corruption instead of resuming from garbage.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile

#: Digest size (bytes) of the content checksums; 16 bytes matches the
#: lineage item keys, and collisions are astronomically unlikely.
DIGEST_SIZE = 16


def checksum_bytes(data: bytes) -> str:
    """Hex blake2b content hash of a byte string."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).hexdigest()


def checksum_file(path: str, chunk_size: int = 1 << 20) -> str:
    """Hex blake2b content hash of a file, streamed in chunks."""
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@contextlib.contextmanager
def atomic_open(path: str, mode: str = "w", encoding=None, newline=None,
                fsync: bool = False):
    """Open a temp file that atomically replaces ``path`` on clean exit.

    The temp file lives in the target's directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).  On any
    exception the temp file is removed and the target is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open supports write modes only, got {mode!r}")
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding, newline=newline) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes, fsync: bool = False) -> None:
    """Atomically publish ``data`` as the content of ``path``."""
    with atomic_open(path, "wb", fsync=fsync) as handle:
        handle.write(data)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8",
                      fsync: bool = False) -> None:
    """Atomically publish ``text`` as the content of ``path``."""
    with atomic_open(path, "w", encoding=encoding, fsync=fsync) as handle:
        handle.write(text)


def atomic_write_json(path: str, obj, fsync: bool = True) -> None:
    """Atomically publish ``obj`` as pretty JSON (fsynced by default:
    manifests are commit points)."""
    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True),
                      fsync=fsync)
