"""Binary block format: the fast persistent representation.

Layout: a JSON header line (shape, value type, layout) followed by raw
little-endian payload bytes — dense cell data, or CSR arrays for sparse
blocks.  Reading is zero-parse (``np.frombuffer``), the binary counterpart
to SystemDS' binary-block format on HDFS.
"""

from __future__ import annotations

import json

import numpy as np
import scipy.sparse as sp

from repro.io.atomic import atomic_open

from repro.errors import IOFormatError
from repro.tensor import BasicTensorBlock
from repro.types import ValueType

_MAGIC = b"RPBB"


def write_binary_matrix(block: BasicTensorBlock, path: str) -> None:
    with atomic_open(path, "wb") as handle:
        handle.write(_MAGIC)
        if block.is_sparse and block.ndim == 2:
            csr = block.to_scipy()
            header = {
                "layout": "csr",
                "shape": list(block.shape),
                "value_type": block.value_type.value,
                "nnz": int(csr.nnz),
            }
            _write_header(handle, header)
            handle.write(csr.indptr.astype("<i8").tobytes())
            handle.write(csr.indices.astype("<i8").tobytes())
            handle.write(csr.data.astype("<f8").tobytes())
        else:
            data = block.to_numpy()
            header = {
                "layout": "dense",
                "shape": list(data.shape),
                "value_type": block.value_type.value,
            }
            _write_header(handle, header)
            handle.write(np.ascontiguousarray(data, dtype="<f8").tobytes())


def _write_header(handle, header: dict) -> None:
    payload = json.dumps(header).encode("utf-8")
    handle.write(len(payload).to_bytes(8, "little"))
    handle.write(payload)


def read_binary_matrix(path: str) -> BasicTensorBlock:
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise IOFormatError(f"{path} is not a repro binary block file")
        header_len = int.from_bytes(handle.read(8), "little")
        header = json.loads(handle.read(header_len).decode("utf-8"))
        shape = tuple(header["shape"])
        if header["layout"] == "dense":
            count = int(np.prod(shape))
            data = np.frombuffer(handle.read(count * 8), dtype="<f8").reshape(shape)
            value_type = ValueType(header.get("value_type", "fp64"))
            return BasicTensorBlock.from_numpy(data.copy(), value_type)
        if header["layout"] == "csr":
            rows = shape[0]
            nnz = int(header["nnz"])
            indptr = np.frombuffer(handle.read((rows + 1) * 8), dtype="<i8")
            indices = np.frombuffer(handle.read(nnz * 8), dtype="<i8")
            values = np.frombuffer(handle.read(nnz * 8), dtype="<f8")
            csr = sp.csr_matrix((values.copy(), indices.copy(), indptr.copy()), shape=shape)
            return BasicTensorBlock.from_scipy(csr)
    raise IOFormatError(f"unknown binary layout {header.get('layout')!r}")
