"""Writer facade used by the ``write()`` instruction.

Writes the payload in the requested format and always emits the ``.mtd``
metadata file next to it, so later reads (and compile-time size
propagation) know dimensions without scanning.

Every write is crash-consistent: data lands in a temp file in the target
directory and is published with an atomic rename
(:func:`repro.io.atomic.atomic_open`), so a process killed mid-write
never leaves a partial file visible at the destination path.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import IOFormatError
from repro.io import binary as binary_io
from repro.io import csv as csv_io
from repro.io.atomic import atomic_open
from repro.io.mtd import write_mtd
from repro.runtime.data import ScalarObject
from repro.tensor import BasicTensorBlock, Frame


def _param_str(params: Dict, name: str, default: str) -> str:
    value = params.get(name)
    if value is None:
        return default
    if isinstance(value, ScalarObject):
        return value.as_string()
    return str(value)


def _param_bool(params: Dict, name: str, default: bool) -> bool:
    value = params.get(name)
    if value is None:
        return default
    if isinstance(value, ScalarObject):
        return value.as_bool()
    return bool(value)


def write_matrix(block: BasicTensorBlock, path: str, params: Dict) -> None:
    format_name = _param_str(params, "format", "csv")
    if format_name == "csv":
        csv_io.write_csv_matrix(block, path, sep=_param_str(params, "sep", ","))
    elif format_name == "binary":
        binary_io.write_binary_matrix(block, path)
    elif format_name == "text":
        _write_text_cells(block, path)
    else:
        raise IOFormatError(f"unknown format {format_name!r}")
    write_mtd(
        path, block.num_rows, block.num_cols, block.nnz,
        data_type="matrix", format_name=format_name,
    )


def _write_text_cells(block: BasicTensorBlock, path: str) -> None:
    csr = block.to_scipy().tocoo()
    with atomic_open(path, "w", encoding="utf-8") as handle:
        for i, j, v in zip(csr.row, csr.col, csr.data):
            handle.write(f"{i + 1} {j + 1} {v:.17g}\n")


def write_frame(frame: Frame, path: str, params: Dict) -> None:
    format_name = _param_str(params, "format", "csv")
    if format_name != "csv":
        raise IOFormatError(f"frames support csv only, not {format_name!r}")
    header = _param_bool(params, "header", True)
    csv_io.write_csv_frame(frame, path, sep=_param_str(params, "sep", ","), header=header)
    write_mtd(
        path, frame.num_rows, frame.num_cols, -1,
        data_type="frame", format_name="csv", header=header,
        schema=[vt.value for vt in frame.schema],
    )


def write_scalar(value, path: str, params: Dict) -> None:
    with atomic_open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    write_mtd(path, 1, 1, 1, data_type="scalar", format_name="text")
