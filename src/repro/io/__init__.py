"""Data ingestion and persistence (paper section 3.2).

Readers/writers for CSV, JSON-lines, text-cell, and a binary block format,
plus JSON ``.mtd`` metadata files and a generator that compiles efficient
readers/writers from high-level format descriptors.
"""

from repro.io.formats import DelimitedFormat, FormatDescriptor, JsonLinesFormat
from repro.io.generator import generate_reader, generate_writer

__all__ = [
    "DelimitedFormat",
    "FormatDescriptor",
    "JsonLinesFormat",
    "generate_reader",
    "generate_writer",
]
