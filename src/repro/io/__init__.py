"""Data ingestion and persistence (paper section 3.2).

Readers/writers for CSV, JSON-lines, text-cell, and a binary block format,
plus JSON ``.mtd`` metadata files and a generator that compiles efficient
readers/writers from high-level format descriptors.
"""

from repro.io.formats import DelimitedFormat, FormatDescriptor, JsonLinesFormat
from repro.io.generator import generate_reader, generate_writer
from repro.io.shm import (
    SegmentSpec,
    SharedSegment,
    SharedWeightStore,
    scavenge_orphan_segments,
)

__all__ = [
    "DelimitedFormat",
    "FormatDescriptor",
    "JsonLinesFormat",
    "SegmentSpec",
    "SharedSegment",
    "SharedWeightStore",
    "generate_reader",
    "generate_writer",
    "scavenge_orphan_segments",
]
