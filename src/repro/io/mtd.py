"""JSON metadata (``.mtd``) files accompanying persistent data.

SystemDS stores dimensions, sparsity, and format next to every written
file; readers use the metadata to skip inference and the compiler uses it
for compile-time size propagation of ``read()`` calls.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import IOFormatError
from repro.io.atomic import atomic_open


def mtd_path(path: str) -> str:
    return path + ".mtd"


def write_mtd(
    path: str,
    rows: int,
    cols: int,
    nnz: int = -1,
    data_type: str = "matrix",
    format_name: str = "csv",
    header: bool = False,
    schema: Optional[list] = None,
) -> None:
    meta = {
        "rows": int(rows),
        "cols": int(cols),
        "nnz": int(nnz),
        "data_type": data_type,
        "format": format_name,
        "header": bool(header),
    }
    if schema is not None:
        meta["schema"] = schema
    with atomic_open(mtd_path(path), "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)


def read_mtd(path: str) -> Optional[dict]:
    """The metadata for a data file, or None when absent."""
    candidate = mtd_path(path)
    if not os.path.exists(candidate):
        return None
    try:
        with open(candidate, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise IOFormatError(f"malformed metadata file {candidate}: {exc}") from exc
