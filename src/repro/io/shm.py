"""Content-addressed shared-memory weight segments for multi-process serving.

The single-process serving layer pins model weights in the buffer pool;
the multi-process data plane promotes them into POSIX shared memory so N
scoring workers read the *same* physical pages — zero copies per worker,
zero serialisation per request.

The design mirrors the crash-consistency idioms used elsewhere:

* **content addressing** — a segment's name derives from the blake2b
  checksum of its payload (the same :func:`~repro.io.atomic.checksum_bytes`
  scheme the checkpoint manifest uses for ``w-<checksum>.bin`` weight
  files), so publishing the same weights twice dedupes to one segment;
* **atomic publish** — shared memory cannot ``os.replace``, so the commit
  point is a single ``committed`` flag byte in the segment header written
  *after* the payload; attachers treat an uncommitted segment exactly like
  a missing file;
* **orphan scavenging** — the header carries the publisher's pid; on
  store construction, segments whose owner is provably dead are unlinked
  (the spill-directory ``owner.pid`` pattern of the buffer pool).

Workers attach with :meth:`SharedWeightStore.attach`, which verifies the
payload checksum end-to-end and yields a **read-only, zero-copy** NumPy
view; :meth:`SharedSegment.as_block` wraps it as a dense tensor block
with the nnz metadata threaded from the header (no re-scan on attach).
"""

from __future__ import annotations

import os
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SharedSegmentError
from repro.io.atomic import checksum_bytes
from repro.tensor.block import BasicTensorBlock
from repro.tensor.dense import DenseStore
from repro.types import ValueType


def _pid_alive(pid: int) -> bool:
    """True when a process with this pid exists (signal-0 probe).

    Same semantics as the buffer pool's spill-dir scavenger (not imported
    from there: ``bufferpool`` itself imports :mod:`repro.io`).
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned by someone else — leave it alone
    return True

#: Segment-name prefix (also the scavenging filter under ``/dev/shm``).
SHM_PREFIX = "rshm-"

#: Where POSIX shared memory surfaces as files (Linux); scavenging is a
#: no-op on platforms without it.
SHM_DIR = "/dev/shm"

#: Header layout: magic, version, committed flag, owner pid, payload
#: checksum (hex ascii), payload bytes, nnz, ndim, shape (up to 6 dims),
#: value-type string.  The committed byte at :data:`_COMMIT_OFFSET` is
#: the publish commit point — written last, checked first.
_MAGIC = b"RSHM"
_VERSION = 1
_HEADER = struct.Struct("<4sBB2xQ32sQqQ6Q16s")
_COMMIT_OFFSET = 5
_MAX_DIMS = 6
HEADER_SIZE = 160

#: How long an attacher waits for a concurrent publisher's commit flag.
_COMMIT_WAIT_S = 2.0


class SegmentSpec:
    """Picklable descriptor of one published segment (sent to workers)."""

    __slots__ = ("name", "shape", "value_type", "nnz", "checksum", "nbytes")

    def __init__(self, name: str, shape: Tuple[int, ...], value_type: str,
                 nnz: int, checksum: str, nbytes: int):
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.value_type = value_type
        self.nnz = int(nnz)
        self.checksum = checksum
        self.nbytes = int(nbytes)

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SegmentSpec({self.name}, shape={self.shape}, "
            f"vt={self.value_type}, nnz={self.nnz})"
        )


class SharedSegment:
    """An attached segment: a read-only zero-copy array over shared pages."""

    __slots__ = ("spec", "array", "_shm")

    def __init__(self, spec: SegmentSpec, shm, array: np.ndarray):
        self.spec = spec
        self.array = array
        self._shm = shm

    def as_block(self) -> BasicTensorBlock:
        """The payload as a dense tensor block (still zero-copy).

        The nnz from the segment header seeds the dense store's cache, so
        binding the weights into a MatrixObject never re-scans the array.
        """
        value_type = ValueType(self.spec.value_type)
        nnz = self.spec.nnz if self.spec.nnz >= 0 else None
        return BasicTensorBlock(DenseStore(self.array, value_type, nnz))

    def close(self) -> None:
        self.array = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # blocks built over this segment are still alive somewhere;
                # leak the mapping (the OS reclaims it at process exit) but
                # drop the fd and disarm __del__'s doomed close() retry
                try:
                    fd = getattr(self._shm, "_fd", -1)
                    if fd >= 0:
                        os.close(fd)
                        self._shm._fd = -1
                    self._shm._mmap = None
                except (OSError, AttributeError):  # pragma: no cover
                    pass
            self._shm = None


#: Segment names this *process* created.  Attach-side untracking must not
#: strip the creator's own resource-tracker registration (its ``unlink``
#: unregisters, and a double-unregister trips tracker warnings).
_PUBLISHED_HERE = set()

#: Whether attaches unregister from the resource tracker.  True for
#: standalone processes (each has its *own* tracker, which would unlink
#: attached segments at exit — bpo-38119).  Scoring workers spawned by
#: the sharded service *share* the parent's tracker, where the parent's
#: registration must stay; they flip this off first thing.
UNTRACK_ON_ATTACH = True


def _untrack(shm) -> None:
    """Detach an attach-only segment handle from the resource tracker.

    Attaching registers the segment with ``multiprocessing``'s resource
    tracker, which *unlinks* everything still registered when the process
    exits — so a cleanly exiting worker would tear the weights out from
    under its siblings.  Attach-only handles must therefore unregister;
    the publishing process keeps its registration as a leak backstop.
    """
    if not UNTRACK_ON_ATTACH or shm.name in _PUBLISHED_HERE:
        return
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name),
                                    "shared_memory")
    except Exception:  # noqa: BLE001 - best effort, platform-dependent
        pass


def _segment_name(checksum: str) -> str:
    # 5 + 24 chars stays under macOS's 31-char PSHMNAMLEN limit
    return SHM_PREFIX + checksum[:24]


def _pack_header(buf, pid: int, checksum: str, nbytes: int, nnz: int,
                 shape: Tuple[int, ...], value_type: str) -> None:
    dims = list(shape) + [0] * (_MAX_DIMS - len(shape))
    _HEADER.pack_into(
        buf, 0, _MAGIC, _VERSION, 0, pid, checksum.encode("ascii"),
        nbytes, nnz, len(shape), *dims, value_type.encode("ascii").ljust(16, b"\0"),
    )


def _read_header(buf) -> Optional[dict]:
    """Parsed header dict, or None when the buffer is not one of ours."""
    if len(buf) < HEADER_SIZE:
        return None
    fields = _HEADER.unpack_from(buf, 0)
    magic, version, committed, pid, checksum = fields[:5]
    nbytes, nnz, ndim = fields[5:8]
    dims = fields[8:8 + _MAX_DIMS]
    value_type = fields[8 + _MAX_DIMS]
    if magic != _MAGIC or version != _VERSION or ndim > _MAX_DIMS:
        return None
    return {
        "committed": bool(committed),
        "pid": int(pid),
        "checksum": checksum.decode("ascii", errors="replace"),
        "nbytes": int(nbytes),
        "nnz": int(nnz),
        "shape": tuple(int(d) for d in dims[:ndim]),
        "value_type": value_type.rstrip(b"\0").decode("ascii", errors="replace"),
    }


def scavenge_orphan_segments(prefix: str = SHM_PREFIX) -> int:
    """Unlink shared-memory segments whose publisher is provably dead.

    Scans :data:`SHM_DIR` (no-op where it does not exist), attaches each
    ``prefix`` segment, and removes it when the owner pid in its header no
    longer maps to a live process — including never-committed husks from
    a publisher that died mid-write.  Segments without a parsable header
    are left alone (conservative, like the spill-dir scavenger).  Returns
    the number of segments removed.
    """
    removed = 0
    try:
        names = os.listdir(SHM_DIR)
    except OSError:
        return 0
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):
            continue
        try:
            header = _read_header(shm.buf)
            dead = (
                header is not None
                and header["pid"] != os.getpid()
                and not _pid_alive(header["pid"])
            )
            if dead:
                try:
                    # unlink itself unregisters from the resource tracker;
                    # untracking first would double-unregister
                    shm.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - raced another scavenger
                    pass
            else:
                _untrack(shm)
        finally:
            shm.close()
    return removed


class SharedWeightStore:
    """Publish/attach lifecycle of content-addressed weight segments.

    One store instance lives in the parent (publisher) and one per worker
    (attacher).  The parent's ``close(unlink=True)`` removes its published
    segments; worker stores just detach.  Thread-safe.
    """

    def __init__(self, scavenge: bool = True):
        self._lock = threading.Lock()
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        self._attached: Dict[str, SharedSegment] = {}
        self.metrics = {
            "published": 0, "deduped": 0, "attached": 0,
            "verified": 0, "scavenged": 0,
        }
        if scavenge:
            self.metrics["scavenged"] = scavenge_orphan_segments()

    # --- publishing (parent side) --------------------------------------------

    def publish_block(self, block: BasicTensorBlock) -> SegmentSpec:
        """Publish a tensor block's dense payload; returns its spec.

        Content-addressed: publishing identical payloads (same bytes)
        returns the same segment.  Sparse blocks are densified — shared
        weights are score-path operands, where the dense matmul kernels
        dominate anyway.
        """
        if block.value_type == ValueType.STRING:
            raise SharedSegmentError("string blocks cannot be shared")
        array = np.ascontiguousarray(block.to_numpy())
        return self.publish(array, block.value_type, nnz=block.nnz)

    def publish(self, array: np.ndarray, value_type: ValueType,
                nnz: int = -1) -> SegmentSpec:
        array = np.ascontiguousarray(array)
        if len(array.shape) > _MAX_DIMS:
            raise SharedSegmentError(
                f"cannot share {array.ndim}-d payloads (max {_MAX_DIMS})"
            )
        payload = array.tobytes()
        checksum = checksum_bytes(payload)
        spec = SegmentSpec(
            _segment_name(checksum), array.shape, value_type.value,
            -1 if nnz is None else int(nnz), checksum, len(payload),
        )
        with self._lock:
            if spec.name in self._owned:
                self.metrics["deduped"] += 1
                return spec
        try:
            shm = shared_memory.SharedMemory(
                create=True, name=spec.name, size=HEADER_SIZE + len(payload)
            )
        except FileExistsError:
            # someone (an earlier registry in this or another live process)
            # already published these bytes; wait for its commit flag
            self._await_commit(spec)
            with self._lock:
                self.metrics["deduped"] += 1
            return spec
        try:
            _pack_header(shm.buf, os.getpid(), checksum, len(payload),
                         spec.nnz, array.shape, value_type.value)
            shm.buf[HEADER_SIZE:HEADER_SIZE + len(payload)] = payload
            shm.buf[_COMMIT_OFFSET] = 1  # commit point: flag written last
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except OSError:
                pass
            raise
        with self._lock:
            self._owned[spec.name] = shm
            self.metrics["published"] += 1
        _PUBLISHED_HERE.add(spec.name)
        return spec

    def _await_commit(self, spec: SegmentSpec) -> None:
        deadline = time.monotonic() + _COMMIT_WAIT_S
        while True:
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
            except FileNotFoundError:
                if time.monotonic() > deadline:
                    raise SharedSegmentError(
                        f"segment {spec.name} vanished while publishing"
                    ) from None
                time.sleep(0.001)
                continue
            try:
                _untrack(shm)
                if shm.buf[_COMMIT_OFFSET] == 1:
                    return
            finally:
                shm.close()
            if time.monotonic() > deadline:
                raise SharedSegmentError(
                    f"segment {spec.name} never committed (publisher died "
                    f"mid-write?)"
                )
            time.sleep(0.001)

    # --- attaching (worker side) ---------------------------------------------

    def attach(self, spec: SegmentSpec, verify: bool = True) -> SharedSegment:
        """Attach a published segment as a read-only zero-copy view.

        ``verify=True`` (the default, and what workers use) recomputes the
        payload checksum and compares it to both the header and the spec —
        an end-to-end guarantee that the worker scores against exactly the
        bytes the parent pinned.
        """
        with self._lock:
            cached = self._attached.get(spec.name)
            if cached is not None:
                return cached
        try:
            shm = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError:
            raise SharedSegmentError(
                f"shared segment {spec.name} does not exist (parent gone "
                f"or never published)"
            ) from None
        _untrack(shm)
        header = _read_header(shm.buf)
        if header is None or not header["committed"]:
            shm.close()
            raise SharedSegmentError(
                f"segment {spec.name} is not a committed weight segment"
            )
        if header["checksum"] != spec.checksum \
                or header["nbytes"] != spec.nbytes \
                or header["shape"] != spec.shape:
            shm.close()
            raise SharedSegmentError(
                f"segment {spec.name} header does not match its spec"
            )
        payload = shm.buf[HEADER_SIZE:HEADER_SIZE + spec.nbytes]
        if verify:
            if checksum_bytes(bytes(payload)) != spec.checksum:
                payload.release()  # else close() trips on the exported view
                shm.close()
                raise SharedSegmentError(
                    f"segment {spec.name} fails its content checksum — "
                    f"refusing to score against corrupt weights"
                )
            with self._lock:
                self.metrics["verified"] += 1
        value_type = ValueType(spec.value_type)
        array = np.frombuffer(
            payload, dtype=value_type.numpy_dtype
        ).reshape(spec.shape)
        array.flags.writeable = False
        segment = SharedSegment(spec, shm, array)
        with self._lock:
            self._attached[spec.name] = segment
            self.metrics["attached"] += 1
        return segment

    # --- lifecycle ------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            snap = dict(self.metrics)
            snap["owned"] = len(self._owned)
        return snap

    def close(self, unlink: Optional[bool] = None) -> None:
        """Detach everything; publishers also unlink their segments.

        ``unlink`` defaults to True for segments this store created and
        False otherwise (a worker detaching must never remove the pages
        its siblings still score against).
        """
        with self._lock:
            attached = list(self._attached.values())
            owned = list(self._owned.items())
            self._attached.clear()
            self._owned.clear()
        for segment in attached:
            segment.close()
        for name, shm in owned:
            shm.close()
            if unlink is None or unlink:
                try:
                    shm.unlink()
                except OSError:  # pragma: no cover - already scavenged
                    pass
                _PUBLISHED_HERE.discard(name)
