"""High-level format descriptors for generated readers/writers (paper §3.2).

A :class:`FormatDescriptor` declaratively describes an external data format;
:mod:`repro.io.generator` compiles descriptors into specialised Python
reader/writer functions, the reproduction of SystemDS' "generate code for
efficient readers and writers from high-level descriptions of data formats".
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class FormatDescriptor:
    """Base class of declarative format descriptions."""

    name: str


@dataclasses.dataclass(frozen=True)
class DelimitedFormat(FormatDescriptor):
    """A delimited text format (CSV and friends).

    ``select_columns`` restricts parsing to the named positions — the
    generated reader never materialises unused fields (the "avoid
    unnecessary parsing" optimisation).
    """

    delimiter: str = ","
    header: bool = False
    comment: Optional[str] = None
    quote: Optional[str] = None
    na_values: Tuple[str, ...] = ("", "NA")
    select_columns: Optional[Tuple[int, ...]] = None


@dataclasses.dataclass(frozen=True)
class JsonLinesFormat(FormatDescriptor):
    """Newline-delimited JSON records.

    ``fields`` lists dotted paths extracted from each record, in output
    column order (e.g. ``("user.age", "score")``).
    """

    fields: Tuple[str, ...] = ()
