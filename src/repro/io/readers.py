"""Reader facade used by the ``read()`` instruction.

Resolves the file format from explicit parameters, ``.mtd`` metadata, or
the file extension, and dispatches to the concrete reader.
"""

from __future__ import annotations

import os
from typing import Dict, Union

from repro.config import ReproConfig
from repro.errors import IOFormatError
from repro.io import binary as binary_io
from repro.io import csv as csv_io
from repro.io.mtd import read_mtd
from repro.runtime.data import ScalarObject
from repro.tensor import BasicTensorBlock, Frame


def _param_str(params: Dict, name: str, default: str) -> str:
    value = params.get(name)
    if value is None:
        return default
    if isinstance(value, ScalarObject):
        return value.as_string()
    return str(value)


def _param_bool(params: Dict, name: str, default: bool) -> bool:
    value = params.get(name)
    if value is None:
        return default
    if isinstance(value, ScalarObject):
        return value.as_bool()
    return bool(value)


def read_any(path: str, params: Dict, config: ReproConfig) -> Union[BasicTensorBlock, Frame]:
    """Read a matrix or frame, resolving format and schema metadata."""
    if not os.path.exists(path):
        raise IOFormatError(f"input file not found: {path}")
    meta = read_mtd(path) or {}
    format_name = _param_str(params, "format", meta.get("format", _format_from_extension(path)))
    data_type = _param_str(params, "data_type", meta.get("data_type", "matrix"))
    header = _param_bool(params, "header", bool(meta.get("header", False)))
    sep = _param_str(params, "sep", ",")
    if data_type == "frame":
        if format_name != "csv":
            raise IOFormatError(f"frames support csv only, not {format_name!r}")
        schema = meta.get("schema")
        return csv_io.read_csv_frame(path, sep=sep, header=header, schema=schema)
    if format_name == "csv":
        return csv_io.read_csv_matrix(
            path, sep=sep, header=header, num_threads=config.parallelism
        )
    if format_name == "binary":
        return binary_io.read_binary_matrix(path)
    if format_name == "text":
        return _read_text_cells(path)
    raise IOFormatError(f"unknown format {format_name!r}")


def _format_from_extension(path: str) -> str:
    lowered = path.lower()
    if lowered.endswith((".bin", ".binary")):
        return "binary"
    if lowered.endswith((".ijv", ".mtx", ".text")):
        return "text"
    return "csv"


def _read_text_cells(path: str) -> BasicTensorBlock:
    """Read i,j,v text cells (1-based indices, one triple per line)."""
    import numpy as np
    import scipy.sparse as sp

    if os.path.getsize(path) == 0:
        # an all-zero matrix writes an empty cell file
        return BasicTensorBlock.from_numpy(np.zeros((1, 1)))
    triples = np.loadtxt(path, ndmin=2)
    if triples.size == 0:
        return BasicTensorBlock.from_numpy(np.zeros((1, 1)))
    rows = triples[:, 0].astype(int) - 1
    cols = triples[:, 1].astype(int) - 1
    values = triples[:, 2]
    shape = (int(rows.max()) + 1, int(cols.max()) + 1)
    return BasicTensorBlock.from_scipy(
        sp.csr_matrix((values, (rows, cols)), shape=shape)
    )
