"""Reader/writer code generation from format descriptors (paper section 3.2).

``generate_reader`` emits specialised Python source for one
:class:`FormatDescriptor` — constants baked in, no per-record branching on
format options, unused fields never parsed — compiles it with ``compile()``,
and returns the resulting callable.  The generated source is kept on the
function object (``.generated_source``) for inspection and testing.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.errors import IOFormatError
from repro.io.formats import DelimitedFormat, FormatDescriptor, JsonLinesFormat
from repro.tensor import BasicTensorBlock


def generate_reader(descriptor: FormatDescriptor) -> Callable[[str], BasicTensorBlock]:
    """Compile a specialised numeric reader for one format descriptor."""
    if isinstance(descriptor, DelimitedFormat):
        source = _delimited_reader_source(descriptor)
    elif isinstance(descriptor, JsonLinesFormat):
        source = _jsonl_reader_source(descriptor)
    else:
        raise IOFormatError(f"no reader generator for {type(descriptor).__name__}")
    return _compile(source, f"read_{descriptor.name}")


def generate_writer(descriptor: FormatDescriptor) -> Callable:
    """Compile a specialised writer for one format descriptor."""
    if isinstance(descriptor, DelimitedFormat):
        source = _delimited_writer_source(descriptor)
    elif isinstance(descriptor, JsonLinesFormat):
        source = _jsonl_writer_source(descriptor)
    else:
        raise IOFormatError(f"no writer generator for {type(descriptor).__name__}")
    return _compile(source, f"write_{descriptor.name}")


def _compile(source: str, func_name: str) -> Callable:
    namespace = {"np": np, "BasicTensorBlock": BasicTensorBlock, "IOFormatError": IOFormatError}
    code = compile(source, filename=f"<generated {func_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - code is generated here, not user input
    func = namespace[func_name]
    func.generated_source = source
    return func


# ---------------------------------------------------------------------------
# delimited text
# ---------------------------------------------------------------------------


def _delimited_reader_source(fmt: DelimitedFormat) -> str:
    lines: List[str] = []
    emit = lines.append
    emit(f"def read_{fmt.name}(path):")
    emit(f"    '''Generated reader for delimited format {fmt.name!r}.'''")
    emit("    rows = []")
    emit("    with open(path, 'r', encoding='utf-8') as handle:")
    if fmt.header:
        emit("        next(handle, None)")
    emit("        for line in handle:")
    emit("            line = line.rstrip('\\n').rstrip('\\r')")
    emit("            if not line:")
    emit("                continue")
    if fmt.comment:
        emit(f"            if line.startswith({fmt.comment!r}):")
        emit("                continue")
    if fmt.quote:
        emit(f"            line = line.replace({fmt.quote!r}, '')")
    emit(f"            fields = line.split({fmt.delimiter!r})")
    if fmt.select_columns is not None:
        selector = ", ".join(f"fields[{j}]" for j in fmt.select_columns)
        emit(f"            fields = [{selector}]")
    if fmt.na_values:
        emit(f"            fields = [f if f not in {tuple(fmt.na_values)!r} else 'nan' for f in fields]")
    emit("            rows.append(fields)")
    emit("    if not rows:")
    emit("        return BasicTensorBlock.from_numpy(np.zeros((0, 0)))")
    emit("    data = np.asarray(rows, dtype=np.float64)")
    emit("    return BasicTensorBlock.from_numpy(data)")
    return "\n".join(lines) + "\n"


def _delimited_writer_source(fmt: DelimitedFormat) -> str:
    lines: List[str] = []
    emit = lines.append
    emit(f"def write_{fmt.name}(block, path, column_names=None):")
    emit(f"    '''Generated writer for delimited format {fmt.name!r}.'''")
    emit("    data = block.to_numpy()")
    emit("    with open(path, 'w', encoding='utf-8', newline='') as handle:")
    if fmt.header:
        emit("        if column_names is None:")
        emit("            column_names = ['C%d' % (j + 1) for j in range(data.shape[1])]")
        emit(f"        handle.write({fmt.delimiter!r}.join(column_names) + '\\n')")
    emit("        for row in data:")
    emit(f"            handle.write({fmt.delimiter!r}.join('%.17g' % v for v in row) + '\\n')")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def _path_expr(path: str) -> str:
    expr = "record"
    for part in path.split("."):
        expr += f"[{part!r}]"
    return expr


def _jsonl_reader_source(fmt: JsonLinesFormat) -> str:
    if not fmt.fields:
        raise IOFormatError("JsonLinesFormat requires at least one field path")
    lines: List[str] = []
    emit = lines.append
    emit("import json")
    emit(f"def read_{fmt.name}(path):")
    emit(f"    '''Generated reader for JSON-lines format {fmt.name!r}.'''")
    emit("    rows = []")
    emit("    with open(path, 'r', encoding='utf-8') as handle:")
    emit("        for line in handle:")
    emit("            line = line.strip()")
    emit("            if not line:")
    emit("                continue")
    emit("            record = json.loads(line)")
    extractor = ", ".join(f"float({_path_expr(field)})" for field in fmt.fields)
    emit(f"            rows.append([{extractor}])")
    emit("    if not rows:")
    emit(f"        return BasicTensorBlock.from_numpy(np.zeros((0, {len(fmt.fields)})))")
    emit("    return BasicTensorBlock.from_numpy(np.asarray(rows, dtype=np.float64))")
    return "\n".join(lines) + "\n"


def _jsonl_writer_source(fmt: JsonLinesFormat) -> str:
    if not fmt.fields:
        raise IOFormatError("JsonLinesFormat requires at least one field path")
    lines: List[str] = []
    emit = lines.append
    emit("import json")
    emit(f"def write_{fmt.name}(block, path):")
    emit(f"    '''Generated writer for JSON-lines format {fmt.name!r}.'''")
    emit("    data = block.to_numpy()")
    emit(f"    fields = {list(fmt.fields)!r}")
    emit("    with open(path, 'w', encoding='utf-8') as handle:")
    emit("        for row in data:")
    emit("            record = {}")
    emit("            for field, value in zip(fields, row):")
    emit("                parts = field.split('.')")
    emit("                target = record")
    emit("                for part in parts[:-1]:")
    emit("                    target = target.setdefault(part, {})")
    emit("                target[parts[-1]] = float(value)")
    emit("            handle.write(json.dumps(record) + '\\n')")
    return "\n".join(lines) + "\n"
