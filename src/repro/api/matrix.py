"""Lazy Python language binding (paper Figure 3, step 1).

Host-language bindings "expose individual operations, internally collect
larger DAGs of operations and entire programs, and finally compile and
execute efficient runtime plans on user request or output conversion".

    import repro
    x = repro.matrix(numpy_array)
    result = (x.t() @ x).sum()
    result.compute()          # compiles one DML script for the whole DAG

Every operation returns a new lazy node; ``compute()`` linearises the DAG
into a DML script (shared subexpressions become shared variables, so the
compiler's CSE and fusion rewrites see the whole program), executes it, and
caches the result on the node.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

import numpy as np

from repro.config import ReproConfig

_NODE_IDS = itertools.count(1)

Scalar = Union[int, float]


def matrix(data) -> "LazyMatrix":
    """Wrap a NumPy array (or nested list) as a lazy matrix."""
    array = np.asarray(data, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError("matrix() requires 1D or 2D data")
    return LazyMatrix("input", [], data=array)


class LazyMatrix:
    """One node of a lazily collected operation DAG."""

    def __init__(self, op: str, children: List["LazyMatrix"], data=None,
                 params: Optional[dict] = None, scalar: bool = False):
        self.node_id = next(_NODE_IDS)
        self.op = op
        self.children = children
        self.data = data
        self.params = dict(params or {})
        self.is_scalar = scalar
        self._result = None

    # --- DAG construction helpers ---------------------------------------------

    def _binary(self, op: str, other) -> "LazyMatrix":
        other_node = _as_node(other)
        return LazyMatrix(op, [self, other_node],
                          scalar=self.is_scalar and other_node.is_scalar)

    def _rbinary(self, op: str, other) -> "LazyMatrix":
        other_node = _as_node(other)
        return LazyMatrix(op, [other_node, self],
                          scalar=self.is_scalar and other_node.is_scalar)

    def __add__(self, other):
        return self._binary("+", other)

    def __radd__(self, other):
        return self._rbinary("+", other)

    def __sub__(self, other):
        return self._binary("-", other)

    def __rsub__(self, other):
        return self._rbinary("-", other)

    def __mul__(self, other):
        return self._binary("*", other)

    def __rmul__(self, other):
        return self._rbinary("*", other)

    def __truediv__(self, other):
        return self._binary("/", other)

    def __rtruediv__(self, other):
        return self._rbinary("/", other)

    def __pow__(self, other):
        return self._binary("^", other)

    def __matmul__(self, other):
        return LazyMatrix("%*%", [self, _as_node(other)])

    def __neg__(self):
        return LazyMatrix("uminus", [self], scalar=self.is_scalar)

    def __lt__(self, other):
        return self._binary("<", other)

    def __le__(self, other):
        return self._binary("<=", other)

    def __gt__(self, other):
        return self._binary(">", other)

    def __ge__(self, other):
        return self._binary(">=", other)

    def t(self) -> "LazyMatrix":
        return LazyMatrix("t", [self])

    def _agg(self, func: str, axis: Optional[int]) -> "LazyMatrix":
        if axis is None:
            return LazyMatrix(func, [self], scalar=True)
        if axis == 0:
            return LazyMatrix({"sum": "colSums", "mean": "colMeans",
                               "min": "colMins", "max": "colMaxs"}[func], [self])
        if axis == 1:
            return LazyMatrix({"sum": "rowSums", "mean": "rowMeans",
                               "min": "rowMins", "max": "rowMaxs"}[func], [self])
        raise ValueError("axis must be None, 0, or 1")

    def sum(self, axis: Optional[int] = None) -> "LazyMatrix":
        return self._agg("sum", axis)

    def mean(self, axis: Optional[int] = None) -> "LazyMatrix":
        return self._agg("mean", axis)

    def min(self, axis: Optional[int] = None) -> "LazyMatrix":
        return self._agg("min", axis)

    def max(self, axis: Optional[int] = None) -> "LazyMatrix":
        return self._agg("max", axis)

    def abs(self) -> "LazyMatrix":
        return LazyMatrix("abs", [self], scalar=self.is_scalar)

    def exp(self) -> "LazyMatrix":
        return LazyMatrix("exp", [self], scalar=self.is_scalar)

    def log(self) -> "LazyMatrix":
        return LazyMatrix("log", [self], scalar=self.is_scalar)

    def sqrt(self) -> "LazyMatrix":
        return LazyMatrix("sqrt", [self], scalar=self.is_scalar)

    def cbind(self, other) -> "LazyMatrix":
        return LazyMatrix("cbind", [self, _as_node(other)])

    def rbind(self, other) -> "LazyMatrix":
        return LazyMatrix("rbind", [self, _as_node(other)])

    def __getitem__(self, key) -> "LazyMatrix":
        if not isinstance(key, tuple) or len(key) != 2:
            raise TypeError("use m[rows, cols] with slices or ints (0-based)")
        bounds = []
        for part, axis in zip(key, ("row", "col")):
            if isinstance(part, slice):
                if part.step not in (None, 1):
                    raise ValueError("strided slicing is not supported")
                bounds.append((part.start, part.stop))
            elif isinstance(part, int):
                bounds.append((part, part + 1))
            else:
                raise TypeError(f"unsupported {axis} index: {part!r}")
        return LazyMatrix("rix", [self], params={"bounds": bounds})

    # --- compilation & execution ------------------------------------------------

    def to_dml(self) -> tuple:
        """(script, inputs dict, output variable) for this node's DAG."""
        lines: List[str] = []
        inputs: Dict[str, np.ndarray] = {}
        names: Dict[int, str] = {}

        def visit(node: "LazyMatrix") -> str:
            cached = names.get(node.node_id)
            if cached is not None:
                return cached
            name = f"V{node.node_id}"
            if node.op == "input":
                inputs[name] = node.data
                names[node.node_id] = name
                return name
            if node.op == "const":
                names[node.node_id] = repr(float(node.data))
                return names[node.node_id]
            operands = [visit(child) for child in node.children]
            lines.append(f"{name} = {_render(node, operands)}")
            names[node.node_id] = name
            return name

        output = visit(self)
        if not lines:  # bare input or constant
            lines.append(f"{output}_out = {output}")
            output = f"{output}_out"
        return "\n".join(lines), inputs, output

    def compute(self, config: Optional[ReproConfig] = None):
        """Compile and execute the collected DAG; returns NumPy/float."""
        if self._result is not None:
            return self._result
        from repro.api.mlcontext import MLContext

        script, inputs, output = self.to_dml()
        ml = MLContext(config)
        results = ml.execute(script, inputs=inputs, outputs=[output])
        if self.is_scalar:
            self._result = results.scalar(output)
        else:
            self._result = results.matrix(output)
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LazyMatrix({self.op}, id={self.node_id})"


def _as_node(value) -> LazyMatrix:
    if isinstance(value, LazyMatrix):
        return value
    if isinstance(value, (int, float)):
        return LazyMatrix("const", [], data=float(value), scalar=True)
    if isinstance(value, (np.ndarray, list)):
        return matrix(value)
    raise TypeError(f"cannot lift {type(value).__name__} into a lazy matrix")


_INFIX = {"+", "-", "*", "/", "^", "%*%", "<", "<=", ">", ">="}


def _render(node: LazyMatrix, operands: List[str]) -> str:
    if node.op in _INFIX:
        return f"({operands[0]} {node.op} {operands[1]})"
    if node.op == "uminus":
        return f"(-{operands[0]})"
    if node.op == "rix":
        (r0, r1), (c0, c1) = node.params["bounds"]
        row = f"{(r0 or 0) + 1}:{r1}" if r1 is not None else f"{(r0 or 0) + 1}:nrow({operands[0]})"
        col = f"{(c0 or 0) + 1}:{c1}" if c1 is not None else f"{(c0 or 0) + 1}:ncol({operands[0]})"
        return f"{operands[0]}[{row}, {col}]"
    return f"{node.op}({', '.join(operands)})"


def solve(a: LazyMatrix, b: LazyMatrix) -> LazyMatrix:
    """Lazy linear solve ``a %*% x = b``."""
    return LazyMatrix("solve", [_as_node(a), _as_node(b)])
