"""MLContext-style programmatic API: compile and execute DML scripts with
in-memory inputs and outputs.

    from repro import MLContext
    ml = MLContext()
    result = ml.execute("B = t(X) %*% X", inputs={"X": x}, outputs=["B"])
    result.matrix("B")

Inputs may be NumPy arrays, tensor blocks, frames, or Python scalars.  One
MLContext owns one lineage reuse cache, so repeated ``execute`` calls share
cached intermediates when lineage reuse is enabled (paper section 3.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.compiler.compile import compile_script
from repro.compiler.sizes import VarStats
from repro.config import ReproConfig, default_config
from repro.errors import RuntimeDMLError
from repro.lineage import ReuseCache
from repro.runtime.context import ExecutionContext
from repro.runtime.data import (
    FrameObject,
    ListObject,
    MatrixObject,
    ScalarObject,
)
from repro.runtime.interpreter import execute_program
from repro.tensor import BasicTensorBlock, Frame
from repro.types import DataType

_INPUT_GUIDS = itertools.count(1)

InputValue = Union[np.ndarray, BasicTensorBlock, Frame, int, float, bool, str]


class Results:
    """Outputs of one script execution."""

    def __init__(
        self,
        ctx: ExecutionContext,
        outputs: Sequence[str],
        protected: Sequence[str] = (),
    ):
        self._ctx = ctx
        self.output_names = list(outputs)
        self.prints = list(ctx.prints)
        self.metrics = dict(ctx.metrics)
        self._protected = tuple(protected)

    def close(self) -> None:
        """Release the execution context's payloads (after extracting outputs).

        Caller-owned input bindings are protected: their payloads survive.
        Serving hot paths call this once the outputs are copied out, so the
        shared buffer pool is not left waiting on garbage collection.
        """
        self._ctx.close(keep=self._protected)

    def get(self, name: str):
        value = self._ctx.get_or_none(name)
        if value is None:
            raise RuntimeDMLError(f"no output variable {name!r}")
        return value

    def matrix(self, name: str) -> np.ndarray:
        value = self.get(name)
        if isinstance(value, MatrixObject):
            return value.acquire_local(self._ctx.collect).to_numpy()
        if isinstance(value, ScalarObject):
            return np.asarray([[value.as_float()]])
        raise RuntimeDMLError(f"output {name!r} is not a matrix")

    def scalar(self, name: str):
        value = self.get(name)
        if isinstance(value, ScalarObject):
            return value.value
        if isinstance(value, MatrixObject):
            return value.acquire_local(self._ctx.collect).as_scalar()
        raise RuntimeDMLError(f"output {name!r} is not a scalar")

    def frame(self, name: str) -> Frame:
        value = self.get(name)
        if isinstance(value, FrameObject):
            return value.frame
        raise RuntimeDMLError(f"output {name!r} is not a frame")

    def lineage(self, name: str):
        """The lineage item of an output (None when lineage is disabled)."""
        if self._ctx.tracer is None:
            return None
        return self._ctx.tracer.get(name)


class MLContext:
    """Compile-and-execute entry point with a session-scoped reuse cache."""

    def __init__(self, config: Optional[ReproConfig] = None):
        self.config = config or default_config()
        self._reuse: Optional[ReuseCache] = None
        if self.config.reuse_enabled:
            self._reuse = ReuseCache(
                self.config.reuse_cache_size, self.config.partial_reuse_enabled
            )
        self._stats = None
        if self.config.enable_stats:
            self.set_stats(True)
        self._checkpoints = None
        if self.config.checkpoint_dir is not None:
            from repro.checkpoint import CheckpointManager

            self._checkpoints = CheckpointManager.from_config(self.config)

    @property
    def reuse_cache(self) -> Optional[ReuseCache]:
        return self._reuse

    def set_stats(self, enabled: bool = True) -> "MLContext":
        """Toggle unified runtime statistics (SystemDS ``setStatistics``).

        When enabled, every subsequent :meth:`execute` profiles per
        instruction into one session-scoped :class:`repro.obs.StatsRegistry`;
        read it via :meth:`stats`.
        """
        if enabled and self._stats is None:
            from repro.obs import StatsRegistry

            self._stats = StatsRegistry()
        elif not enabled:
            self._stats = None
        return self

    def stats(self):
        """The session's :class:`repro.obs.StatsRegistry` (None when off)."""
        return self._stats

    def checkpoints(self):
        """The session's :class:`CheckpointManager` (None when off)."""
        return self._checkpoints

    def execute(
        self,
        script: str,
        inputs: Optional[Dict[str, InputValue]] = None,
        outputs: Optional[Sequence[str]] = None,
        capture_prints: bool = True,
    ) -> Results:
        inputs = inputs or {}
        outputs = list(outputs or [])
        bound = {name: _to_data_object(value) for name, value in inputs.items()}
        stats = {name: _stats_of(value) for name, value in bound.items()}
        program = compile_script(script, self.config, stats, outputs)
        handler = (lambda text: None) if capture_prints else None
        if self._checkpoints is not None:
            from repro.checkpoint.manager import script_fingerprint

            self._checkpoints.bind_fingerprint(script_fingerprint(script))
        ctx = ExecutionContext(
            program, self.config, reuse=self._reuse, print_handler=handler,
            stats=self._stats, checkpoints=self._checkpoints,
        )
        for name, value in bound.items():
            ctx.set(name, value)
            if ctx.tracer is not None:
                ctx.tracer.bind_input(name, next(_INPUT_GUIDS))
        execute_program(program, ctx)
        return Results(ctx, outputs)


def dml(script: str) -> "Script":
    """Fluent wrapper: ``dml(src).input(X=x).output("B").execute()``."""
    return Script(script)


class Script:
    """A DML script with staged inputs/outputs (MLContext convenience API)."""

    def __init__(self, source: str):
        self.source = source
        self._inputs: Dict[str, InputValue] = {}
        self._outputs: List[str] = []

    def input(self, **bindings: InputValue) -> "Script":
        self._inputs.update(bindings)
        return self

    def output(self, *names: str) -> "Script":
        self._outputs.extend(names)
        return self

    def execute(self, context: Optional[MLContext] = None) -> Results:
        context = context or MLContext()
        return context.execute(self.source, self._inputs, self._outputs)


# ---------------------------------------------------------------------------
# input conversion
# ---------------------------------------------------------------------------


def _to_data_object(value: InputValue):
    if isinstance(value, MatrixObject) or isinstance(value, FrameObject) \
            or isinstance(value, ScalarObject) or isinstance(value, ListObject):
        return value
    if isinstance(value, BasicTensorBlock):
        return MatrixObject.from_block(value)
    if isinstance(value, Frame):
        return FrameObject(value)
    if isinstance(value, np.ndarray):
        array = value if value.ndim == 2 else np.atleast_2d(value).T if value.ndim == 1 else value
        return MatrixObject.from_block(BasicTensorBlock.from_numpy(array))
    if hasattr(value, "tocsr"):  # scipy sparse
        return MatrixObject.from_block(BasicTensorBlock.from_scipy(value.tocsr()))
    if isinstance(value, (int, float, bool, str)):
        return ScalarObject(value)
    raise RuntimeDMLError(f"cannot bind input of type {type(value).__name__}")


def _stats_of(value) -> VarStats:
    if isinstance(value, ScalarObject):
        return VarStats.scalar(value.value_type)
    if isinstance(value, MatrixObject):
        return VarStats(DataType.MATRIX, value.value_type, value.num_rows, value.num_cols, value.nnz)
    if isinstance(value, FrameObject):
        return VarStats(DataType.FRAME, None, value.num_rows, value.num_cols, -1)
    if isinstance(value, ListObject):
        return VarStats(DataType.LIST, None, len(value), 1, -1)
    return VarStats()
