"""JMLC-style prepared scripts: precompile once, execute repeatedly.

The JMLC API of SystemDS targets embedded, low-latency scoring: a script is
compiled once into a runtime program and then executed many times with
different in-memory inputs, skipping parsing and compilation on the hot
path (paper Figure 3, step 1).

    ps = PreparedScript("yhat = X %*% B", inputs=["X", "B"], outputs=["yhat"])
    for batch in batches:
        out = ps.execute(X=batch, B=model)

Input identity is tracked per slot: when the same object is passed again,
its lineage guid is stable, so a shared reuse cache can serve repeated
sub-computations across calls.  ``execute`` is safe for concurrent callers:
each call gets a fresh execution context, the slot-guid table is locked,
and the shared reuse cache is internally synchronised — the serving
subsystem (``repro.serving``) scores one prepared script from many worker
threads at once.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Dict, List, Optional, Sequence

from repro.compiler.compile import compile_script
from repro.compiler.sizes import VarStats
from repro.config import ReproConfig, default_config
from repro.errors import RuntimeDMLError
from repro.lineage import ReuseCache
from repro.api.mlcontext import Results, _stats_of, _to_data_object
from repro.runtime.bufferpool import BufferPool
from repro.runtime.context import ExecutionContext
from repro.runtime.interpreter import execute_program

_GUIDS = itertools.count(1_000_000)


class PreparedScript:
    """A precompiled DML script for repeated low-latency execution."""

    def __init__(
        self,
        source: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        config: Optional[ReproConfig] = None,
        reuse_cache: Optional[ReuseCache] = None,
        pool: Optional[BufferPool] = None,
        stats=None,
    ):
        self.source = source
        self.input_names = list(inputs)
        self.output_names = list(outputs)
        self.config = config or default_config()
        # unknown input sizes at prepare time: blocks flagged for dynamic
        # recompilation adapt to each call's actual shapes
        var_stats: Dict[str, VarStats] = {}
        self.program = compile_script(source, self.config, var_stats, self.output_names)
        self._reuse = reuse_cache
        if self._reuse is None and self.config.reuse_enabled:
            self._reuse = ReuseCache(
                self.config.reuse_cache_size, self.config.partial_reuse_enabled
            )
        # shared buffer pool for all executions (serving); None means each
        # execution context creates its own private pool
        self._pool = pool
        # one stats registry for all executions of this prepared script:
        # concurrent serving workers fold into the same heavy-hitter table
        self._stats = stats
        if self._stats is None and self.config.enable_stats:
            from repro.obs import StatsRegistry

            self._stats = StatsRegistry()
        # one trace cache for all executions of this prepared script: the
        # compiled program (and its basic blocks) is shared across calls,
        # so hot-loop traces compiled in one call serve every later call
        self._traces = None
        if self.config.enable_trace and self._reuse is None:
            from repro.trace import TraceCache

            self._traces = TraceCache(self.config.trace_threshold)
        # slot -> (anchor, guid): the anchor is a weakref to the bound object
        # (or the object itself when it is not weak-referenceable), so a
        # recycled id() of a dead object can never inherit the old guid
        self._guids: Dict[str, tuple] = {}
        self._guid_lock = threading.Lock()

    @property
    def reuse_cache(self) -> Optional[ReuseCache]:
        return self._reuse

    def stats(self):
        """The script's :class:`repro.obs.StatsRegistry` (None when off).

        Enable by preparing with ``config.enable_stats`` or an explicit
        ``stats=StatsRegistry()``; all ``execute`` calls — including
        concurrent serving workers — aggregate into it.
        """
        return self._stats

    def set_stats(self, registry) -> "PreparedScript":
        """Attach a stats registry (or ``None`` to detach) after preparing.

        Subsequent ``execute`` calls record into it; in-flight executions
        keep whatever registry they started with.
        """
        self._stats = registry
        return self

    def _slot_guid(self, name: str, value) -> int:
        with self._guid_lock:
            previous = self._guids.get(name)
            if previous is not None:
                anchor, guid = previous
                target = anchor() if isinstance(anchor, weakref.ref) else anchor
                if target is value:
                    return guid
            guid = next(_GUIDS)
            try:
                anchor = weakref.ref(value)
            except TypeError:
                anchor = value  # e.g. scalars: keep it alive, identity stays valid
            self._guids[name] = (anchor, guid)
            return guid

    def execute(self, **bindings) -> Results:
        missing = [name for name in self.input_names if name not in bindings]
        if missing:
            raise RuntimeDMLError(f"missing prepared-script inputs: {missing}")
        unexpected = [name for name in bindings if name not in self.input_names]
        if unexpected:
            raise RuntimeDMLError(f"unexpected prepared-script inputs: {unexpected}")
        ctx = ExecutionContext(
            self.program, self.config, pool=self._pool, reuse=self._reuse,
            print_handler=lambda text: None, stats=self._stats,
            traces=self._traces,
        )
        for name in self.input_names:
            raw = bindings[name]
            value = _to_data_object(raw)
            ctx.set(name, value)
            if ctx.tracer is not None:
                ctx.tracer.bind_input(name, self._slot_guid(name, raw))
        execute_program(self.program, ctx)
        return Results(ctx, self.output_names, protected=self.input_names)
