"""User-facing APIs (paper Figure 3, step 1): MLContext-style script
execution, JMLC-style prepared scripts for low-latency repeated scoring,
and the lazy Python language binding that collects operation DAGs."""
