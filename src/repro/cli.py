"""Command-line invocation of DML scripts (paper Figure 3, step 1).

    repro-dml script.dml [-f] [--args k=v ...] [--stats] [--explain]
    python -m repro.cli script.dml --args reg=0.001

Named arguments are bound as scalar input variables (ints, floats,
booleans, or strings).  ``--stats`` prints runtime metrics after execution,
``--explain`` the compiled runtime program, ``--lineage`` enables lineage
tracing and ``--reuse`` lineage-based reuse of intermediates.

``--serve-bench`` runs the concurrent model-scoring smoke bench instead of
a script (micro-batched vs. one-at-a-time throughput; see
``repro.serving.bench``), optionally writing ``BENCH_serving.json`` via
``--serve-out``.  ``--serve-procs 1,2,4`` instead measures the
multi-process data plane (OS worker processes scoring against
shared-memory weights) as a scaling curve, and ``--serve-kill-worker``
adds a SIGKILL-one-worker chaos run with recovery counters.

``--checkpoint-dir DIR`` snapshots live variables at loop/top-level block
boundaries (``--checkpoint-every N`` thins the cadence); after a crash,
``--resume`` restores the manifest and fast-forwards the program to the
saved block/iteration.  Exit codes: 2 for a missing/corrupt manifest on
``--resume``, 3 when an injected ``crash=`` fault killed the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict

from repro.config import ReproConfig


def _parse_value(text: str):
    if text in ("TRUE", "true", "True"):
        return True
    if text in ("FALSE", "false", "False"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_args(pairs) -> Dict[str, object]:
    bound = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--args entries must be name=value, got {pair!r}")
        bound[name] = _parse_value(value)
    return bound


def build_parser() -> argparse.ArgumentParser:
    """The repro-dml argument parser (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dml",
        description="Execute a DML script on the repro SystemDS reproduction.",
    )
    parser.add_argument("script", nargs="?", default=None,
                        help="path to the .dml script")
    parser.add_argument("--args", nargs="*", metavar="NAME=VALUE",
                        help="scalar input bindings")
    parser.add_argument("--stats", action="store_true",
                        help="print unified runtime statistics (heavy-hitter "
                             "instructions + per-subsystem sections)")
    parser.add_argument("--stats-top-k", type=int, default=10,
                        help="rows of the heavy-hitter table (default 10)")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="also write the stats snapshot as JSON")
    parser.add_argument("--explain", action="store_true",
                        help="print the compiled runtime program")
    parser.add_argument("--lineage", action="store_true",
                        help="enable lineage tracing")
    parser.add_argument("--reuse", choices=["none", "full", "full_partial"],
                        default="none", help="lineage-based reuse policy")
    parser.add_argument("--mem", type=int, default=0,
                        help="memory budget in MB (0 = default)")
    parser.add_argument("--par", type=int, default=0,
                        help="degree of parallelism (0 = all cores)")
    parser.add_argument("--no-rewrites", action="store_true",
                        help="disable optimizer rewrites (debugging)")
    parser.add_argument("--no-trace", action="store_true",
                        help="disable trace compilation of hot basic blocks")
    parser.add_argument("--transport", choices=["inproc", "proc", "tcp"],
                        default="inproc",
                        help="where federated sites and RDD tasks execute: "
                             "in-process thread sims (default), real "
                             "SIGKILL-able worker processes (repro.net), or "
                             "workers on dialable TCP addresses with "
                             "reconnecting links and net.* chaos points")
    transport = parser.add_argument_group("transport tuning")
    transport.add_argument("--transport-host", metavar="HOST", default=None,
                           help="bind/advertise host for tcp workers "
                                "(default 127.0.0.1)")
    transport.add_argument("--request-timeout", type=float, default=None,
                           metavar="S",
                           help="transport round-trip deadline before the "
                                "same-id resend / kill escalation "
                                "(default 60)")
    transport.add_argument("--heartbeat-interval", type=float, default=None,
                           metavar="S",
                           help="worker heartbeat cadence (default 0.25)")
    transport.add_argument("--heartbeat-grace", type=float, default=None,
                           metavar="N",
                           help="silent heartbeat intervals before a miss "
                                "is counted (default 3)")
    transport.add_argument("--connect-timeout", type=float, default=None,
                           metavar="S",
                           help="tcp dial + READY-greeting deadline "
                                "(default 5)")
    transport.add_argument("--reconnect-retries", type=int, default=None,
                           metavar="N",
                           help="redials after a severed tcp link before "
                                "the peer is declared dead (default 4)")
    parser.add_argument("--trace-threshold", type=int, default=None,
                        metavar="N",
                        help="block executions before a trace is compiled "
                             "(default 8)")
    ooc = parser.add_argument_group("out-of-core")
    ooc.add_argument("--pool-budget", type=int, default=None, metavar="BYTES",
                     help="exact buffer-pool budget in bytes (overrides the "
                          "fraction of --mem); out-of-core smoke runs pin it "
                          "far below the working set")
    ooc.add_argument("--no-spill-compress", action="store_true",
                     help="spill raw pickles instead of CLA-compressing "
                          "eligible dense FP64 blocks")
    ooc.add_argument("--no-prefetch", action="store_true",
                     help="disable the background prefetch/writeback thread")
    ooc.add_argument("--compressed-exec", action="store_true",
                     help="let eligible kernels execute directly on "
                          "still-compressed restored blocks (results match "
                          "within float tolerance, not bitwise)")
    serving = parser.add_argument_group("model serving")
    serving.add_argument("--serve-bench", action="store_true",
                         help="run the concurrent scoring smoke bench")
    serving.add_argument("--serve-requests", type=int, default=1000,
                         help="serve-bench burst size")
    serving.add_argument("--serve-workers", type=int, default=4,
                         help="serve-bench worker threads")
    serving.add_argument("--serve-batch", type=int, default=32,
                         help="serve-bench micro-batch size cap")
    serving.add_argument("--serve-procs", metavar="N[,N...]", default=None,
                         help="run the multi-process serving scaling bench "
                              "over these worker-process counts (e.g. "
                              "1,2,4,8); workers score against shared-memory "
                              "weights")
    serving.add_argument("--serve-kill-worker", action="store_true",
                         help="add a kill-one-worker chaos run to the "
                              "scaling bench (SIGKILL mid-batch, seeded)")
    serving.add_argument("--serve-out", metavar="PATH", default=None,
                         help="write the serve-bench JSON report")
    resilience = parser.add_argument_group("resilience / fault injection")
    resilience.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="deterministic fault-injection spec, e.g. "
             "'site.request:p=0.1;spill.write:fail=2' ('*' = every point); "
             "implies the tolerance machinery (retries, failover, breaker)")
    resilience.add_argument("--fault-seed", type=int, default=None,
                            help="seed of the injection/jitter streams "
                                 "(default 1234)")
    resilience.add_argument("--retry-budget", type=int, default=None,
                            help="retries per request/task/spill after the "
                                 "first attempt (default 2); enables the "
                                 "tolerance machinery even without faults")
    checkpoint = parser.add_argument_group("checkpoint / restore")
    checkpoint.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="directory for crash-consistent checkpoints; enables "
             "checkpointing at loop/top-level block boundaries (implies "
             "--lineage for incremental snapshots)")
    checkpoint.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot every N interpreter boundaries (default 1)")
    checkpoint.add_argument(
        "--resume", action="store_true",
        help="resume from the manifest in --checkpoint-dir, fast-forwarding "
             "the program to the saved block/iteration")
    return parser


def main(argv=None) -> int:
    """Entry point of ``repro-dml``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.serve_bench or args.serve_procs or args.serve_kill_worker:
        from repro.serving.bench import main as serve_bench_main

        bench_args = [
            "--requests", str(args.serve_requests),
            "--workers", str(args.serve_workers),
            "--max-batch", str(args.serve_batch),
        ]
        if args.serve_procs:
            bench_args += ["--procs", args.serve_procs]
        if args.serve_kill_worker:
            bench_args += ["--kill-worker"]
        if args.serve_out:
            bench_args += ["--out", args.serve_out]
        return serve_bench_main(bench_args)
    if args.script is None:
        parser.error("a script path is required unless --serve-bench is given")
    overrides = {}
    if args.mem > 0:
        overrides["memory_budget"] = args.mem * 1024 * 1024
    if args.par > 0:
        overrides["parallelism"] = args.par
    if args.lineage or args.reuse != "none":
        overrides["enable_lineage"] = True
        overrides["reuse_policy"] = args.reuse
    if args.stats:
        overrides["enable_stats"] = True
        overrides["stats_top_k"] = max(args.stats_top_k, 1)
    if args.no_rewrites:
        overrides["enable_rewrites"] = False
        overrides["enable_cse"] = False
        overrides["enable_fusion"] = False
    if args.no_trace:
        overrides["enable_trace"] = False
    if args.transport != "inproc":
        overrides["transport"] = args.transport
    if args.transport_host is not None:
        overrides["transport_host"] = args.transport_host
    if args.request_timeout is not None:
        overrides["transport_request_timeout_s"] = args.request_timeout
    if args.heartbeat_interval is not None:
        overrides["heartbeat_interval_s"] = args.heartbeat_interval
    if args.heartbeat_grace is not None:
        overrides["heartbeat_miss_grace"] = args.heartbeat_grace
    if args.connect_timeout is not None:
        overrides["tcp_connect_timeout_s"] = args.connect_timeout
    if args.reconnect_retries is not None:
        overrides["tcp_reconnect_retries"] = args.reconnect_retries
    if args.trace_threshold is not None:
        overrides["trace_threshold"] = args.trace_threshold
    if args.pool_budget is not None:
        overrides["bufferpool_budget_override"] = args.pool_budget
    if args.no_spill_compress:
        overrides["spill_compress"] = False
    if args.no_prefetch:
        overrides["enable_prefetch"] = False
    if args.compressed_exec:
        overrides["compressed_exec"] = True
    if args.inject_faults is not None:
        overrides["fault_spec"] = args.inject_faults
    if args.fault_seed is not None:
        overrides["fault_seed"] = args.fault_seed
    if args.retry_budget is not None:
        overrides["retry_budget"] = args.retry_budget
        overrides["enable_resilience"] = True
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.checkpoint_dir is not None:
        overrides["checkpoint_dir"] = args.checkpoint_dir
        overrides["checkpoint_every"] = args.checkpoint_every
        # Incremental snapshots key off lineage hashes.
        overrides["enable_lineage"] = True
    try:
        config = ReproConfig(**overrides)
    except ValueError as exc:
        parser.error(str(exc))

    try:
        with open(args.script, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.api.mlcontext import MLContext

    if args.explain:
        from repro.compiler.compile import compile_script

        program = compile_script(source, config)
        print(program.explain(), file=sys.stderr)

    ml = MLContext(config)
    if args.resume:
        from repro.errors import CheckpointError

        try:
            ml.checkpoints().prepare_resume()
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    start = time.time()
    try:
        results = ml.execute(
            source, inputs=_parse_args(args.args), capture_prints=False
        )
    except Exception as exc:  # noqa: BLE001 - report any script failure
        from repro.errors import InjectedCrashError

        if isinstance(exc, InjectedCrashError):
            print(f"error: {exc}", file=sys.stderr)
            if args.checkpoint_dir is not None:
                print(
                    "note: rerun with --resume to continue from the last "
                    "checkpoint",
                    file=sys.stderr,
                )
            return 3
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.time() - start
    if args.stats:
        from repro import obs

        registry = ml.stats()
        obs.attach_federated(registry)  # default worker registry, if used
        print(f"-- execution time: {elapsed:.3f}s", file=sys.stderr)
        for key, value in sorted(results.metrics.items()):
            print(f"-- {key}: {value}", file=sys.stderr)
        print(registry.report(top_k=config.stats_top_k), file=sys.stderr)
        if args.stats_json:
            snapshot = registry.snapshot(config.stats_top_k)
            with open(args.stats_json, "w", encoding="utf-8") as out:
                out.write(obs.render_json(snapshot))
    return 0


if __name__ == "__main__":
    sys.exit(main())
