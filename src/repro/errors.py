"""Exception hierarchy for the repro SystemDS reproduction.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything from one root.  The split mirrors the phases of
the system: language (parse), validation (semantic), compilation, and runtime.

Every exception in this module pickle-round-trips with its ``args`` and
attributes intact: worker processes (:mod:`repro.net`, sharded serving)
propagate typed errors across the process boundary by pickling them, so a
class whose ``__init__`` signature differs from its ``args`` tuple defines
``__reduce__`` returning the *original* constructor arguments.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class DMLSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed DML input."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.raw_message = message
        self.line = line
        self.column = column
        location = f" (line {line}, col {column})" if line >= 0 else ""
        super().__init__(f"{message}{location}")

    def __reduce__(self):
        return (type(self), (self.raw_message, self.line, self.column))


class ValidationError(ReproError):
    """Raised during semantic validation of a parsed program."""


class CompileError(ReproError):
    """Raised when HOP/LOP compilation fails."""


class RuntimeDMLError(ReproError):
    """Raised while interpreting a compiled runtime program."""


class DMLStopError(RuntimeDMLError):
    """Raised by the DML ``stop()`` builtin; carries the user message."""


class BufferPoolError(ReproError):
    """Raised on buffer-pool protocol violations (double free, missing spill)."""


class InjectedFaultError(ReproError):
    """A deterministic fault fired by :mod:`repro.resilience` at an injection
    point.  Tolerance layers treat it as a transient failure (retryable)."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected fault at {point!r}")

    def __reduce__(self):
        return (type(self), (self.point,))


class InjectedCrashError(ReproError):
    """A deterministic process-crash fault (``crash=N`` in a fault spec).

    Deliberately *not* an :class:`InjectedFaultError`: crashes model the
    process dying, so no retry layer may swallow one — it propagates
    straight out of the interpreter, exactly like a kill would, and only a
    checkpoint resume brings the run back.
    """

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected crash at {point!r}")

    def __reduce__(self):
        return (type(self), (self.point,))


class CheckpointError(ReproError):
    """Raised by :mod:`repro.checkpoint` on resume/manifest protocol errors
    (missing manifest, completed run, script fingerprint mismatch)."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint manifest or data file failed validation (unparsable
    JSON, checksum mismatch, missing data file, structural mismatch)."""


class TaskRetryExhaustedError(RuntimeDMLError):
    """A distributed task kept failing past the per-task retry budget."""

    def __init__(self, point: str, attempts: int):
        self.point = point
        self.attempts = attempts
        super().__init__(
            f"task failed at injection point {point!r} after {attempts} attempts"
        )

    def __reduce__(self):
        return (type(self), (self.point, self.attempts))


class SpillFailureError(BufferPoolError):
    """A buffer-pool spill read kept failing past the retry budget."""

    def __init__(self, point: str, entry_id: int):
        self.point = point
        self.entry_id = entry_id
        super().__init__(
            f"buffer pool entry {entry_id} unrecoverable at injection point "
            f"{point!r} (retries exhausted)"
        )

    def __reduce__(self):
        return (type(self), (self.point, self.entry_id))


class FederatedError(ReproError):
    """Raised by the federated backend (unknown site, range overlap, ...)."""


class SiteDownError(FederatedError):
    """A federated worker is stopped/dead; requests to it cannot be served."""

    def __init__(self, address: str):
        self.address = address
        super().__init__(f"federated site {address} is down")

    def __reduce__(self):
        return (type(self), (self.address,))


class FederatedSiteUnavailableError(FederatedError):
    """A site request kept failing past retries, blacklisting, and failover.

    ``reason`` distinguishes *how* the candidates ran out:

    * ``"candidates_exhausted"`` — every reachable candidate was attempted
      and kept failing past its retry budget;
    * ``"all_blacklisted"`` — no candidate was even attempted because all
      of them sat inside a blacklist cooldown window.
    """

    def __init__(self, point: str, address: str,
                 reason: str = "candidates_exhausted", detail: str = ""):
        self.point = point
        self.address = address
        self.reason = reason
        self.detail = detail
        if reason == "all_blacklisted":
            text = (f"site {address} unavailable at injection point {point!r}: "
                    f"all replicas blacklisted{f' ({detail})' if detail else ''}")
        else:
            text = (f"site {address} unavailable at injection point {point!r} "
                    f"(retry budget and failover exhausted"
                    f"{f'; {detail}' if detail else ''})")
        super().__init__(text)

    def __reduce__(self):
        return (type(self), (self.point, self.address, self.reason, self.detail))


class PrivacyError(FederatedError):
    """Raised when an operation would violate a federated exchange constraint."""


class IOFormatError(ReproError):
    """Raised on malformed persistent data or format descriptors."""


class TransportError(ReproError):
    """Root of the :mod:`repro.net` process-boundary transport errors."""


class FrameProtocolError(TransportError):
    """A received frame failed validation (bad magic, length, or checksum).

    A SIGKILLed peer can tear a connection mid-write; the framing layer
    turns the resulting garbage into this typed error so the transport
    treats the connection as dead instead of misinterpreting bytes.
    """


class TransportClosedError(TransportError, ConnectionError):
    """The peer's connection is gone (EOF, reset, or the worker died).

    Also a :class:`ConnectionError` (hence :class:`OSError`) so every
    retry layer that treats I/O errors as transient — the resilient
    channel, the RDD task retry — covers worker deaths for free.
    """


class WorkerRespawnError(TransportError):
    """A transport worker kept dying past the respawn limit."""

    def __init__(self, role: str, index: int, deaths: int):
        self.role = role
        self.index = index
        self.deaths = deaths
        super().__init__(
            f"{role} worker {index} died {deaths} times on one request "
            f"(respawn limit exhausted)"
        )

    def __reduce__(self):
        return (type(self), (self.role, self.index, self.deaths))


class SharedSegmentError(ReproError):
    """Raised by :mod:`repro.io.shm` on shared-memory segment protocol
    violations: missing/uncommitted segments, header/spec mismatches, or
    payload checksum failures on attach."""


class ServingError(ReproError):
    """Root of the model-serving subsystem's errors."""


class UnknownModelError(ServingError):
    """Raised when scoring references a model/version that is not registered."""


class ServiceOverloadedError(ServingError):
    """Raised when the bounded admission queue is full (backpressure)."""


class ScoreTimeoutError(ServingError):
    """Raised when a scoring request misses its deadline."""


class ServiceUnavailableError(ServingError):
    """Raised when a model's circuit breaker is open or load is being shed.

    Unlike :class:`ServiceOverloadedError` (hard queue bound) this is the
    resilience layer failing fast: the model is known to be erroring, so
    requests are rejected before they occupy admission-queue slots.
    """


class TenantThrottledError(ServingError):
    """Raised when a tenant's token bucket is empty (per-tenant QoS rate
    limit), before the request touches the shared admission queue."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        super().__init__(f"tenant {tenant!r} exceeded its request rate limit")

    def __reduce__(self):
        return (type(self), (self.tenant,))


class WorkerDiedError(ServingError):
    """A scoring worker process died.  Internal to the sharded service:
    in-flight batches of a dead worker are resent to its respawn, so
    requests only ever observe this when respawning itself keeps failing."""
