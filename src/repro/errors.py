"""Exception hierarchy for the repro SystemDS reproduction.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything from one root.  The split mirrors the phases of
the system: language (parse), validation (semantic), compilation, and runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class DMLSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed DML input."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.line = line
        self.column = column
        location = f" (line {line}, col {column})" if line >= 0 else ""
        super().__init__(f"{message}{location}")


class ValidationError(ReproError):
    """Raised during semantic validation of a parsed program."""


class CompileError(ReproError):
    """Raised when HOP/LOP compilation fails."""


class RuntimeDMLError(ReproError):
    """Raised while interpreting a compiled runtime program."""


class DMLStopError(RuntimeDMLError):
    """Raised by the DML ``stop()`` builtin; carries the user message."""


class BufferPoolError(ReproError):
    """Raised on buffer-pool protocol violations (double free, missing spill)."""


class FederatedError(ReproError):
    """Raised by the federated backend (unknown site, range overlap, ...)."""


class PrivacyError(FederatedError):
    """Raised when an operation would violate a federated exchange constraint."""


class IOFormatError(ReproError):
    """Raised on malformed persistent data or format descriptors."""


class ServingError(ReproError):
    """Root of the model-serving subsystem's errors."""


class UnknownModelError(ServingError):
    """Raised when scoring references a model/version that is not registered."""


class ServiceOverloadedError(ServingError):
    """Raised when the bounded admission queue is full (backpressure)."""


class ScoreTimeoutError(ServingError):
    """Raised when a scoring request misses its deadline."""
