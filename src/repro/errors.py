"""Exception hierarchy for the repro SystemDS reproduction.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything from one root.  The split mirrors the phases of
the system: language (parse), validation (semantic), compilation, and runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class DMLSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed DML input."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.line = line
        self.column = column
        location = f" (line {line}, col {column})" if line >= 0 else ""
        super().__init__(f"{message}{location}")


class ValidationError(ReproError):
    """Raised during semantic validation of a parsed program."""


class CompileError(ReproError):
    """Raised when HOP/LOP compilation fails."""


class RuntimeDMLError(ReproError):
    """Raised while interpreting a compiled runtime program."""


class DMLStopError(RuntimeDMLError):
    """Raised by the DML ``stop()`` builtin; carries the user message."""


class BufferPoolError(ReproError):
    """Raised on buffer-pool protocol violations (double free, missing spill)."""


class InjectedFaultError(ReproError):
    """A deterministic fault fired by :mod:`repro.resilience` at an injection
    point.  Tolerance layers treat it as a transient failure (retryable)."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected fault at {point!r}")


class InjectedCrashError(ReproError):
    """A deterministic process-crash fault (``crash=N`` in a fault spec).

    Deliberately *not* an :class:`InjectedFaultError`: crashes model the
    process dying, so no retry layer may swallow one — it propagates
    straight out of the interpreter, exactly like a kill would, and only a
    checkpoint resume brings the run back.
    """

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected crash at {point!r}")


class CheckpointError(ReproError):
    """Raised by :mod:`repro.checkpoint` on resume/manifest protocol errors
    (missing manifest, completed run, script fingerprint mismatch)."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint manifest or data file failed validation (unparsable
    JSON, checksum mismatch, missing data file, structural mismatch)."""


class TaskRetryExhaustedError(RuntimeDMLError):
    """A distributed task kept failing past the per-task retry budget."""

    def __init__(self, point: str, attempts: int):
        self.point = point
        self.attempts = attempts
        super().__init__(
            f"task failed at injection point {point!r} after {attempts} attempts"
        )


class SpillFailureError(BufferPoolError):
    """A buffer-pool spill read kept failing past the retry budget."""

    def __init__(self, point: str, entry_id: int):
        self.point = point
        self.entry_id = entry_id
        super().__init__(
            f"buffer pool entry {entry_id} unrecoverable at injection point "
            f"{point!r} (retries exhausted)"
        )


class FederatedError(ReproError):
    """Raised by the federated backend (unknown site, range overlap, ...)."""


class SiteDownError(FederatedError):
    """A federated worker is stopped/dead; requests to it cannot be served."""

    def __init__(self, address: str):
        self.address = address
        super().__init__(f"federated site {address} is down")


class FederatedSiteUnavailableError(FederatedError):
    """A site request kept failing past retries, blacklisting, and failover."""

    def __init__(self, point: str, address: str):
        self.point = point
        self.address = address
        super().__init__(
            f"site {address} unavailable at injection point {point!r} "
            f"(retry budget and failover exhausted)"
        )


class PrivacyError(FederatedError):
    """Raised when an operation would violate a federated exchange constraint."""


class IOFormatError(ReproError):
    """Raised on malformed persistent data or format descriptors."""


class SharedSegmentError(ReproError):
    """Raised by :mod:`repro.io.shm` on shared-memory segment protocol
    violations: missing/uncommitted segments, header/spec mismatches, or
    payload checksum failures on attach."""


class ServingError(ReproError):
    """Root of the model-serving subsystem's errors."""


class UnknownModelError(ServingError):
    """Raised when scoring references a model/version that is not registered."""


class ServiceOverloadedError(ServingError):
    """Raised when the bounded admission queue is full (backpressure)."""


class ScoreTimeoutError(ServingError):
    """Raised when a scoring request misses its deadline."""


class ServiceUnavailableError(ServingError):
    """Raised when a model's circuit breaker is open or load is being shed.

    Unlike :class:`ServiceOverloadedError` (hard queue bound) this is the
    resilience layer failing fast: the model is known to be erroring, so
    requests are rejected before they occupy admission-queue slots.
    """


class TenantThrottledError(ServingError):
    """Raised when a tenant's token bucket is empty (per-tenant QoS rate
    limit), before the request touches the shared admission queue."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        super().__init__(f"tenant {tenant!r} exceeded its request rate limit")


class WorkerDiedError(ServingError):
    """A scoring worker process died.  Internal to the sharded service:
    in-flight batches of a dead worker are resent to its respawn, so
    requests only ever observe this when respawning itself keeps failing."""
