"""Federated ML backend (paper section 3.3).

Multiple control programs, each holding local data: a master holds
federated tensors — metadata objects mapping disjoint index ranges to
(potentially remote) sites — and federated instructions push computation to
the sites instead of moving raw data.  Sites enforce exchange (privacy)
constraints and account every byte transferred, substituting explicit
transfer metrics for network cost (see DESIGN.md).
"""

from repro.federated.site import FederatedSite, FederatedWorkerRegistry
from repro.federated.tensor import FederatedRange, FederatedTensor
from repro.federated.privacy import PrivacyConstraint, PrivacyLevel

__all__ = [
    "FederatedRange",
    "FederatedSite",
    "FederatedTensor",
    "FederatedWorkerRegistry",
    "PrivacyConstraint",
    "PrivacyLevel",
]
