"""Federated operations: computation push-down to sites (paper section 3.3).

Each operation ships the *small* side (or nothing) to the sites, runs the
local part there, and either aggregates the small results at the master
(tsmm, tmm, aggregates) or leaves the large results at the sites as a new
federated tensor (matmult, elementwise) — "pushing as much computation to
the individual sites as possible, while adhering to exchange constraints".
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.errors import FederatedError
from repro.federated.tensor import FederatedPartition, FederatedRange, FederatedTensor
from repro.tensor import BasicTensorBlock
from repro.tensor import ops as local_ops
from repro.types import Direction

_TMP_NAMES = itertools.count(1)


def _require_row_partitioned(fed: FederatedTensor, op: str) -> None:
    if not fed.is_row_partitioned:
        raise FederatedError(f"{op} requires a row-partitioned federated tensor")


def channel_of(ctx):
    """The context's :class:`~repro.resilience.ResilientChannel`, or None.

    Call sites pass the result as ``channel=``; a None channel keeps every
    federated operation on the direct, zero-overhead request path.
    """
    faults = getattr(ctx, "faults", None)
    return faults.channel if faults is not None else None


def _site_call(channel, site, thunk, fallback=None):
    """One site request, through the resilient channel when one is given.

    ``thunk(target)`` receives the site actually serving the request so
    operations that leave results at a site record the live target, not
    the (possibly failed-over) primary.
    """
    if channel is None:
        return thunk(site)
    return channel.call(site, "site.request", thunk, fallback=fallback)


def collect_federated(fed: FederatedTensor, channel=None) -> BasicTensorBlock:
    """Assemble the full tensor at the master (raw transfer, checked).

    With a resilient channel, an unreachable partition degrades to zeros
    (a counted ``degraded_reads``) instead of failing the whole collect.
    """
    out = np.zeros(fed.shape, dtype=np.float64)
    for part in fed.partitions:
        block = _site_call(
            channel, part.site,
            lambda target, name=part.tensor_name: target.fetch(name),
            fallback=lambda: None,
        )
        if block is None:
            continue  # degraded read: this partition stays zero
        (r0, c0), (r1, c1) = part.range.begin, part.range.end
        out[r0:r1, c0:c1] = block.to_numpy()
    return BasicTensorBlock.from_numpy(out)


def fed_tsmm(fed: FederatedTensor, channel=None) -> BasicTensorBlock:
    """t(X) %*% X over a row-federated X: sum of per-site local TSMMs.

    Only k x k aggregates leave the sites — the federated counterpart of
    the distributed TSMM.
    """
    _require_row_partitioned(fed, "federated tsmm")
    total: Optional[np.ndarray] = None
    for part in fed.partitions:
        result = _site_call(
            channel, part.site,
            lambda target, name=part.tensor_name, rows=part.range.rows:
                target.execute_and_return(
                    name, local_ops.tsmm, flops=2 * rows * fed.num_cols**2
                ),
        )
        data = result.to_numpy()
        total = data if total is None else total + data
    return BasicTensorBlock.from_numpy(total)


def fed_tmm(fed: FederatedTensor, y: BasicTensorBlock, channel=None) -> BasicTensorBlock:
    """t(X) %*% y: ship each site its y-slice, aggregate k x m results."""
    _require_row_partitioned(fed, "federated tmm")
    if y.num_rows != fed.num_rows:
        raise FederatedError(f"dimension mismatch: {fed.shape} vs {y.shape}")
    y_data = y.to_numpy()
    total: Optional[np.ndarray] = None
    for part in fed.partitions:
        r0, r1 = part.range.begin[0], part.range.end[0]
        y_slice = BasicTensorBlock.from_numpy(y_data[r0:r1].copy())
        result = _site_call(
            channel, part.site,
            lambda target, name=part.tensor_name, ys=y_slice, rows=part.range.rows:
                target.execute_and_return(
                    name,
                    lambda block, y_part=ys: local_ops.mapmm_transpose_left(block, y_part),
                    payload_bytes=ys.memory_size(),
                    flops=2 * rows * fed.num_cols * y.num_cols,
                ),
        )
        data = result.to_numpy()
        total = data if total is None else total + data
    return BasicTensorBlock.from_numpy(total)


def fed_matmult(fed: FederatedTensor, right: BasicTensorBlock,
                channel=None) -> FederatedTensor:
    """X %*% B: broadcast B to the sites; per-site results stay federated."""
    _require_row_partitioned(fed, "federated matmult")
    if fed.num_cols != right.num_rows:
        raise FederatedError(f"dimension mismatch: {fed.shape} %*% {right.shape}")
    partitions = []
    for part in fed.partitions:
        out_name = f"_fedtmp{next(_TMP_NAMES)}"

        def run(target, name=part.tensor_name, out=out_name, rows=part.range.rows):
            target.execute_and_store(
                name, out,
                lambda block, b=right: local_ops.matmult(block, b),
                payload_bytes=right.memory_size(),
                flops=2 * rows * fed.num_cols * right.num_cols,
            )
            return target  # the site now hosting the output partition

        live_site = _site_call(channel, part.site, run)
        r0, r1 = part.range.begin[0], part.range.end[0]
        partitions.append(
            FederatedPartition(
                live_site, out_name,
                FederatedRange((r0, 0), (r1, right.num_cols)),
            )
        )
    return FederatedTensor(partitions)


def fed_elementwise_scalar(op: str, fed: FederatedTensor, scalar: float,
                           scalar_left: bool = False, channel=None) -> FederatedTensor:
    """Elementwise op with a scalar: pushed down, results stay at the sites."""
    partitions = []
    for part in fed.partitions:
        out_name = f"_fedtmp{next(_TMP_NAMES)}"

        def run(target, name=part.tensor_name, out=out_name):
            target.execute_and_store(
                name, out,
                lambda block: local_ops.binary_scalar(op, block, scalar, scalar_left),
                payload_bytes=8,
            )
            return target

        live_site = _site_call(channel, part.site, run)
        partitions.append(FederatedPartition(live_site, out_name, part.range))
    return FederatedTensor(partitions)


def fed_binary_rowsliced(op: str, fed: FederatedTensor, other: BasicTensorBlock,
                         channel=None) -> FederatedTensor:
    """Elementwise op with a local matrix, sliced per partition range."""
    _require_row_partitioned(fed, f"federated {op}")
    data = other.to_numpy()
    broadcast_row = data.shape[0] == 1
    partitions = []
    for part in fed.partitions:
        r0, r1 = part.range.begin[0], part.range.end[0]
        piece = data if broadcast_row else data[r0:r1]
        operand = BasicTensorBlock.from_numpy(np.ascontiguousarray(piece))
        out_name = f"_fedtmp{next(_TMP_NAMES)}"

        def run(target, name=part.tensor_name, out=out_name, o=operand):
            target.execute_and_store(
                name, out,
                lambda block, other_part=o: local_ops.binary_op(op, block, other_part),
                payload_bytes=o.memory_size(),
            )
            return target

        live_site = _site_call(channel, part.site, run)
        partitions.append(FederatedPartition(live_site, out_name, part.range))
    return FederatedTensor(partitions)


def fed_aggregate(op: str, fed: FederatedTensor, direction: Direction, channel=None):
    """sum/min/max/mean aggregates with per-site partials (aggregate-checked)."""
    if direction == Direction.COL or direction == Direction.FULL:
        _require_row_partitioned(fed, f"federated {op}")
        partials = []
        counts = []
        for part in fed.partitions:
            inner = "sum" if op == "mean" else op
            result = _site_call(
                channel, part.site,
                lambda target, name=part.tensor_name, o=inner, d=direction:
                    target.execute_and_return(
                        name,
                        lambda block, oo=o, dd=d: _local_partial(oo, block, dd),
                    ),
            )
            partials.append(result.to_numpy())
            counts.append(part.range.rows)
        stacked = np.vstack([np.atleast_2d(p) for p in partials])
        if direction == Direction.FULL:
            # per-site partials are scalar totals (or min/max)
            if op == "sum":
                return float(stacked.sum())
            if op == "mean":
                return float(stacked.sum()) / (fed.num_rows * fed.num_cols)
            return float(stacked.min() if op == "min" else stacked.max())
        if op in ("sum", "mean"):
            combined = stacked.sum(axis=0, keepdims=True)
            if op == "mean":
                combined = combined / fed.num_rows
        elif op == "min":
            combined = stacked.min(axis=0, keepdims=True)
        else:
            combined = stacked.max(axis=0, keepdims=True)
        return BasicTensorBlock.from_numpy(combined)
    # row aggregates: per-site row vectors concatenate in range order
    _require_row_partitioned(fed, f"federated {op}")
    out = np.zeros((fed.num_rows, 1))
    for part in fed.partitions:
        result = _site_call(
            channel, part.site,
            lambda target, name=part.tensor_name, o=op: target.execute_and_return(
                name,
                lambda block, oo=o: local_ops.aggregate(
                    oo if oo != "mean" else "mean", block, Direction.ROW
                ),
            ),
        )
        r0, r1 = part.range.begin[0], part.range.end[0]
        out[r0:r1] = result.to_numpy()
    return BasicTensorBlock.from_numpy(out)


def _local_partial(op: str, block: BasicTensorBlock, direction: Direction) -> BasicTensorBlock:
    if direction == Direction.FULL:
        return BasicTensorBlock.scalar(local_ops.aggregate(op, block))
    return local_ops.aggregate(op, block, direction)
