"""Federated sites: worker control programs holding local data.

A :class:`FederatedSite` models one federated worker — its own symbol
table of hosted tensors, privacy constraints, and a small request protocol
(get metadata, execute an operation locally, retrieve a result).  All
communication goes through ``request``/``respond`` so bytes in/out are
accounted per site; the :class:`FederatedWorkerRegistry` plays the role of
the address book (host:port -> site).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import FederatedError, SiteDownError
from repro.federated.privacy import PrivacyConstraint, PrivacyLevel
from repro.tensor import BasicTensorBlock
from repro.tensor import ops as local_ops


class FederatedSite:
    """One federated worker with local data and transfer accounting."""

    def __init__(self, address: str):
        self.address = address
        self._data: Dict[str, BasicTensorBlock] = {}
        self._constraints: Dict[str, PrivacyConstraint] = {}
        self._lock = threading.RLock()
        self._down = False
        self.metrics = {
            "requests": 0,
            "bytes_received": 0,
            "bytes_sent": 0,
            "local_flops": 0,
        }

    # --- lifecycle (dead-site modelling for the resilience layer) -----------

    def stop(self) -> None:
        """Kill the worker: data-plane requests raise :class:`SiteDownError`."""
        with self._lock:
            self._down = True

    def start(self) -> None:
        """Bring a stopped worker back up (hosted data survived)."""
        with self._lock:
            self._down = False

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    def _check_up(self) -> None:
        if self._down:
            raise SiteDownError(self.address)

    # --- hosting -------------------------------------------------------------

    def put(
        self,
        name: str,
        block: BasicTensorBlock,
        constraint: Optional[PrivacyConstraint] = None,
    ) -> None:
        with self._lock:
            self._data[name] = block
            self._constraints[name] = constraint or PrivacyConstraint()

    def has(self, name: str) -> bool:
        with self._lock:
            return name in self._data

    def constraint(self, name: str) -> PrivacyConstraint:
        with self._lock:
            entry = self._constraints.get(name)
        if entry is None:
            raise FederatedError(f"site {self.address}: unknown tensor {name!r}")
        return entry

    def metadata(self, name: str):
        with self._lock:
            self._check_up()
            block = self._require(name)
            self.metrics["requests"] += 1
            return {"shape": block.shape, "nnz": block.nnz}

    def _require(self, name: str) -> BasicTensorBlock:
        block = self._data.get(name)
        if block is None:
            raise FederatedError(f"site {self.address}: unknown tensor {name!r}")
        return block

    # --- request protocol ---------------------------------------------------------

    def fetch(self, name: str) -> BasicTensorBlock:
        """Ship a copy of the hosted tensor (checked against its constraint).

        The copy models the serialisation boundary of a real transfer:
        callers can never mutate the tensor the site keeps hosting.
        """
        with self._lock:
            self._check_up()
            block = self._require(name)
            self.constraint(name).check_raw_transfer(name)
            self.metrics["requests"] += 1
            self.metrics["bytes_sent"] += block.memory_size()
            return block.copy()

    def execute_local(
        self,
        name: str,
        operation: Callable[[BasicTensorBlock], BasicTensorBlock],
        payload_bytes: int = 0,
        flops: int = 0,
    ) -> BasicTensorBlock:
        """Run an operation on the hosted tensor; result stays at the site.

        The hosted block is snapshotted under the site lock, but the user
        operation runs *outside* it — a long local computation must not
        block concurrent ``has``/``metadata``/``fetch`` on the same site.
        Metrics commit after the operation succeeds.
        """
        with self._lock:
            self._check_up()
            block = self._require(name)
        result = operation(block)
        with self._lock:
            self.metrics["requests"] += 1
            self.metrics["bytes_received"] += payload_bytes
            self.metrics["local_flops"] += flops
        return result

    def execute_and_return(
        self,
        name: str,
        operation: Callable[[BasicTensorBlock], BasicTensorBlock],
        payload_bytes: int = 0,
        flops: int = 0,
    ) -> BasicTensorBlock:
        """Run an operation and ship the (aggregate) result to the caller."""
        result = self.execute_local(name, operation, payload_bytes, flops)
        self.constraint(name).check_aggregate_transfer(name)
        with self._lock:
            self.metrics["bytes_sent"] += result.memory_size()
        return result

    def execute_and_store(
        self,
        name: str,
        out: str,
        operation: Callable[[BasicTensorBlock], BasicTensorBlock],
        payload_bytes: int = 0,
        flops: int = 0,
    ) -> dict:
        """Run an operation and host the result at the site under ``out``.

        The fused push-down write path: compute + store is one request, so
        the result never ships to the coordinator (only its metadata does)
        and a process-boundary transport pays a single round trip.  The
        output inherits the input's privacy constraint.
        """
        result = self.execute_local(name, operation, payload_bytes, flops)
        self.put(out, result, self.constraint(name))
        return {"shape": result.shape, "nnz": result.nnz}

    def update(self, name: str, block: BasicTensorBlock) -> None:
        """Replace the hosted tensor (e.g. with a locally computed update)."""
        with self._lock:
            self._check_up()
            if name not in self._data:
                raise FederatedError(f"site {self.address}: unknown tensor {name!r}")
            self._data[name] = block

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FederatedSite({self.address}, tensors={sorted(self._data)})"


class FederatedWorkerRegistry:
    """Address book mapping 'host:port/name' style addresses to sites.

    In a real deployment these would be network endpoints; here sites are
    in-process workers, which preserves the push-down semantics and the
    transfer accounting (see DESIGN.md substitutions).
    """

    _instance: Optional["FederatedWorkerRegistry"] = None
    _instance_lock = threading.Lock()

    def __init__(self):
        self._sites: Dict[str, FederatedSite] = {}
        self._lock = threading.RLock()
        self._unhealthy: Dict[str, float] = {}  # address -> blacklisted-until
        self._replicas: Dict[str, str] = {}  # primary address -> replica address

    @classmethod
    def default(cls) -> "FederatedWorkerRegistry":
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    def start_site(self, address: str) -> FederatedSite:
        with self._lock:
            site = self._sites.get(address)
            if site is None:
                site = FederatedSite(address)
                self._sites[address] = site
            return site

    def site(self, address: str) -> FederatedSite:
        with self._lock:
            site = self._sites.get(address)
            if site is None:
                raise FederatedError(f"no federated worker at {address!r}")
            return site

    def stop_site(self, address: str) -> None:
        with self._lock:
            self._sites.pop(address, None)

    def clear(self) -> None:
        with self._lock:
            self._sites.clear()
            self._unhealthy.clear()
            self._replicas.clear()

    # --- health / failover (used by repro.resilience.ResilientChannel) -------

    def set_replica(self, primary: str, replica: str) -> None:
        """Declare a failover target: requests to ``primary`` may be served
        by ``replica`` when the primary is blacklisted or keeps failing."""
        with self._lock:
            self._replicas[primary] = replica

    def replica_of(self, address: str) -> Optional[str]:
        with self._lock:
            return self._replicas.get(address)

    def mark_unhealthy(self, address: str, until: float) -> None:
        """Blacklist a site until the given monotonic-clock instant."""
        with self._lock:
            self._unhealthy[address] = until

    def is_healthy(self, address: str, now: Optional[float] = None) -> bool:
        """True unless the site is inside a blacklist cooldown window."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            until = self._unhealthy.get(address)
            if until is None:
                return True
            if now >= until:
                del self._unhealthy[address]  # cooldown elapsed: rehabilitate
                return True
            return False

    def blacklisted(self, now: Optional[float] = None) -> Dict[str, float]:
        """Currently blacklisted addresses -> remaining cooldown seconds."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            return {
                address: until - now
                for address, until in self._unhealthy.items()
                if until > now
            }

    def total_bytes_transferred(self) -> int:
        with self._lock:
            return sum(
                site.metrics["bytes_sent"] + site.metrics["bytes_received"]
                for site in self._sites.values()
            )
