"""Exchange constraints for federated data (paper section 3.3).

Every tensor a site hosts carries a privacy level; federated instructions
check the level before any response leaves the site:

* ``PUBLIC`` — raw data may be shipped (no constraint);
* ``PRIVATE_AGGREGATE`` — only aggregates whose output is much smaller than
  the raw data may leave (local matmult results, sums, gradient updates);
* ``PRIVATE`` — nothing derived from the data may leave; only model updates
  computed *and consumed* locally are allowed (parameter-server style).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import PrivacyError


class PrivacyLevel(enum.Enum):
    PUBLIC = "public"
    PRIVATE_AGGREGATE = "private_aggregate"
    PRIVATE = "private"


@dataclasses.dataclass(frozen=True)
class PrivacyConstraint:
    level: PrivacyLevel = PrivacyLevel.PUBLIC

    def check_raw_transfer(self, what: str) -> None:
        if self.level != PrivacyLevel.PUBLIC:
            raise PrivacyError(
                f"exchange constraint {self.level.value!r} forbids shipping raw data ({what})"
            )

    def check_aggregate_transfer(self, what: str) -> None:
        if self.level == PrivacyLevel.PRIVATE:
            raise PrivacyError(
                f"exchange constraint 'private' forbids shipping derived data ({what})"
            )

    @classmethod
    def parse(cls, name: str) -> "PrivacyConstraint":
        return cls(PrivacyLevel(name))
