"""Federated tensors: metadata objects over remote subtensors (paper §2.4).

A federated tensor holds references to in-memory tensors at multiple sites;
subtensors cover disjoint index ranges and uncovered areas are zero.  The
DML builtin ``federated(addresses=..., ranges=...)`` builds one; federated
instructions (:mod:`repro.federated.instructions`) process it by pushing
computation to the sites.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.errors import FederatedError
from repro.federated.site import FederatedSite, FederatedWorkerRegistry


@dataclasses.dataclass(frozen=True)
class FederatedRange:
    """A half-open 0-based index range [begin, end) per dimension."""

    begin: Tuple[int, int]
    end: Tuple[int, int]

    @property
    def rows(self) -> int:
        return self.end[0] - self.begin[0]

    @property
    def cols(self) -> int:
        return self.end[1] - self.begin[1]

    def overlaps(self, other: "FederatedRange") -> bool:
        return (
            self.begin[0] < other.end[0]
            and other.begin[0] < self.end[0]
            and self.begin[1] < other.end[1]
            and other.begin[1] < self.end[1]
        )


@dataclasses.dataclass
class FederatedPartition:
    site: FederatedSite
    tensor_name: str
    range: FederatedRange


class FederatedTensor:
    """Metadata object referencing disjoint subtensors at federated sites."""

    def __init__(self, partitions: Sequence[FederatedPartition]):
        if not partitions:
            raise FederatedError("federated tensor requires at least one partition")
        for i, a in enumerate(partitions):
            for b in list(partitions)[i + 1 :]:
                if a.range.overlaps(b.range):
                    raise FederatedError(
                        f"overlapping federated ranges: {a.range} and {b.range}"
                    )
        self.partitions = list(partitions)
        rows = max(p.range.end[0] for p in partitions)
        cols = max(p.range.end[1] for p in partitions)
        self.shape = (rows, cols)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def is_row_partitioned(self) -> bool:
        """True when every partition spans all columns (row federation)."""
        return all(
            p.range.begin[1] == 0 and p.range.end[1] == self.num_cols
            for p in self.partitions
        )

    def memory_size(self) -> int:
        return self.num_rows * self.num_cols * 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sites = ",".join(p.site.address for p in self.partitions)
        return f"FederatedTensor(shape={self.shape}, sites=[{sites}])"


def build_federated_matrix(ctx, addresses, ranges) -> FederatedTensor:
    """Build a federated tensor from DML ``federated(addresses=, ranges=)``.

    ``addresses`` is a list of "host:port/name" strings; ``ranges`` a list
    of [begin_row, begin_col, end_row, end_col] row vectors (as a list or a
    (2k) x 2 matrix of begin/end pairs, as in SystemDS).
    """
    from repro.runtime.data import ListObject, MatrixObject, ScalarObject

    transport = getattr(ctx, "transport", None)
    registry = (
        transport.registry() if transport is not None
        else FederatedWorkerRegistry.default()
    )
    address_list: List[str] = []
    if isinstance(addresses, ListObject):
        for item in addresses.items:
            if not isinstance(item, ScalarObject):
                raise FederatedError("federated addresses must be strings")
            address_list.append(item.as_string())
    else:
        raise FederatedError("federated addresses must be a list(...)")
    range_pairs: List[FederatedRange] = []
    if isinstance(ranges, ListObject):
        for item in ranges.items:
            if not isinstance(item, MatrixObject):
                raise FederatedError("federated ranges must be matrices")
            data = item.acquire_local(ctx.collect).to_numpy().reshape(-1)
            if data.size != 4:
                raise FederatedError("each federated range needs 4 values")
            range_pairs.append(
                FederatedRange(
                    (int(data[0]), int(data[1])), (int(data[2]), int(data[3]))
                )
            )
    else:
        raise FederatedError("federated ranges must be a list(...)")
    if len(address_list) != len(range_pairs):
        raise FederatedError("one range per federated address required")
    partitions = []
    for address, rng in zip(address_list, range_pairs):
        host, __, tensor_name = address.partition("/")
        if not tensor_name:
            raise FederatedError(
                f"federated address {address!r} must be host:port/tensor"
            )
        site = registry.site(host)
        if not site.has(tensor_name):
            raise FederatedError(f"site {host} hosts no tensor {tensor_name!r}")
        partitions.append(FederatedPartition(site, tensor_name, rng))
    return FederatedTensor(partitions)
