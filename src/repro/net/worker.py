"""Entry point of one transport worker process.

A worker is a spawn-context OS process that connects back to the
coordinator's listener, handshakes with a READY frame, then serves REQ
frames until it reads BYE (or is killed).  One worker serves either
role — federated site host or RDD task executor — because the request
payload carries its own dispatch tag.

Idempotency (the dedup cache)
-----------------------------
Every request carries a coordinator-assigned id.  The worker records the
response bytes of the last :data:`DEDUP_CAPACITY` requests; a repeated id
— the coordinator resending after a lost ACK — replays the recorded
response instead of re-executing.  A side-effecting op (``put``,
``update``, ``execute_and_store``) therefore cannot double-execute, and
the replayed response is flagged so the coordinator can count
``dedup_hits``.

Liveness
--------
A daemon thread emits a HEARTBEAT frame every ``heartbeat_s`` on the same
socket (sends are serialised by a lock).  The coordinator counts frames
while awaiting a response; a silent interval with a dead process is a
worker death, triggering respawn + publication replay.

Errors
------
Per-request exceptions are pickled into ERR frames (falling back to a
stringified :class:`~repro.errors.TransportError` for unpicklable ones —
though every :mod:`repro.errors` type round-trips by contract) and
re-raised coordinator-side with their types and attributes intact.  The
worker only dies by BYE, EOF, or signal.
"""

from __future__ import annotations

import collections
import pickle
import socket
import threading

from repro.net import frames

#: Responses remembered for request-id dedup, per worker incarnation.
DEDUP_CAPACITY = 512

#: Response-payload status prefix (first byte of RES/ERR payloads).
STATUS_OK = b"\x00"
STATUS_REPLAY = b"\x01"
STATUS_ERR = b"\x02"


def _portable(exc: BaseException) -> bytes:
    """Pickled form of an exception that is safe to unpickle coordinator-side."""
    from repro.errors import TransportError

    try:
        data = pickle.dumps(exc)
        pickle.loads(data)
        return data
    except Exception:  # noqa: BLE001 - unpicklable payload/ctor
        return pickle.dumps(TransportError(f"{type(exc).__name__}: {exc}"))


def _dispatch(registry, request):
    """Execute one decoded request against worker-local state."""
    from repro.errors import TransportError

    kind = request[0]
    if kind == "site":
        __, address, method, args, kwargs = request
        site = registry.site(address)
        if method == "get_metrics":
            return dict(site.metrics)
        if method == "get_is_down":
            return site.is_down
        return getattr(site, method)(*args, **kwargs)
    if kind == "reg":
        __, method, args = request
        getattr(registry, method)(*args)
        return True
    if kind == "task":
        return request[1]()
    raise TransportError(f"unknown request kind {kind!r}")


def _heartbeat_loop(sock: socket.socket, send_lock: threading.Lock,
                    interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            with send_lock:
                frames.send_frame(sock, frames.HEARTBEAT, 0)
        except Exception:  # noqa: BLE001 - coordinator gone; main loop exits too
            return


def worker_main(host: str, port: int, role: str, index: int,
                heartbeat_s: float) -> None:
    """Connect back to the coordinator and serve frames until BYE."""
    import os

    from repro.errors import TransportClosedError
    from repro.federated.site import FederatedWorkerRegistry
    from repro.net import serde

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop = threading.Event()
    with send_lock:
        frames.send_frame(
            sock, frames.READY, 0,
            serde.dumps({"pid": os.getpid(), "role": role, "index": index}),
        )
    beat = threading.Thread(
        target=_heartbeat_loop, args=(sock, send_lock, heartbeat_s, stop),
        name=f"{role}-{index}-heartbeat", daemon=True,
    )
    beat.start()
    # worker-local state: a private registry (never the singleton — the
    # coordinator's publication log is the source of truth) and the dedup cache
    registry = FederatedWorkerRegistry()
    dedup: "collections.OrderedDict[int, tuple]" = collections.OrderedDict()
    try:
        while True:
            try:
                frame = frames.recv_frame(sock)
            except TransportClosedError:
                break  # coordinator went away: exit quietly
            if frame.kind == frames.BYE:
                break
            if frame.kind != frames.REQ:
                continue  # tolerate unexpected kinds instead of dying
            cached = dedup.get(frame.request_id)
            if cached is not None:
                kind, body = cached
                with send_lock:
                    frames.send_frame(
                        sock, kind, frame.request_id, STATUS_REPLAY + body
                    )
                continue
            try:
                result = _dispatch(registry, serde.loads(frame.payload))
                kind, body = frames.RES, serde.dumps(result)
            except BaseException as exc:  # noqa: BLE001 - typed error propagation
                kind, body = frames.ERR, _portable(exc)
            dedup[frame.request_id] = (kind, body)
            while len(dedup) > DEDUP_CAPACITY:
                dedup.popitem(last=False)
            with send_lock:
                frames.send_frame(sock, kind, frame.request_id, STATUS_OK + body)
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
