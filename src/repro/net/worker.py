"""Entry point of one transport worker process.

A worker is a spawn-context OS process that serves REQ frames until it
reads BYE (or is killed).  One worker serves either role — federated site
host or RDD task executor — because the request payload carries its own
dispatch tag.  Two bootstraps exist:

* :func:`worker_main` (proc transport) — the worker dials the
  coordinator's listener and serves that single connection for life.
* :func:`tcp_worker_main` (tcp transport) — the worker *listens* on its
  own host:port, registers the address with the coordinator through a
  one-shot bootstrap connection, then serves connections one at a time
  from an accept loop.  Worker state (hosted tensors, dedup cache)
  survives across connections, which is exactly what makes a network
  partition recoverable: the coordinator reconnects and resends, and the
  worker either still has the response recorded (replay) or executes it
  for the first time — never twice.

Idempotency (the dedup cache)
-----------------------------
Every request carries a coordinator-assigned id.  The worker records the
response bytes of the last :data:`DEDUP_CAPACITY` requests; a repeated id
— the coordinator resending after a lost ACK or a severed link — replays
the recorded response instead of re-executing.  A side-effecting op
(``put``, ``update``, ``execute_and_store``) therefore cannot
double-execute, and the replayed response is flagged so the coordinator
can count ``dedup_hits``.

Liveness
--------
A daemon thread emits a HEARTBEAT frame every ``heartbeat_s`` on the
session socket (sends are serialised by a lock).  The coordinator counts
frames while awaiting a response; a silent interval with a dead process
is a worker death, triggering respawn + publication replay.

Errors
------
Per-request exceptions are pickled into ERR frames (falling back to a
stringified :class:`~repro.errors.TransportError` for unpicklable ones —
though every :mod:`repro.errors` type round-trips by contract) and
re-raised coordinator-side with their types and attributes intact.  A
corrupt frame on the wire severs the *session* (the framing is no longer
trustworthy) but never kills the worker: the tcp accept loop just waits
for the coordinator to reconnect.
"""

from __future__ import annotations

import collections
import pickle
import socket
import threading

from repro.net import frames

#: Responses remembered for request-id dedup, per worker incarnation.
DEDUP_CAPACITY = 512

#: Response-payload status prefix (first byte of RES/ERR payloads).
STATUS_OK = b"\x00"
STATUS_REPLAY = b"\x01"
STATUS_ERR = b"\x02"


def _portable(exc: BaseException) -> bytes:
    """Pickled form of an exception that is safe to unpickle coordinator-side."""
    from repro.errors import TransportError

    try:
        data = pickle.dumps(exc)
        pickle.loads(data)
        return data
    except Exception:  # noqa: BLE001 - unpicklable payload/ctor
        return pickle.dumps(TransportError(f"{type(exc).__name__}: {exc}"))


def _dispatch(registry, request):
    """Execute one decoded request against worker-local state."""
    from repro.errors import TransportError

    kind = request[0]
    if kind == "site":
        __, address, method, args, kwargs = request
        site = registry.site(address)
        if method == "get_metrics":
            return dict(site.metrics)
        if method == "get_is_down":
            return site.is_down
        return getattr(site, method)(*args, **kwargs)
    if kind == "reg":
        __, method, args = request
        getattr(registry, method)(*args)
        return True
    if kind == "task":
        return request[1]()
    raise TransportError(f"unknown request kind {kind!r}")


def _heartbeat_loop(sock: socket.socket, send_lock: threading.Lock,
                    interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            with send_lock:
                frames.send_frame(sock, frames.HEARTBEAT, 0)
        except Exception:  # noqa: BLE001 - coordinator gone; main loop exits too
            return


def _serve_connection(sock: socket.socket, registry, dedup,
                      heartbeat_s: float, hello: dict) -> str:
    """Serve one connection until it ends; state outlives the session.

    Greets with a READY frame carrying ``hello`` (the coordinator uses
    the pid to verify it reconnected to the same incarnation), starts a
    per-session heartbeat thread, then answers REQ frames.  Returns why
    the session ended: ``"bye"`` (orderly drain — the worker should
    exit), ``"closed"`` (EOF/reset — the link died, the worker may
    accept a new session) or ``"corrupt"`` (undecodable frame — the
    stream cannot be resynchronised, so the session is severed).
    """
    from repro.errors import FrameProtocolError, TransportClosedError
    from repro.net import serde

    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        with send_lock:
            frames.send_frame(sock, frames.READY, 0, serde.dumps(hello))
    except (TransportClosedError, OSError):
        return "closed"
    beat = threading.Thread(
        target=_heartbeat_loop, args=(sock, send_lock, heartbeat_s, stop),
        name="worker-heartbeat", daemon=True,
    )
    beat.start()
    try:
        while True:
            try:
                frame = frames.recv_frame(sock)
            except TransportClosedError:
                return "closed"
            except FrameProtocolError:
                return "corrupt"
            if frame.kind == frames.BYE:
                return "bye"
            if frame.kind != frames.REQ:
                continue  # tolerate unexpected kinds instead of dying
            cached = dedup.get(frame.request_id)
            if cached is not None:
                kind, body = cached
                try:
                    with send_lock:
                        frames.send_frame(
                            sock, kind, frame.request_id, STATUS_REPLAY + body
                        )
                except (TransportClosedError, OSError):
                    return "closed"
                continue
            try:
                result = _dispatch(registry, serde.loads(frame.payload))
                kind, body = frames.RES, serde.dumps(result)
            except BaseException as exc:  # noqa: BLE001 - typed error propagation
                kind, body = frames.ERR, _portable(exc)
            # record BEFORE sending: if the link dies mid-send, the resent
            # request must hit the cache, not execute again
            dedup[frame.request_id] = (kind, body)
            while len(dedup) > DEDUP_CAPACITY:
                dedup.popitem(last=False)
            try:
                with send_lock:
                    frames.send_frame(
                        sock, kind, frame.request_id, STATUS_OK + body
                    )
            except (TransportClosedError, OSError):
                return "closed"
    finally:
        stop.set()


def worker_main(host: str, port: int, role: str, index: int,
                heartbeat_s: float) -> None:
    """Proc transport: connect back to the coordinator and serve until BYE."""
    import os

    from repro.federated.site import FederatedWorkerRegistry

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    # worker-local state: a private registry (never the singleton — the
    # coordinator's publication log is the source of truth) and the dedup cache
    registry = FederatedWorkerRegistry()
    dedup: "collections.OrderedDict[int, tuple]" = collections.OrderedDict()
    hello = {"pid": os.getpid(), "role": role, "index": index}
    try:
        _serve_connection(sock, registry, dedup, heartbeat_s, hello)
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


def tcp_worker_main(boot_host: str, boot_port: int, bind_host: str,
                    role: str, index: int, heartbeat_s: float) -> None:
    """TCP transport: listen on a real address and serve sessions until BYE.

    Binds an ephemeral port on ``bind_host``, registers
    ``{pid, host, port}`` with the coordinator through a one-shot
    bootstrap connection, then accepts coordinator sessions one at a
    time.  A severed or corrupted session returns to the accept loop
    with all hosted state intact — reconnect-and-resend is the
    coordinator's job; only BYE (graceful drain) ends the process.
    """
    import os

    from repro.federated.site import FederatedWorkerRegistry
    from repro.net import serde

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((bind_host, 0))
    listener.listen(8)
    host, port = listener.getsockname()[:2]
    boot = socket.create_connection((boot_host, boot_port))
    try:
        frames.send_frame(boot, frames.READY, 0, serde.dumps({
            "pid": os.getpid(), "host": host, "port": port,
            "role": role, "index": index,
        }))
    finally:
        try:
            boot.close()
        except OSError:  # pragma: no cover
            pass
    registry = FederatedWorkerRegistry()
    dedup: "collections.OrderedDict[int, tuple]" = collections.OrderedDict()
    hello = {"pid": os.getpid(), "role": role, "index": index}
    try:
        while True:
            try:
                sock, __ = listener.accept()
            except OSError:  # pragma: no cover - listener torn down
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                reason = _serve_connection(
                    sock, registry, dedup, heartbeat_s, hello
                )
            finally:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
            if reason == "bye":
                break
    finally:
        try:
            listener.close()
        except OSError:  # pragma: no cover
            pass
