"""TcpTransport: workers on real TCP addresses, links that can die.

The proc transport (:mod:`repro.net.proc`) reaches workers through
pipes-in-spirit: the coordinator listens, each spawned worker dials back
once, and that single connection *is* the worker — losing it means the
worker is gone.  This module inverts the direction to make the link a
first-class, failable resource, the way it is between real machines:

* each worker **listens** on its own ``host:port`` (loopback by default,
  a LAN address via ``transport_host``) and registers the address with
  the coordinator through a one-shot bootstrap connection;
* the coordinator keeps that **address book** (``(role, index) ->
  (host, port)``, surfaced in the stats snapshot) and **dials** workers
  with a connect timeout, verifying the greeting pid so a half-open or
  recycled port can never be mistaken for the right peer;
* a severed link is repaired by **reconnect + same-id resend**, and only
  an actually-dead peer falls back to the proc-style respawn +
  publication-log replay.

Partition semantics
-------------------
The two failure modes the coordinator must distinguish:

==============  =========================================================
peer dead       process gone: respawn a fresh incarnation at a fresh
                address, replay the publication log (state rebuild)
link down       process alive, connection severed: redial with
                :class:`~repro.resilience.retry.RetryPolicy` capped-expo
                backoff + jitter, then resend the in-flight request with
                the SAME id — if the worker executed it during the
                partition, its dedup cache answers STATUS_REPLAY, so the
                request is never executed twice
==============  =========================================================

:meth:`TcpTransport._attempt` implements the link-down path as a repair
loop *around* the proc attempt: every EOF/torn-frame failure first tries
:meth:`_reconnect`; only when the peer is provably dead (process exited,
redial budget exhausted, or a different pid answered) does the error
propagate to the proc death loop, which respawns and replays.  Worker
state survives partitions because the tcp worker's registry and dedup
cache live across connections (:func:`repro.net.worker.tcp_worker_main`).

Everything above the socket — pools, publication log, heartbeat-based
liveness, request timeouts, the dedup protocol — is inherited from
:class:`~repro.net.proc.ProcTransport` unchanged.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.errors import FrameProtocolError, TransportClosedError, TransportError
from repro.net import frames, serde
from repro.net.proc import READY_TIMEOUT_S, ProcTransport, _Handle
from repro.net.worker import tcp_worker_main
from repro.resilience.retry import RetryPolicy


class _TcpHandle(_Handle):
    """A worker incarnation plus the address it listens on."""

    __slots__ = ("host", "port")

    def __init__(self, role: str, index: int, incarnation: int, process,
                 sock: socket.socket, pid: int, host: str, port: int):
        super().__init__(role, index, incarnation, process, sock, pid)
        self.host = host
        self.port = port


class TcpTransport(ProcTransport):
    """Process transport over dialable TCP addresses (see module docstring)."""

    name = "tcp"

    _instance: Optional["TcpTransport"] = None

    #: Ceiling on link repairs for ONE attempt, so a link that dies
    #: instantly every time cannot spin forever (each repair already
    #: burned a full reconnect budget).
    MAX_LINK_REPAIRS = 8

    def __init__(self, site_workers: int = 2, task_workers: int = 2,
                 heartbeat_s: float = 0.25, request_timeout_s: float = 60.0,
                 respawn_limit: int = 3, miss_grace: float = 3.0,
                 host: str = "127.0.0.1", connect_timeout_s: float = 5.0,
                 reconnect_retries: int = 4,
                 reconnect_backoff_ms: float = 20.0,
                 reconnect_backoff_max_ms: float = 500.0):
        super().__init__(site_workers, task_workers, heartbeat_s,
                         request_timeout_s, respawn_limit,
                         miss_grace=miss_grace)
        self.host = host
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_policy = RetryPolicy(
            max_retries=reconnect_retries,
            backoff_ms=reconnect_backoff_ms,
            max_backoff_ms=reconnect_backoff_max_ms,
        )
        # deterministic jitter stream for reconnect backoff
        self._reconnect_rng = random.Random(0x7C9D1EB3)
        #: The remote-addressable registry: (role, index) -> (host, port).
        self._addresses: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._addresses_lock = threading.Lock()

    @classmethod
    def _params_from(cls, config) -> dict:
        if config is None:
            from repro.config import ReproConfig
            config = ReproConfig()
        params = super()._params_from(config)
        params.update({
            "host": config.transport_host,
            "connect_timeout_s": config.tcp_connect_timeout_s,
            "reconnect_retries": config.tcp_reconnect_retries,
        })
        return params

    # --- connection lifecycle ------------------------------------------------

    def _dial(self, host: str, port: int) -> Tuple[socket.socket, int]:
        """Connect to a worker's service address and read its greeting.

        Returns ``(socket, pid)``.  The greeting is what detects half-open
        connections: a listener that accepts but whose process is wedged
        (or a recycled port owned by a stranger) fails the READY exchange
        within ``connect_timeout_s`` instead of wedging the coordinator.
        """
        sock = socket.create_connection(
            (host, port), timeout=self.connect_timeout_s
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.connect_timeout_s)
            greeting = frames.recv_frame(sock)
            if greeting.kind != frames.READY:
                raise FrameProtocolError(
                    f"worker at {host}:{port}: expected READY greeting, "
                    f"got kind {greeting.kind}"
                )
            hello = serde.loads(greeting.payload)
        except BaseException:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            raise
        sock.settimeout(self.heartbeat_s)
        return sock, hello["pid"]

    def _spawn(self, role: str, index: int, incarnation: int) -> _TcpHandle:
        if self._closed:
            raise TransportError("transport is closed")
        boot = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            boot.bind((self.host, 0))
            boot.listen(1)
            boot.settimeout(READY_TIMEOUT_S)
            boot_port = boot.getsockname()[1]
            process = self._mp.Process(
                target=tcp_worker_main,
                args=(self.host, boot_port, self.host, role, index,
                      self.heartbeat_s),
                name=f"net-tcp-{role}-{index}.{incarnation}",
                daemon=True,
            )
            process.start()
            try:
                conn, __ = boot.accept()
            except socket.timeout:
                process.kill()
                raise TransportError(
                    f"tcp {role} worker {index} did not register within "
                    f"{READY_TIMEOUT_S:.0f}s"
                ) from None
        finally:
            boot.close()
        try:
            conn.settimeout(READY_TIMEOUT_S)
            ready = frames.recv_frame(conn)
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if ready.kind != frames.READY:
            raise FrameProtocolError(
                f"tcp {role} worker {index}: expected READY registration, "
                f"got kind {ready.kind}"
            )
        hello = serde.loads(ready.payload)
        host, port = hello["host"], hello["port"]
        with self._addresses_lock:
            self._addresses[(role, index)] = (host, port)
        sock, pid = self._dial(host, port)
        if pid != hello["pid"]:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            raise TransportError(
                f"tcp {role} worker {index} at {host}:{port} answered with "
                f"pid {pid}, expected {hello['pid']}"
            )
        return _TcpHandle(role, index, incarnation, process, sock,
                          hello["pid"], host, port)

    def _reconnect(self, handle: _TcpHandle) -> bool:
        """Repair a severed link to a live worker.

        Redials the worker's registered address under the reconnect
        policy's capped-expo backoff + deterministic jitter.  Returns
        ``False`` when the peer is dead (process gone, budget exhausted,
        or a different pid greeted us) — the caller then escalates to
        respawn + replay.
        """
        try:
            handle.sock.close()
        except OSError:  # pragma: no cover
            pass
        attempt = 0
        while True:
            if not handle.alive():
                return False
            try:
                sock, pid = self._dial(handle.host, handle.port)
            except (OSError, TransportError, FrameProtocolError):
                if attempt >= self.reconnect_policy.max_retries:
                    return False
                delay = self.reconnect_policy.delay_s(
                    attempt, self._reconnect_rng
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if pid != handle.pid:
                # a stranger on a recycled port, or a raced incarnation:
                # either way this is not the peer we were talking to
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
                return False
            handle.sock = sock
            self._bump("reconnects")
            return True

    # --- the attempt, wrapped in link repair ---------------------------------

    def _attempt(self, handle: _TcpHandle, request_id: int, body: bytes,
                 point: Optional[str] = None):
        repairs = 0
        while True:
            try:
                return super()._attempt(handle, request_id, body, point)
            except (TransportClosedError, FrameProtocolError):
                repairs += 1
                if repairs > self.MAX_LINK_REPAIRS \
                        or not self._reconnect(handle):
                    raise  # peer dead: the proc death loop respawns + replays
                # link repaired: resend the SAME id; a request that
                # executed during the partition is answered from the
                # dedup cache (STATUS_REPLAY), never re-executed
                point = None  # a kill fault gets one shot per attempt

    def snapshot(self) -> dict:
        snap = super().snapshot()
        with self._addresses_lock:
            snap["addresses"] = {
                f"{role}-{index}": f"{host}:{port}"
                for (role, index), (host, port) in sorted(self._addresses.items())
            }
        return snap
