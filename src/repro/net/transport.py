"""The transport interface: where federated sites and RDD tasks execute.

A :class:`Transport` answers two questions for the runtime:

* *where do federated sites live?* — :meth:`Transport.registry` returns
  the :class:`~repro.federated.site.FederatedWorkerRegistry` (or a
  registry of site *proxies*) that hosts them;
* *where do RDD tasks run?* — :meth:`Transport.run_task` executes one
  per-partition task callable.

:class:`InProcTransport` keeps today's behaviour bit-for-bit: sites are
in-process objects in the default registry and tasks run directly on the
calling thread (the Spark context's thread pool).  It is the tier-1
default because it adds zero overhead.  :class:`~repro.net.proc.
ProcTransport` moves both behind real OS processes and a frame protocol,
so the resilience and checkpoint layers face genuine process deaths.
"""

from __future__ import annotations

from typing import Callable, List, Optional

#: Stable key set of every transport's stats snapshot, so obs reports and
#: CI assertions can rely on the keys existing in both modes.
STAT_KEYS = (
    "frames_sent",
    "frames_received",
    "bytes_sent",
    "bytes_received",
    "heartbeats_seen",
    "heartbeats_missed",
    "worker_deaths",
    "worker_respawns",
    "resent_requests",
    "dedup_hits",
    "replayed_publications",
    # tcp/chaos link lifecycle (always-zero under inproc/proc)
    "reconnects",
    "partitions",
    "frames_dropped",
    "frames_duplicated",
    "frames_corrupt_rejected",
)


class Transport:
    """Strategy interface for remote execution (see module docstring)."""

    name = "abstract"

    def registry(self):
        """The federated worker registry this transport hosts sites in."""
        raise NotImplementedError

    def run_task(self, task: Callable[[], List]) -> List:
        """Execute one RDD per-partition task and return its records."""
        raise NotImplementedError

    def bind_resilience(self, resilience) -> None:
        """Attach the run's :class:`~repro.resilience.ResilienceManager`.

        Gives the transport the fault injector (for the ``fed.worker`` /
        ``rdd.worker`` SIGKILL points) and the shared stats so worker
        deaths/respawns are counted in the resilience section too.
        """

    def snapshot(self) -> dict:
        """The obs ``transport`` section (stable keys: ``STAT_KEYS``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (workers, sockets)."""


class InProcTransport(Transport):
    """Thread-simulation transport: the zero-overhead tier-1 default."""

    name = "inproc"

    def registry(self):
        from repro.federated.site import FederatedWorkerRegistry

        return FederatedWorkerRegistry.default()

    def run_task(self, task: Callable[[], List]) -> List:
        return task()

    def snapshot(self) -> dict:
        snap = {key: 0 for key in STAT_KEYS}
        snap["mode"] = self.name
        return snap


def for_config(config) -> Optional[Transport]:
    """The transport a :class:`~repro.config.ReproConfig` selects.

    Returns ``None`` for ``inproc`` — the runtime treats a missing
    transport as the direct in-process path, keeping every hot-path check
    a single ``is None`` like the other optional subsystems.
    """
    mode = getattr(config, "transport", "inproc")
    if mode == "proc":
        from repro.net.proc import ProcTransport

        return ProcTransport.default(config)
    if mode == "tcp":
        from repro.net.chaos import ChaosTransport, spec_targets_network

        if spec_targets_network(getattr(config, "fault_spec", None)):
            # wire faults requested: interpose the chaos layer
            return ChaosTransport.default(config)
        from repro.net.tcp import TcpTransport

        return TcpTransport.default(config)
    return None


def registry_for(config):
    """The federated registry for a config's transport mode."""
    transport = for_config(config)
    if transport is not None:
        return transport.registry()
    from repro.federated.site import FederatedWorkerRegistry

    return FederatedWorkerRegistry.default()
