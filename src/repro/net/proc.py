"""ProcTransport: federated sites and RDD executors as real OS processes.

The coordinator keeps two small fixed pools of spawn-context workers —
site hosts (federated data plane) and task executors (RDD tasks) — each
connected over a localhost TCP socket speaking the :mod:`repro.net.frames`
protocol.  Pools are deliberately small and shared: a qa fuzz sweep hosts
hundreds of site addresses, so addresses hash onto site workers by
``crc32(address) % n`` instead of mapping one process per address.

Failure model
-------------
* **Liveness** — workers heartbeat on their socket; while awaiting a
  response the coordinator counts silent grace windows
  (``heartbeats_missed``) and probes the process.  EOF, a torn frame, or
  a dead-and-silent process all mean the worker died.
* **Respawn + replay** — a dead site worker loses its hosted tensors.
  The coordinator keeps a per-address *publication log* (every ``put``,
  ``update``, ``execute_and_store``, ``stop``/``start``, in order) and
  replays it into the fresh incarnation — lineage-style recovery: the
  ops are deterministic, so the republished state is bit-identical.
  Task executors are stateless and respawn bare.
* **Idempotent resend** — the in-flight request is resent with the SAME
  request id.  If the old incarnation had executed it and only the ACK
  was lost (wedged worker, resend-on-timeout), the worker's dedup cache
  replays the recorded response instead of double-executing
  (``dedup_hits``).
* **Chaos** — with a resilience manager bound, the ``fed.worker`` /
  ``rdd.worker`` fault points SIGKILL the worker right after a request
  is sent, exercising exactly this recovery path on a seeded schedule.

The transport is a process-global singleton (:meth:`ProcTransport.default`)
so repeated runs — the qa lattice, benches — reuse warm workers instead
of paying a Python+numpy spawn per run.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import signal
import socket
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    FederatedError,
    FrameProtocolError,
    TransportClosedError,
    TransportError,
    WorkerRespawnError,
)
from repro.federated.site import FederatedWorkerRegistry
from repro.net import frames, serde
from repro.net.transport import STAT_KEYS, Transport
from repro.net.worker import STATUS_REPLAY, worker_main

#: How long one worker gets to spawn, import, connect, and handshake.
READY_TIMEOUT_S = 60.0


class _Handle:
    """One worker incarnation: process + its connected socket."""

    __slots__ = ("role", "index", "incarnation", "process", "sock", "pid")

    def __init__(self, role: str, index: int, incarnation: int, process,
                 sock: socket.socket, pid: int):
        self.role = role
        self.index = index
        self.incarnation = incarnation
        self.process = process
        self.sock = sock
        self.pid = pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.alive():
            try:
                os.kill(self.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - raced the death
                pass


class RemoteSiteProxy:
    """The :class:`~repro.federated.site.FederatedSite` surface over RPC.

    Federated instructions and the resilient channel only see this
    surface, so the push-down semantics, privacy checks, and byte
    accounting all run *worker-side*, unchanged.  Mutating calls are
    recorded in the transport's publication log after they succeed.
    """

    def __init__(self, transport: "ProcTransport", address: str):
        self._transport = transport
        self.address = address

    def _call(self, method: str, *args, mutate: bool = False, **kwargs):
        return self._transport.site_call(
            self.address, method, args, kwargs, mutate=mutate
        )

    # hosting / reads
    def put(self, name, block, constraint=None) -> None:
        self._call("put", name, block, constraint, mutate=True)

    def has(self, name) -> bool:
        return self._call("has", name)

    def constraint(self, name):
        return self._call("constraint", name)

    def metadata(self, name):
        return self._call("metadata", name)

    def fetch(self, name):
        return self._call("fetch", name)

    # execution
    def execute_local(self, name, operation, payload_bytes=0, flops=0):
        return self._call("execute_local", name, operation, payload_bytes, flops)

    def execute_and_return(self, name, operation, payload_bytes=0, flops=0):
        return self._call(
            "execute_and_return", name, operation, payload_bytes, flops
        )

    def execute_and_store(self, name, out, operation, payload_bytes=0, flops=0):
        return self._call(
            "execute_and_store", name, out, operation, payload_bytes, flops,
            mutate=True,
        )

    def update(self, name, block) -> None:
        self._call("update", name, block, mutate=True)

    # lifecycle (logged so a respawned incarnation lands in the same state)
    def stop(self) -> None:
        self._call("stop", mutate=True)

    def start(self) -> None:
        self._call("start", mutate=True)

    @property
    def is_down(self) -> bool:
        return self._call("get_is_down")

    @property
    def metrics(self) -> dict:
        """A fresh snapshot of the worker-side site's transfer accounting."""
        return self._call("get_metrics")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteSiteProxy({self.address})"


class ProxyRegistry(FederatedWorkerRegistry):
    """An address book of :class:`RemoteSiteProxy` objects.

    Subclasses the in-process registry so the coordinator-side health
    machinery — blacklists, cooldowns, replica chains, used verbatim by
    :class:`~repro.resilience.channel.ResilientChannel` — is inherited
    unchanged; only site creation/lookup crosses the process boundary.
    """

    def __init__(self, transport: "ProcTransport"):
        super().__init__()
        self._transport = transport

    def start_site(self, address: str) -> RemoteSiteProxy:
        with self._lock:
            proxy = self._sites.get(address)
        if proxy is not None:
            return proxy
        self._transport.registry_call(address, "start_site")
        with self._lock:
            proxy = self._sites.get(address)
            if proxy is None:
                proxy = self._sites[address] = RemoteSiteProxy(
                    self._transport, address
                )
        return proxy

    def site(self, address: str) -> RemoteSiteProxy:
        with self._lock:
            proxy = self._sites.get(address)
        if proxy is None:
            raise FederatedError(f"no federated worker at {address!r}")
        return proxy

    def stop_site(self, address: str) -> None:
        self._transport.registry_call(address, "stop_site", log=False)
        self._transport.forget_address(address)
        with self._lock:
            self._sites.pop(address, None)

    def clear(self) -> None:
        self._transport.clear_sites()
        super().clear()

    def total_bytes_transferred(self) -> int:
        with self._lock:
            proxies = list(self._sites.values())
        return sum(
            proxy.metrics["bytes_sent"] + proxy.metrics["bytes_received"]
            for proxy in proxies
        )


class ProcTransport(Transport):
    """Process-boundary transport (see module docstring)."""

    name = "proc"

    _instance: Optional["ProcTransport"] = None
    _instance_lock = threading.Lock()

    def __init__(self, site_workers: int = 2, task_workers: int = 2,
                 heartbeat_s: float = 0.25, request_timeout_s: float = 60.0,
                 respawn_limit: int = 3, miss_grace: float = 3.0):
        if site_workers < 1 or task_workers < 1:
            raise TransportError("transport needs at least one worker per pool")
        if heartbeat_s <= 0 or miss_grace < 1.0:
            raise TransportError(
                "heartbeat interval must be positive and the miss grace "
                "at least one heartbeat window"
            )
        import multiprocessing

        self._mp = multiprocessing.get_context("spawn")
        self.heartbeat_s = heartbeat_s
        self.request_timeout_s = request_timeout_s
        self.respawn_limit = respawn_limit
        #: Silent grace windows (multiples of the heartbeat interval)
        #: before a missed heartbeat is counted and the process probed.
        self.miss_grace = miss_grace
        self._pools: Dict[str, List[Optional[_Handle]]] = {
            "fed": [None] * site_workers,
            "rdd": [None] * task_workers,
        }
        self._slot_locks: Dict[str, List[threading.RLock]] = {
            role: [threading.RLock() for __ in pool]
            for role, pool in self._pools.items()
        }
        self._seq = itertools.count(1)
        self._seq_lock = threading.Lock()
        self._task_rr = itertools.count()
        self._stats = {key: 0 for key in STAT_KEYS}
        self._stats_lock = threading.Lock()
        #: address -> ordered request tuples to replay into a respawn.
        self._log: Dict[str, List[Tuple]] = {}
        self._log_lock = threading.RLock()
        self._registry = ProxyRegistry(self)
        self._resilience = None
        self._closed = False

    @classmethod
    def _params_from(cls, config) -> dict:
        """Constructor kwargs derived from a :class:`ReproConfig`.

        ``config=None`` resolves through a default config so a bare
        ``default()`` and a ``default(ReproConfig())`` agree on the same
        singleton instead of churning it.
        """
        if config is None:
            from repro.config import ReproConfig
            config = ReproConfig()
        return {
            "heartbeat_s": config.heartbeat_interval_s,
            "miss_grace": config.heartbeat_miss_grace,
            "request_timeout_s": config.transport_request_timeout_s,
        }

    @classmethod
    def default(cls, config=None) -> "ProcTransport":
        """The process-global transport for this class (created on first
        use, recreated only when the config-derived knobs change)."""
        params = cls._params_from(config)
        with cls._instance_lock:
            instance = cls.__dict__.get("_instance")
            stale = (
                instance is None or instance._closed
                or getattr(instance, "_build_params", None) != params
            )
            if stale:
                if instance is not None and not instance._closed:
                    instance.close()
                instance = cls(**params)
                instance._build_params = params
                atexit.register(instance.close)
                cls._instance = instance
            return instance

    # --- Transport interface -------------------------------------------------

    def registry(self) -> ProxyRegistry:
        return self._registry

    def run_task(self, task) -> List:
        index = next(self._task_rr) % len(self._pools["rdd"])
        return self._round_trip("rdd", index, ("task", task), "rdd.worker")

    def bind_resilience(self, resilience) -> None:
        self._resilience = resilience

    def snapshot(self) -> dict:
        with self._stats_lock:
            snap = dict(self._stats)
        snap["mode"] = self.name
        snap["site_workers"] = len(self._pools["fed"])
        snap["task_workers"] = len(self._pools["rdd"])
        snap["live_workers"] = sum(
            1 for pool in self._pools.values()
            for handle in pool if handle is not None and handle.alive()
        )
        return snap

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for role, pool in self._pools.items():
            for index, handle in enumerate(pool):
                if handle is None:
                    continue
                try:
                    frames.send_frame(handle.sock, frames.BYE, 0)
                except (OSError, TransportError):
                    pass
                try:
                    handle.sock.close()
                except OSError:  # pragma: no cover
                    pass
                handle.process.join(timeout=2.0)
                if handle.alive():  # pragma: no cover - wedged worker
                    handle.kill()
                    handle.process.join(timeout=2.0)
                pool[index] = None

    # --- request plumbing ----------------------------------------------------

    def site_call(self, address: str, method: str, args: Tuple = (),
                  kwargs: Optional[dict] = None, mutate: bool = False):
        """One RPC to the worker hosting ``address``; log mutations."""
        kwargs = kwargs or {}
        request = ("site", address, method, args, kwargs)
        result = self._round_trip(
            "fed", self._owner(address), request, "fed.worker"
        )
        if mutate:
            with self._log_lock:
                self._log.setdefault(address, []).append(request)
        return result

    def registry_call(self, address: str, method: str, log: bool = True) -> None:
        """A registry-level RPC (site creation/removal) for one address."""
        request = ("reg", method, (address,))
        self._round_trip("fed", self._owner(address), request, "fed.worker")
        if log:
            with self._log_lock:
                self._log.setdefault(address, []).append(request)

    def forget_address(self, address: str) -> None:
        with self._log_lock:
            self._log.pop(address, None)

    def clear_sites(self) -> None:
        """Wipe hosted state on every live site worker and drop the log."""
        with self._log_lock:
            self._log.clear()
        for index, handle in enumerate(self._pools["fed"]):
            if handle is None:
                continue
            try:
                self._round_trip("fed", index, ("reg", "clear", ()), None)
            except (TransportError, OSError):  # pragma: no cover - dying pool
                pass

    def _owner(self, address: str) -> int:
        return zlib.crc32(address.encode()) % len(self._pools["fed"])

    def _next_id(self) -> int:
        with self._seq_lock:
            return next(self._seq)

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += amount

    # --- worker lifecycle ----------------------------------------------------

    def _spawn(self, role: str, index: int, incarnation: int) -> _Handle:
        if self._closed:
            raise TransportError("transport is closed")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            listener.settimeout(READY_TIMEOUT_S)
            port = listener.getsockname()[1]
            process = self._mp.Process(
                target=worker_main,
                args=("127.0.0.1", port, role, index, self.heartbeat_s),
                name=f"net-{role}-{index}.{incarnation}",
                daemon=True,
            )
            process.start()
            try:
                sock, __ = listener.accept()
            except socket.timeout:
                process.kill()
                raise TransportError(
                    f"{role} worker {index} did not connect within "
                    f"{READY_TIMEOUT_S:.0f}s"
                ) from None
        finally:
            listener.close()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(READY_TIMEOUT_S)
        ready = frames.recv_frame(sock)
        if ready.kind != frames.READY:
            raise FrameProtocolError(
                f"{role} worker {index}: expected READY, got kind {ready.kind}"
            )
        hello = serde.loads(ready.payload)
        sock.settimeout(self.heartbeat_s)
        return _Handle(role, index, incarnation, process, sock, hello["pid"])

    def _ensure(self, role: str, index: int) -> _Handle:
        # caller holds the slot lock
        handle = self._pools[role][index]
        if handle is None:
            handle = self._spawn(role, index, incarnation=0)
            self._pools[role][index] = handle
        return handle

    def _respawn(self, role: str, index: int) -> _Handle:
        """Fresh incarnation + publication replay (site workers only)."""
        dead = self._pools[role][index]
        try:
            dead.sock.close()
        except OSError:  # pragma: no cover
            pass
        handle = self._spawn(role, index, incarnation=dead.incarnation + 1)
        self._pools[role][index] = handle
        self._bump("worker_respawns")
        if self._resilience is not None:
            self._resilience.stats.incr("worker_respawns")
        if role == "fed":
            self._replay(handle, index)
        return handle

    def _replay(self, handle: _Handle, index: int) -> None:
        """Republish every logged mutation owned by this worker, in order.

        Raises :class:`TransportClosedError` if the fresh worker dies mid
        replay — the caller's death loop counts it and respawns again
        (replay restarts from scratch; puts overwrite, so it converges).
        """
        with self._log_lock:
            batches = [
                (address, list(entries))
                for address, entries in sorted(self._log.items())
                if self._owner(address) == index
            ]
        replayed = 0
        for __, entries in batches:
            for request in entries:
                self._attempt(handle, self._next_id(), serde.dumps(request))
                replayed += 1
        if replayed:
            self._bump("replayed_publications", replayed)

    # --- the round trip ------------------------------------------------------

    def _round_trip(self, role: str, index: int, request: Tuple,
                    point: Optional[str]):
        """Send one request; survive worker deaths by respawn + resend."""
        body = serde.dumps(request)
        request_id = self._next_id()
        deaths = 0
        with self._slot_locks[role][index]:
            while True:
                handle = self._ensure(role, index)
                try:
                    return self._attempt(handle, request_id, body, point)
                except (TransportClosedError, FrameProtocolError) as exc:
                    deaths += 1
                    self._bump("worker_deaths")
                    if self._resilience is not None:
                        self._resilience.stats.incr("worker_deaths")
                    if deaths > self.respawn_limit:
                        raise WorkerRespawnError(role, index, deaths) from exc
                    self._respawn(role, index)
                    self._bump("resent_requests")
                    if self._resilience is not None:
                        self._resilience.stats.incr("resent_requests")
                    # loop: resend with the SAME request id (idempotent)

    def _attempt(self, handle: _Handle, request_id: int, body: bytes,
                 point: Optional[str] = None):
        """One send + await on one incarnation; raises on worker death."""
        self._send(handle, frames.REQ, request_id, body)
        if point is not None and self._resilience is not None \
                and self._resilience.trip(point):
            # seeded chaos: SIGKILL the worker mid-request; the death loop
            # above must make this invisible to the caller
            handle.kill()
        grace_s = self.heartbeat_s * self.miss_grace
        deadline = time.monotonic() + self.request_timeout_s
        last_frame = time.monotonic()
        resent = False
        while True:
            try:
                frame = self._recv(handle)
            except socket.timeout:
                now = time.monotonic()
                if now - last_frame > grace_s:
                    self._bump("heartbeats_missed")
                    last_frame = now  # one miss per silent grace window
                    if not handle.alive():
                        raise TransportClosedError(
                            f"{handle.role} worker {handle.index} died "
                            f"(silent and process gone)"
                        ) from None
                if now > deadline:
                    if not resent and handle.alive():
                        # lost-ACK recovery: resend the SAME id; the dedup
                        # cache replays if the worker already executed it
                        self._send(handle, frames.REQ, request_id, body)
                        self._bump("resent_requests")
                        resent = True
                        deadline = now + self.request_timeout_s
                        continue
                    handle.kill()
                    raise TransportClosedError(
                        f"{handle.role} worker {handle.index} wedged on "
                        f"request {request_id} (no response in "
                        f"{self.request_timeout_s:.0f}s)"
                    ) from None
                continue
            last_frame = time.monotonic()
            if frame.kind == frames.HEARTBEAT:
                self._bump("heartbeats_seen")
                continue
            if frame.kind not in (frames.RES, frames.ERR):
                continue  # e.g. a READY greeting after a tcp reconnect
            status, data = frame.payload[:1], frame.payload[1:]
            if status == STATUS_REPLAY:
                # counted even for stale ids: a duplicated request answers
                # once normally and once as a replay, and the replay can
                # land while a later request is already in flight
                self._bump("dedup_hits")
            if frame.request_id != request_id:
                continue  # stale response to an abandoned id
            if frame.kind == frames.RES:
                return serde.loads(data)
            raise pickle.loads(data)

    def _send(self, handle: _Handle, kind: int, request_id: int,
              payload: bytes) -> None:
        sent = frames.send_frame(handle.sock, kind, request_id, payload)
        with self._stats_lock:
            self._stats["frames_sent"] += 1
            self._stats["bytes_sent"] += sent

    def _recv(self, handle: _Handle) -> frames.Frame:
        frame = frames.recv_frame(handle.sock)
        with self._stats_lock:
            self._stats["frames_received"] += 1
            self._stats["bytes_received"] += frames.frame_size(len(frame.payload))
        return frame
