"""ChaosTransport: deterministic wire-level fault injection over TCP.

A network-fault interposer layered on :class:`~repro.net.tcp.TcpTransport`
and wired into the :mod:`repro.resilience.faults` grammar, so the same
``POINT:p=F|fail=N|latency_ms=F`` spec that already drives spill/worker
chaos can drop, delay, duplicate, bit-flip, and sever frames — each point
drawing from its own crc32-seeded RNG stream, so a chaos run is a
repeatable test, not an outage.

Wire-level points (:data:`NET_POINTS`)
--------------------------------------
================  ========================================================
``net.drop``      a REQ frame is silently not sent, or a received RES/ERR
                  frame is discarded — recovered by the request-timeout
                  same-id resend (``frames_dropped``)
``net.delay_ms``  latency added before a frame is put on the wire
                  (``latency_ms=`` rule; injection counted by resilience)
``net.dup``       a REQ frame is sent twice — the worker's dedup cache
                  answers the duplicate with STATUS_REPLAY, proving
                  exactly-once execution (``frames_duplicated``)
``net.corrupt``   one deterministically-chosen bit of the encoded frame
                  is flipped before sending — the worker's frame CRCs
                  reject it and sever the session; the coordinator
                  reconnects and resends (``frames_corrupt_rejected``)
``net.partition`` the link is severed mid-stream (socket closed while a
                  request is in flight), e.g. ``net.partition:fail=N``
                  for exactly N seeded partitions — recovery is
                  reconnect + same-id resend, and because the request
                  already reached the worker the answer comes back as a
                  dedup replay, never a second execution (``partitions``)
================  ========================================================

Faults are only armed while a resilience manager with net rules is bound
(one is bound per run by the execution context), so hosting traffic that
precedes a run and the orderly BYE drain stay clean.  Drop/dup/corrupt
apply to REQ frames only: chaos must never corrupt its own shutdown.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.errors import TransportClosedError
from repro.net import frames
from repro.net.tcp import TcpTransport

#: The wire-level fault points, registered in
#: :data:`repro.resilience.faults.KNOWN_POINTS`.
NET_POINTS = (
    "net.drop", "net.delay_ms", "net.dup", "net.corrupt", "net.partition",
)


def spec_targets_network(spec: Optional[str]) -> bool:
    """Whether a fault spec names any wire-level point (``net.*`` or ``*``)."""
    if not spec:
        return False
    for clause in spec.split(";"):
        point = clause.partition(":")[0].strip()
        if point == "*" or point.startswith("net."):
            return True
    return False


class ChaosTransport(TcpTransport):
    """TCP transport with seeded wire faults (see module docstring)."""

    name = "chaos_tcp"

    _instance: Optional["ChaosTransport"] = None

    def _armed(self):
        """The bound resilience manager, or None while faults are unarmed."""
        resilience = self._resilience
        if resilience is None or resilience.injector is None:
            return None
        return resilience

    @staticmethod
    def _flip_one_bit(data: bytes, request_id: int) -> bytes:
        """Flip one deterministically-chosen bit of an encoded frame."""
        flipped = bytearray(data)
        position = (request_id * 2654435761 + len(data)) % (len(data) * 8)
        flipped[position // 8] ^= 1 << (position % 8)
        return bytes(flipped)

    def _send(self, handle, kind: int, request_id: int,
              payload: bytes) -> None:
        resilience = self._armed()
        if resilience is None:
            return super()._send(handle, kind, request_id, payload)
        resilience.trip("net.delay_ms")  # latency-only rule sleeps in trip()
        if kind == frames.REQ and resilience.trip("net.drop"):
            # the frame vanishes on the wire; the await loop times out and
            # resends the same id
            self._bump("frames_dropped")
            return
        if kind == frames.REQ and resilience.trip("net.corrupt"):
            data = self._flip_one_bit(
                frames.encode(kind, request_id, payload), request_id
            )
            self._bump("frames_corrupt_rejected")
            try:
                handle.sock.sendall(data)
            except (ConnectionError, BrokenPipeError) as exc:
                raise TransportClosedError(
                    f"connection lost mid-send: {exc}"
                ) from exc
            with self._stats_lock:
                self._stats["frames_sent"] += 1
                self._stats["bytes_sent"] += len(data)
            return
        super()._send(handle, kind, request_id, payload)
        if kind == frames.REQ and resilience.trip("net.dup"):
            # duplicated delivery: the worker executes once and answers the
            # twin from its dedup cache with STATUS_REPLAY
            self._bump("frames_duplicated")
            super()._send(handle, kind, request_id, payload)

    def _recv(self, handle) -> frames.Frame:
        resilience = self._armed()
        if resilience is None:
            return super()._recv(handle)
        if resilience.trip("net.partition"):
            # sever the link mid-stream, while the request is in flight —
            # the repair loop reconnects and resends the same id, and the
            # worker (which kept executing through the partition) answers
            # from its dedup cache
            self._bump("partitions")
            try:
                handle.sock.close()
            except OSError:  # pragma: no cover
                pass
            raise TransportClosedError(
                f"injected network partition: link to {handle.role} worker "
                f"{handle.index} severed mid-stream"
            )
        frame = super()._recv(handle)
        if frame.kind in (frames.RES, frames.ERR) \
                and resilience.trip("net.drop"):
            # the response evaporates; to the await loop this is silence
            self._bump("frames_dropped")
            raise socket.timeout("injected frame drop (response lost)")
        return frame
