"""repro.net: the process-boundary transport layer (DESIGN.md §13).

Selects *where* federated sites and RDD tasks execute:

* :class:`InProcTransport` — thread simulations, zero overhead, the
  tier-1 default;
* :class:`ProcTransport` — real spawn-context OS processes speaking the
  length-prefixed, checksummed, request-id-tagged frame protocol of
  :mod:`repro.net.frames`, with heartbeat liveness, idempotent retry by
  request-id dedup, and worker respawn that replays published state.

``for_config``/``registry_for`` resolve the mode from a
:class:`~repro.config.ReproConfig` (``transport="inproc"|"proc"``).
"""

from repro.net.transport import (
    InProcTransport,
    Transport,
    for_config,
    registry_for,
)

__all__ = [
    "InProcTransport",
    "ProcTransport",
    "Transport",
    "for_config",
    "registry_for",
]


def __getattr__(name):
    # ProcTransport pulls in multiprocessing; import it only when asked for.
    if name == "ProcTransport":
        from repro.net.proc import ProcTransport

        return ProcTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
