"""repro.net: the process-boundary transport layer (DESIGN.md §13).

Selects *where* federated sites and RDD tasks execute:

* :class:`InProcTransport` — thread simulations, zero overhead, the
  tier-1 default;
* :class:`ProcTransport` — real spawn-context OS processes speaking the
  length-prefixed, checksummed, request-id-tagged frame protocol of
  :mod:`repro.net.frames`, with heartbeat liveness, idempotent retry by
  request-id dedup, and worker respawn that replays published state;
* :class:`TcpTransport` — workers listening on real, dialable TCP
  addresses kept in a remote-addressable registry, with connect
  timeouts, reconnect-with-backoff link repair, and partition semantics
  (peer dead = respawn + replay; link down = reconnect + same-id resend
  answered from the dedup cache);
* :class:`ChaosTransport` — the tcp transport under seeded wire-level
  fault injection (``net.drop``/``net.delay_ms``/``net.dup``/
  ``net.corrupt``/``net.partition``).

``for_config``/``registry_for`` resolve the mode from a
:class:`~repro.config.ReproConfig` (``transport="inproc"|"proc"|"tcp"``).
"""

from repro.net.transport import (
    InProcTransport,
    Transport,
    for_config,
    registry_for,
)

__all__ = [
    "ChaosTransport",
    "InProcTransport",
    "ProcTransport",
    "TcpTransport",
    "Transport",
    "for_config",
    "registry_for",
]


def __getattr__(name):
    # The process transports pull in multiprocessing; import them lazily.
    if name == "ProcTransport":
        from repro.net.proc import ProcTransport

        return ProcTransport
    if name == "TcpTransport":
        from repro.net.tcp import TcpTransport

        return TcpTransport
    if name == "ChaosTransport":
        from repro.net.chaos import ChaosTransport

        return ChaosTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
