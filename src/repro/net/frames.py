"""Length-prefixed, checksummed, request-id-tagged frames (DESIGN.md §13).

Every message between the coordinator and a transport worker is one frame
on a byte stream (a TCP socket on localhost).  The fixed 16-byte header
carries a magic/version, the frame kind, a 64-bit request id, and the
payload length; the payload is followed by its CRC32.  The request id is
what makes retries *idempotent*: a worker that already served an id
replays the recorded response instead of re-executing the operation, so
a retry after a lost ACK can never double-execute a side-effecting op.

A SIGKILL can land mid-write, leaving a partial or torn frame on the
stream.  The framing layer converts every such corruption — short reads,
bad magic, oversized lengths, checksum mismatches — into a typed
:class:`FrameProtocolError` / :class:`TransportClosedError` so the
transport declares the connection dead instead of misreading bytes.

Wire layout (network byte order)::

    MAGIC(2) VERSION(1) KIND(1) REQUEST_ID(8) LENGTH(4) PAYLOAD... CRC32(4)
"""

from __future__ import annotations

import dataclasses
import socket
import struct
import zlib

from repro.errors import FrameProtocolError, TransportClosedError

MAGIC = b"RN"
VERSION = 1

#: Frame kinds.
REQ = 1        # coordinator -> worker: execute the payload
RES = 2        # worker -> coordinator: successful result payload
ERR = 3        # worker -> coordinator: pickled exception payload
HEARTBEAT = 4  # worker -> coordinator: liveness beacon (empty payload)
READY = 5      # worker -> coordinator: bootstrap handshake
BYE = 6        # coordinator -> worker: orderly shutdown request

KINDS = (REQ, RES, ERR, HEARTBEAT, READY, BYE)

_HEADER = struct.Struct("!2sBBQI")
HEADER_SIZE = _HEADER.size
_CRC = struct.Struct("!I")

#: Hard bound on one frame's payload (guards against reading a torn
#: length field as a multi-gigabyte allocation).
MAX_PAYLOAD = 1 << 31


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    kind: int
    request_id: int
    payload: bytes


def encode(kind: int, request_id: int, payload: bytes = b"") -> bytes:
    """The full wire bytes of one frame (header + payload + CRC trailer)."""
    if kind not in KINDS:
        raise FrameProtocolError(f"unknown frame kind {kind}")
    if len(payload) > MAX_PAYLOAD:
        raise FrameProtocolError(f"frame payload too large: {len(payload)}")
    header = _HEADER.pack(MAGIC, VERSION, kind, request_id, len(payload))
    return header + payload + _CRC.pack(zlib.crc32(payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`TransportClosedError`."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionError, BrokenPipeError) as exc:
            raise TransportClosedError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise TransportClosedError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, kind: int, request_id: int,
               payload: bytes = b"") -> int:
    """Write one frame; returns the bytes put on the wire."""
    data = encode(kind, request_id, payload)
    try:
        sock.sendall(data)
    except (ConnectionError, BrokenPipeError) as exc:
        raise TransportClosedError(f"connection lost mid-send: {exc}") from exc
    return len(data)


def recv_frame(sock: socket.socket) -> Frame:
    """Read and validate one frame (blocking; honours the socket timeout).

    Raises :class:`TransportClosedError` on EOF/reset and
    :class:`FrameProtocolError` on any header/checksum violation.
    ``socket.timeout`` propagates to the caller, which uses the timeout
    slices to probe peer liveness.
    """
    header = _recv_exactly(sock, HEADER_SIZE)
    try:
        magic, version, kind, request_id, length = _HEADER.unpack(header)
    except struct.error as exc:  # pragma: no cover - size is exact
        raise FrameProtocolError(f"unreadable frame header: {exc}") from exc
    if magic != MAGIC:
        raise FrameProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise FrameProtocolError(f"unsupported frame version {version}")
    if kind not in KINDS:
        raise FrameProtocolError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD:
        raise FrameProtocolError(f"frame payload too large: {length}")
    payload = _recv_exactly(sock, length) if length else b""
    (crc,) = _CRC.unpack(_recv_exactly(sock, _CRC.size))
    if crc != zlib.crc32(payload):
        raise FrameProtocolError(
            f"frame checksum mismatch on request {request_id} "
            f"(payload torn mid-write?)"
        )
    return Frame(kind=kind, request_id=request_id, payload=payload)
