"""Length-prefixed, checksummed, request-id-tagged frames (DESIGN.md §13).

Every message between the coordinator and a transport worker is one frame
on a byte stream (a TCP socket — localhost pipes for the proc transport,
loopback/LAN addresses for the tcp transport).  The fixed 20-byte header
carries a magic/version, the frame kind, a 64-bit request id, the payload
length, and a CRC32 over those header fields; the payload is followed by
its own CRC32.  The request id is what makes retries *idempotent*: a
worker that already served an id replays the recorded response instead of
re-executing the operation, so a retry after a lost ACK can never
double-execute a side-effecting op.

A SIGKILL or a severed link can land mid-write, leaving a partial or torn
frame on the stream, and a faulty wire can flip bits anywhere in a frame.
The framing layer converts every such corruption — short reads, bad
magic, oversized lengths, header or payload checksum mismatches — into a
typed :class:`FrameProtocolError` / :class:`TransportClosedError` so the
transport declares the connection dead instead of misreading bytes.  The
header CRC matters: without it a single flipped bit in the request id or
length field would decode as a *valid* frame with the wrong identity, and
a corrupt length prefix could read as a multi-gigabyte allocation.
:data:`MAX_PAYLOAD` bounds one frame at 256 MiB either way, so even a
corrupt-but-checksummed length can never balloon a read.

Wire layout (network byte order)::

    MAGIC(2) VERSION(1) KIND(1) REQUEST_ID(8) LENGTH(4) HEADER_CRC32(4)
    PAYLOAD... PAYLOAD_CRC32(4)
"""

from __future__ import annotations

import dataclasses
import socket
import struct
import zlib

from repro.errors import FrameProtocolError, TransportClosedError

MAGIC = b"RN"
VERSION = 2

#: Frame kinds.
REQ = 1        # coordinator -> worker: execute the payload
RES = 2        # worker -> coordinator: successful result payload
ERR = 3        # worker -> coordinator: pickled exception payload
HEARTBEAT = 4  # worker -> coordinator: liveness beacon (empty payload)
READY = 5      # worker -> coordinator: bootstrap/session handshake
BYE = 6        # coordinator -> worker: orderly shutdown request

KINDS = (REQ, RES, ERR, HEARTBEAT, READY, BYE)

_BASE_HEADER = struct.Struct("!2sBBQI")
_CRC = struct.Struct("!I")
#: Full header: the base fields plus their CRC32.
HEADER_SIZE = _BASE_HEADER.size + _CRC.size
#: The payload CRC32 that trails every frame.
TRAILER_SIZE = _CRC.size

#: Hard bound on one frame's payload.  A corrupt length prefix must raise
#: a typed error, never attempt a multi-gigabyte allocation — the header
#: CRC catches random flips, this bound catches everything else.
MAX_PAYLOAD = 256 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    kind: int
    request_id: int
    payload: bytes


def frame_size(payload_len: int) -> int:
    """Total wire bytes of a frame carrying ``payload_len`` payload bytes."""
    return HEADER_SIZE + payload_len + TRAILER_SIZE


def encode(kind: int, request_id: int, payload: bytes = b"") -> bytes:
    """The full wire bytes of one frame (header + payload + CRC trailer)."""
    if kind not in KINDS:
        raise FrameProtocolError(f"unknown frame kind {kind}")
    if len(payload) > MAX_PAYLOAD:
        raise FrameProtocolError(f"frame payload too large: {len(payload)}")
    base = _BASE_HEADER.pack(MAGIC, VERSION, kind, request_id, len(payload))
    return (base + _CRC.pack(zlib.crc32(base))
            + payload + _CRC.pack(zlib.crc32(payload)))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`TransportClosedError`."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionError, BrokenPipeError) as exc:
            raise TransportClosedError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise TransportClosedError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, kind: int, request_id: int,
               payload: bytes = b"") -> int:
    """Write one frame; returns the bytes put on the wire."""
    data = encode(kind, request_id, payload)
    try:
        sock.sendall(data)
    except (ConnectionError, BrokenPipeError) as exc:
        raise TransportClosedError(f"connection lost mid-send: {exc}") from exc
    return len(data)


def recv_frame(sock: socket.socket) -> Frame:
    """Read and validate one frame (blocking; honours the socket timeout).

    Raises :class:`TransportClosedError` on EOF/reset and
    :class:`FrameProtocolError` on any header/checksum violation — the
    length bound and the header CRC are both checked *before* the payload
    is read, so corruption can never trigger a giant allocation.
    ``socket.timeout`` propagates to the caller, which uses the timeout
    slices to probe peer liveness.
    """
    header = _recv_exactly(sock, HEADER_SIZE)
    base = header[:_BASE_HEADER.size]
    try:
        magic, version, kind, request_id, length = _BASE_HEADER.unpack(base)
    except struct.error as exc:  # pragma: no cover - size is exact
        raise FrameProtocolError(f"unreadable frame header: {exc}") from exc
    if magic != MAGIC:
        raise FrameProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise FrameProtocolError(f"unsupported frame version {version}")
    (header_crc,) = _CRC.unpack(header[_BASE_HEADER.size:])
    if header_crc != zlib.crc32(base):
        raise FrameProtocolError(
            f"frame header checksum mismatch (kind {kind}, request "
            f"{request_id}: a flipped header bit cannot be trusted)"
        )
    if kind not in KINDS:
        raise FrameProtocolError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD:
        raise FrameProtocolError(f"frame payload too large: {length}")
    payload = _recv_exactly(sock, length) if length else b""
    (crc,) = _CRC.unpack(_recv_exactly(sock, _CRC.size))
    if crc != zlib.crc32(payload):
        raise FrameProtocolError(
            f"frame checksum mismatch on request {request_id} "
            f"(payload torn or corrupted mid-write?)"
        )
    return Frame(kind=kind, request_id=request_id, payload=payload)
