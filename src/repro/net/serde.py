"""Closure-capable serialisation for the process-boundary transport.

Federated operations and RDD tasks are built from lambdas and nested
closures — exactly what stdlib :mod:`pickle` refuses to serialise (it
pickles functions by reference, which fails for anything not importable
by qualified name).  This module implements the small slice of
cloudpickle the transport needs:

* importable module-level functions/classes still pickle *by reference*
  (cheap, and the worker re-imports the same code);
* lambdas, nested functions, and closures pickle *by value*: the code
  object goes through :mod:`marshal`, closure cells are captured as
  their contents, and the globals the code references are captured by
  name (modules as import references, everything else recursively
  through this pickler);
* modules pickle as ``importlib.import_module(name)`` calls.

Workers run the same interpreter from the same source tree (spawn
context inherits ``PYTHONPATH``), so marshal'd code objects are safe.
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import types
from typing import Any, Dict, Optional, Tuple

_EMPTY_CELL = "__repro_empty_cell__"
_SELF_CELL = "__repro_self_cell__"


def _make_empty_cell() -> types.CellType:
    return types.CellType()


def _import_module(name: str) -> types.ModuleType:
    return importlib.import_module(name)


def _referenced_names(code: types.CodeType) -> set:
    """Global names referenced by a code object and its nested code objects."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


def _rebuild_function(
    code_bytes: bytes,
    name: str,
    defaults: Optional[Tuple],
    kwdefaults: Optional[Dict[str, Any]],
    closure_values: Optional[Tuple],
    captured_globals: Dict[str, Any],
) -> types.FunctionType:
    """Worker-side reconstruction of a by-value function."""
    code = marshal.loads(code_bytes)
    globs: Dict[str, Any] = {"__builtins__": __builtins__}
    globs.update(captured_globals)
    closure = None
    if closure_values is not None:
        # the sentinel checks must be type-guarded: ``==`` against e.g. a
        # numpy array in a cell would broadcast instead of returning bool
        closure = tuple(
            _make_empty_cell()
            if type(value) is str and value in (_EMPTY_CELL, _SELF_CELL)
            else types.CellType(value)
            for value in closure_values
        )
    func = types.FunctionType(code, globs, name, defaults, closure)
    if kwdefaults:
        func.__kwdefaults__ = dict(kwdefaults)
    if closure is not None:
        # a self-recursive function closes over its own cell: fill it now
        # that the function object exists
        for cell, value in zip(closure, closure_values):
            if type(value) is str and value == _SELF_CELL:
                cell.cell_contents = func
    return func


def _is_importable(func: types.FunctionType) -> bool:
    """True when the worker can resolve the function by module.qualname."""
    qualname = getattr(func, "__qualname__", "")
    module = getattr(func, "__module__", None)
    if not module or "<lambda>" in qualname or "<locals>" in qualname:
        return False
    try:
        mod = importlib.import_module(module)
        obj = mod
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError):
        return False
    return obj is func


class _TransportPickler(pickle.Pickler):
    """Pickler with by-value support for closures and module references."""

    def reducer_override(self, obj):
        if isinstance(obj, types.ModuleType):
            return (_import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType):
            if _is_importable(obj):
                return NotImplemented  # default by-reference pickling
            return self._reduce_function(obj)
        return NotImplemented

    def _reduce_function(self, func: types.FunctionType):
        code = func.__code__
        closure_values: Optional[Tuple] = None
        if func.__closure__ is not None:
            values = []
            for cell in func.__closure__:
                try:
                    contents = cell.cell_contents
                except ValueError:  # unset cell (still being defined)
                    values.append(_EMPTY_CELL)
                    continue
                # a recursive function's cell holds the function itself;
                # pickling it through args would recurse forever
                values.append(_SELF_CELL if contents is func else contents)
            closure_values = tuple(values)
        captured: Dict[str, Any] = {}
        func_globals = func.__globals__
        for name in _referenced_names(code):
            if name in func_globals:
                captured[name] = func_globals[name]
        return (
            _rebuild_function,
            (
                marshal.dumps(code),
                func.__name__,
                func.__defaults__,
                func.__kwdefaults__,
                closure_values,
                captured,
            ),
        )


def dumps(obj: Any) -> bytes:
    buffer = io.BytesIO()
    _TransportPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def loads(data: bytes) -> Any:
    return pickle.loads(data)
