"""``repro-fuzz`` — the differential fuzzing CLI.

Runs a seeded campaign: generate ``--iters`` deterministic DML programs
(iteration ``i`` uses seed ``base_seed * 1_000_003 + i``), execute each
across the ``--lattice`` configurations, and report divergences.  Each
divergence is delta-debugged down to a minimal reproducer and written to
the ``--corpus`` directory (unless ``--no-shrink``), where the tier-1
suite replays it forever after.

Exit status: 0 when the campaign is divergence-free, 1 when any
divergence was found, 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.qa.corpus import CorpusEntry, save_entry
from repro.qa.generator import ProgramGenerator
from repro.qa.lattice import Lattice
from repro.qa.runner import DifferentialRunner, Divergence, FuzzStats

#: Spreads iteration indices across seed space deterministically.
SEED_STRIDE = 1_000_003


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="differential DML fuzzing across the optimizer/backend "
                    "lattice",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="base campaign seed (default: 1)")
    parser.add_argument("--iters", type=int, default=50,
                        help="number of programs to generate (default: 50)")
    parser.add_argument("--lattice", default="all",
                        help="'all', 'quick', or comma-separated config names "
                             f"(available: {', '.join(Lattice.default().names)})")
    parser.add_argument("--corpus", default="tests/qa/corpus",
                        help="directory for shrunk reproducers "
                             "(default: tests/qa/corpus)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without shrinking or saving")
    parser.add_argument("--max-statements", type=int, default=10,
                        help="program size knob forwarded to the generator")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="print every generated program's verdict")
    return parser


def iteration_seed(base_seed: int, iteration: int) -> int:
    return base_seed * SEED_STRIDE + iteration


def run_campaign(
    args: argparse.Namespace,
    stats: Optional[FuzzStats] = None,
    out=None,
) -> int:
    out = out if out is not None else sys.stdout
    lattice = Lattice.parse(args.lattice)
    stats = stats if stats is not None else FuzzStats()
    runner = DifferentialRunner(lattice, stats=stats)
    # surface campaign counters in the unified stats layer ("qa" section)
    from repro.obs import attach_qa, default_registry

    attach_qa(default_registry(), stats)
    print(
        f"repro-fuzz: seed={args.seed} iters={args.iters} "
        f"lattice=[{', '.join(lattice.names)}]",
        file=out,
    )
    found: List[Divergence] = []
    for iteration in range(args.iters):
        seed = iteration_seed(args.seed, iteration)
        program = ProgramGenerator(
            seed, max_statements=args.max_statements
        ).generate()
        results, divergences = runner.run_program(program)
        baseline = results[0]
        if not baseline.ok:
            print(f"  [{iteration:4d}] seed={seed} INVALID ({baseline.error})",
                  file=out)
            continue
        if not divergences:
            if args.verbose:
                print(f"  [{iteration:4d}] seed={seed} ok "
                      f"({len(results)} configs)", file=out)
            continue
        for divergence in divergences:
            print(f"  [{iteration:4d}] DIVERGENCE {divergence.describe()}",
                  file=out)
            found.append(divergence)
            if not args.no_shrink:
                entry = shrink_to_corpus(
                    runner, program, divergence, args.corpus, stats, out=out
                )
                if entry is not None:
                    print(f"         shrunk reproducer -> "
                          f"{args.corpus}/{entry.filename}", file=out)
    snapshot = stats.snapshot()
    print(
        f"repro-fuzz: {snapshot['programs']} programs, "
        f"{snapshot['executions']} executions, "
        f"{snapshot['comparisons']} comparisons, "
        f"{snapshot['invalid_programs']} invalid, "
        f"{len(found)} divergences",
        file=out,
    )
    return 1 if found else 0


def shrink_to_corpus(
    runner: DifferentialRunner,
    program,
    divergence: Divergence,
    corpus_dir: str,
    stats: FuzzStats,
    out=None,
) -> Optional[CorpusEntry]:
    """Shrink one divergence and persist it as a corpus entry."""
    out = out if out is not None else sys.stdout
    from repro.qa.shrinker import Shrinker

    inputs = program.materialized_inputs()

    def still_diverges(source: str, outputs: Sequence[Tuple[str, str]]) -> bool:
        stats.increment("shrink_checks")
        __, divergences = runner.run_source(
            source, inputs, outputs, seed=program.seed
        )
        return any(
            d.config_name == divergence.config_name and d.kind == divergence.kind
            for d in divergences
        )

    shrinker = Shrinker(still_diverges)
    try:
        source, outputs = shrinker.shrink(program.source, program.outputs)
    except Exception as exc:  # noqa: BLE001 - keep the campaign going
        print(f"         shrink failed ({type(exc).__name__}: {exc}); "
              f"saving unshrunk program", file=out)
        source, outputs = program.source, program.outputs
    used_inputs = {
        name: spec for name, spec in program.inputs.items() if name in source
    }
    entry = CorpusEntry(
        name=f"seed{program.seed}-{divergence.config_name}-{divergence.kind}",
        seed=program.seed,
        config=divergence.config_name,
        kind=divergence.kind,
        note=divergence.detail,
        source=source,
        outputs=list(outputs),
        inputs=used_inputs,
    )
    save_entry(corpus_dir, entry)
    stats.increment("corpus_entries")
    return entry


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    if args.iters < 0 or args.seed < 0:
        parser.print_usage(sys.stderr)
        print("repro-fuzz: --seed and --iters must be non-negative",
              file=sys.stderr)
        return 2
    try:
        return run_campaign(args)
    except ValueError as exc:  # e.g. unknown lattice config names
        print(f"repro-fuzz: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
