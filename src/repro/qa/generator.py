"""Seeded whole-program DML generator.

``ProgramGenerator(seed).generate()`` emits one deterministic
:class:`GeneratedProgram`: DML source with control flow (``if`` / ``while``
/ ``for`` / ``parfor``), an optional user-defined function, left/right
indexing, and a numerically *safe* expression vocabulary (no division by
unguarded data, no ``exp`` overflow), plus the declared inputs and outputs
the differential runner binds and compares.

Determinism is the whole point: the same seed produces byte-identical
source and input data on every run and platform (``random.Random`` and
``numpy.random.default_rng`` are both stable), so any divergence the
fuzzer finds is replayable from its seed alone.

Shape discipline: the generator tracks the concrete shape of every live
matrix variable and only composes shape-valid operations, mirroring the
expression-level oracle in ``tests/integration/test_dml_oracle.py`` but
at whole-program granularity.  A ``while`` loop may deliberately grow a
matrix with ``rbind`` (exercising dynamic recompilation); such "ragged"
variables leave the shape environment and are only observed through
shape-agnostic outputs (``sum``, ``nrow``).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Output kinds the runner knows how to extract and compare.
MATRIX, SCALAR = "matrix", "scalar"


@dataclasses.dataclass(frozen=True)
class InputSpec:
    """One bound input matrix: shape plus the seed of its data stream."""

    rows: int
    cols: int
    data_seed: int

    def materialize(self) -> np.ndarray:
        """The deterministic input data (values in ``[0, 1)``)."""
        return np.random.default_rng(self.data_seed).random((self.rows, self.cols))


@dataclasses.dataclass
class GeneratedProgram:
    """One fuzz case: source, bound inputs, and the outputs to compare."""

    seed: int
    source: str
    inputs: Dict[str, InputSpec]
    outputs: List[Tuple[str, str]]  # (variable name, MATRIX | SCALAR)

    def materialized_inputs(self) -> Dict[str, np.ndarray]:
        return {name: spec.materialize() for name, spec in self.inputs.items()}


class ProgramGenerator:
    """Generates deterministic random DML programs from one seed."""

    def __init__(
        self,
        seed: int,
        max_statements: int = 10,
        max_depth: int = 3,
    ):
        self.seed = seed
        self.max_statements = max_statements
        self.max_depth = max_depth
        self._rng = random.Random(seed)
        #: live matrix variables -> (rows, cols)
        self._matrices: Dict[str, Tuple[int, int]] = {}
        #: live scalar variable names
        self._scalars: List[str] = []
        #: matrices whose shape changed in a loop (observable via sum/nrow only)
        self._ragged: List[str] = []
        self._fresh = 0
        self._function: Optional[str] = None

    # --- public ----------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        rng = self._rng
        lines: List[str] = []
        inputs: Dict[str, InputSpec] = {}

        num_inputs = 1 + (rng.random() < 0.6)
        for index in range(num_inputs):
            name = f"M{index}"
            rows = rng.randint(4, 7)
            cols = rng.randint(3, 5)
            inputs[name] = InputSpec(
                rows=rows, cols=cols,
                data_seed=(self.seed * 1_000_003 + index * 7919) % 2**31,
            )
            self._matrices[name] = (rows, cols)

        if rng.random() < 0.5:
            lines.extend(self._emit_function())

        for __ in range(rng.randint(5, self.max_statements)):
            lines.extend(self._statement(depth=0))

        outputs = self._declare_outputs(lines)
        source = "\n".join(lines) + "\n"
        return GeneratedProgram(
            seed=self.seed, source=source, inputs=inputs, outputs=outputs
        )

    # --- naming ----------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # --- statements -------------------------------------------------------

    def _statement(self, depth: int) -> List[str]:
        rng = self._rng
        kinds = ["matrix_assign", "scalar_assign", "rebind", "indexed_assign"]
        if depth == 0:
            kinds += ["if", "while", "for", "parfor"]
            if self._function is not None:
                kinds.append("call")
        kind = rng.choice(kinds)
        if kind == "matrix_assign":
            name = self._name("V")
            rows = rng.randint(2, 6)
            cols = rng.randint(2, 5)
            line = f"{name} = {self._matrix_expr(rows, cols, depth=0)}"
            self._matrices[name] = (rows, cols)
            return [line]
        if kind == "scalar_assign":
            name = self._name("s")
            line = f"{name} = {self._scalar_expr(depth=0)}"
            if name not in self._scalars:
                self._scalars.append(name)
            return [line]
        if kind == "rebind":
            name = self._pick_matrix()
            if name is None:
                return []
            rows, cols = self._matrices[name]
            return [f"{name} = {self._matrix_expr(rows, cols, depth=0)}"]
        if kind == "indexed_assign":
            return self._indexed_assign()
        if kind == "if":
            return self._if_block(depth)
        if kind == "while":
            return self._while_block(depth)
        if kind == "for":
            return self._for_block()
        if kind == "parfor":
            return self._parfor_block()
        if kind == "call":
            return self._call_function()
        return []

    def _indexed_assign(self) -> List[str]:
        rng = self._rng
        name = self._pick_matrix()
        if name is None:
            return []
        rows, cols = self._matrices[name]
        if rng.random() < 0.5:
            # single cell from a scalar expression
            i = rng.randint(1, rows)
            j = rng.randint(1, cols)
            return [f"{name}[{i}, {j}] = {self._scalar_expr(depth=1)}"]
        lo = rng.randint(1, rows)
        hi = rng.randint(lo, rows)
        value = self._matrix_expr(hi - lo + 1, cols, depth=1)
        return [f"{name}[{lo}:{hi}, ] = {value}"]

    def _if_block(self, depth: int) -> List[str]:
        rng = self._rng
        condition = self._condition()
        lines = [f"if ({condition}) {{"]
        for __ in range(rng.randint(1, 2)):
            lines.extend("  " + l for l in self._body_statement())
        if rng.random() < 0.5:
            lines.append("} else {")
            for __ in range(rng.randint(1, 2)):
                lines.extend("  " + l for l in self._body_statement())
        lines.append("}")
        return lines

    def _while_block(self, depth: int) -> List[str]:
        rng = self._rng
        counter = self._name("qa_i")
        limit = rng.randint(2, 4)
        lines = [f"{counter} = 0", f"while ({counter} < {limit}) {{"]
        grow = rng.random() < 0.3
        if grow:
            name = self._pick_matrix(exclude_inputs=False)
            if name is not None:
                # shape changes across iterations: dynamic recompilation fodder
                lines.append(f"  {name} = rbind({name}, {name}[1:1, ])")
                self._matrices.pop(name, None)
                if name not in self._ragged:
                    self._ragged.append(name)
                grow = True
            else:
                grow = False
        if not grow:
            for __ in range(rng.randint(1, 2)):
                lines.extend("  " + l for l in self._body_statement())
        lines.append(f"  {counter} = {counter} + 1")
        lines.append("}")
        if counter not in self._scalars:
            self._scalars.append(counter)
        return lines

    def _for_block(self) -> List[str]:
        rng = self._rng
        acc = self._name("acc")
        iterations = rng.randint(2, 5)
        step = rng.choice(["", ""]) if True else ""
        var = self._name("qa_f")
        lines = [f"{acc} = 0"]
        if rng.random() < 0.3:
            lines.append(f"for ({var} in seq(1, {iterations}, 1)) {{")
        else:
            lines.append(f"for ({var} in 1:{iterations}) {{")
        body = rng.random()
        if body < 0.5 or not self._matrices:
            lines.append(f"  {acc} = {acc} + {var} * {self._literal()}")
        else:
            name = self._pick_matrix()
            lines.append(f"  {acc} = {acc} + sum({name}) / ({var} + 1)")
        lines.append("}")
        if acc not in self._scalars:
            self._scalars.append(acc)
        return lines

    def _parfor_block(self) -> List[str]:
        rng = self._rng
        source_name = self._pick_matrix()
        if source_name is None:
            return []
        rows, cols = self._matrices[source_name]
        result = self._name("R")
        lines = [f"{result} = matrix(0, rows={rows}, cols={cols})"]
        scale = rng.choice(["(i + 1)", "(i * 0.5)", f"({self._literal()} + i)"])
        lines.append(f"parfor (i in 1:{rows}) {{")
        lines.append(f"  {result}[i, ] = {source_name}[i, ] * {scale}")
        lines.append("}")
        self._matrices[result] = (rows, cols)
        return lines

    def _body_statement(self) -> List[str]:
        """A control-flow body statement: rebinds only, so every variable
        referenced after the block is defined on all paths."""
        rng = self._rng
        choices = []
        if self._matrices:
            choices.append("rebind")
            choices.append("indexed")
        if self._scalars:
            choices.append("scalar")
        if not choices:
            return []
        kind = rng.choice(choices)
        if kind == "rebind":
            name = self._pick_matrix()
            rows, cols = self._matrices[name]
            return [f"{name} = {self._matrix_expr(rows, cols, depth=1)}"]
        if kind == "indexed":
            return self._indexed_assign()
        name = rng.choice(self._scalars)
        return [f"{name} = {self._scalar_expr(depth=1)}"]

    # --- user functions ---------------------------------------------------

    def _emit_function(self) -> List[str]:
        rng = self._rng
        name = "qa_fun"
        self._function = name
        ops = [
            "Y = X * a",
            "Y = abs(X) + a",
            "Y = (X + t(t(X))) * a",
            "Y = X * a + X",
            "Y = round(X * a)",
        ]
        body = rng.sample(ops, k=1)[0]
        extra = ""
        if rng.random() < 0.5:
            body = "T_qa = X * a"
            extra = "  Y = T_qa + abs(T_qa)\n"
        lines = [
            f"{name} = function(Matrix[double] X, Double a)"
            " return (Matrix[double] Y) {",
            f"  {body}",
        ]
        if extra:
            lines.append(extra.rstrip("\n"))
        lines.append("}")
        return lines

    def _call_function(self) -> List[str]:
        source_name = self._pick_matrix()
        if source_name is None or self._function is None:
            return []
        rows, cols = self._matrices[source_name]
        out = self._name("F")
        factor = self._literal()
        self._matrices[out] = (rows, cols)
        return [f"{out} = {self._function}({source_name}, {factor})"]

    # --- expressions ------------------------------------------------------

    def _pick_matrix(self, exclude_inputs: bool = False) -> Optional[str]:
        names = [
            n for n in self._matrices
            if not (exclude_inputs and n.startswith("M"))
        ]
        if not names:
            return None
        return self._rng.choice(names)

    def _matrix_of_shape(self, rows: int, cols: int) -> Optional[str]:
        names = [n for n, s in self._matrices.items() if s == (rows, cols)]
        if not names:
            return None
        return self._rng.choice(names)

    def _literal(self) -> str:
        rng = self._rng
        if rng.random() < 0.5:
            return str(rng.randint(1, 4))
        return repr(round(rng.uniform(0.1, 2.5), 3))

    def _matrix_expr(self, rows: int, cols: int, depth: int) -> str:
        rng = self._rng
        if depth >= self.max_depth or rng.random() < 0.25:
            return self._matrix_leaf(rows, cols)
        kind = rng.choice([
            "ew", "ew", "scalar_op", "unary", "transpose", "matmul",
            "safe_div", "power", "index", "cbind", "rbind",
        ])
        if kind == "ew":
            op = rng.choice(["+", "-", "*"])
            left = self._matrix_expr(rows, cols, depth + 1)
            right = self._matrix_expr(rows, cols, depth + 1)
            return f"({left} {op} {right})"
        if kind == "scalar_op":
            op = rng.choice(["+", "-", "*"])
            inner = self._matrix_expr(rows, cols, depth + 1)
            if rng.random() < 0.5:
                return f"({inner} {op} {self._literal()})"
            return f"({self._literal()} {op} {inner})"
        if kind == "unary":
            fn = rng.choice(["abs", "round", "floor", "ceil", "sign"])
            return f"{fn}({self._matrix_expr(rows, cols, depth + 1)})"
        if kind == "transpose":
            return f"t({self._matrix_expr(cols, rows, depth + 1)})"
        if kind == "matmul":
            k = rng.randint(2, 4)
            left = self._matrix_expr(rows, k, depth + 1)
            right = self._matrix_expr(k, cols, depth + 1)
            return f"({left} %*% {right})"
        if kind == "safe_div":
            num = self._matrix_expr(rows, cols, depth + 1)
            den = self._matrix_expr(rows, cols, depth + 1)
            return f"({num} / (abs({den}) + 0.5))"
        if kind == "power":
            return f"({self._matrix_expr(rows, cols, depth + 1)} ^ 2)"
        if kind == "index":
            # slice a window out of a larger generated matrix
            extra_r = rng.randint(0, 2)
            extra_c = rng.randint(0, 2)
            inner = self._matrix_expr(rows + extra_r, cols + extra_c, depth + 1)
            r0 = rng.randint(1, extra_r + 1)
            c0 = rng.randint(1, extra_c + 1)
            return (f"({inner})[{r0}:{r0 + rows - 1}, "
                    f"{c0}:{c0 + cols - 1}]")
        if kind == "cbind" and cols >= 2:
            split = rng.randint(1, cols - 1)
            left = self._matrix_expr(rows, split, depth + 1)
            right = self._matrix_expr(rows, cols - split, depth + 1)
            return f"cbind({left}, {right})"
        if kind == "rbind" and rows >= 2:
            split = rng.randint(1, rows - 1)
            top = self._matrix_expr(split, cols, depth + 1)
            bottom = self._matrix_expr(rows - split, cols, depth + 1)
            return f"rbind({top}, {bottom})"
        return self._matrix_leaf(rows, cols)

    def _matrix_leaf(self, rows: int, cols: int) -> str:
        rng = self._rng
        existing = self._matrix_of_shape(rows, cols)
        roll = rng.random()
        if existing is not None and roll < 0.55:
            return existing
        if roll < 0.8:
            seed = rng.randrange(1, 10**6)
            return f"rand(rows={rows}, cols={cols}, seed={seed})"
        return f"matrix({self._literal()}, rows={rows}, cols={cols})"

    def _scalar_expr(self, depth: int) -> str:
        rng = self._rng
        if depth >= self.max_depth or rng.random() < 0.3:
            return self._scalar_leaf()
        kind = rng.choice(["binary", "agg", "minmax", "abs", "safe_div", "meta"])
        if kind == "binary":
            op = rng.choice(["+", "-", "*"])
            return (f"({self._scalar_expr(depth + 1)} {op} "
                    f"{self._scalar_expr(depth + 1)})")
        if kind == "agg":
            name = self._pick_matrix()
            if name is not None:
                fn = rng.choice(["sum", "mean", "min", "max"])
                return f"{fn}({name})"
        if kind == "minmax":
            fn = rng.choice(["min", "max"])
            return (f"{fn}({self._scalar_expr(depth + 1)}, "
                    f"{self._scalar_expr(depth + 1)})")
        if kind == "abs":
            return f"abs({self._scalar_expr(depth + 1)})"
        if kind == "safe_div":
            num = self._scalar_expr(depth + 1)
            den = self._scalar_expr(depth + 1)
            return f"({num} / (abs({den}) + 1))"
        if kind == "meta":
            name = self._pick_matrix()
            if name is not None:
                fn = rng.choice(["nrow", "ncol"])
                return f"{fn}({name})"
        return self._scalar_leaf()

    def _scalar_leaf(self) -> str:
        rng = self._rng
        if self._scalars and rng.random() < 0.4:
            return rng.choice(self._scalars)
        if rng.random() < 0.5:
            return str(rng.randint(-3, 5))
        return repr(round(rng.uniform(-2.0, 2.0), 3))

    def _condition(self) -> str:
        rng = self._rng
        op = rng.choice([">", "<", ">=", "<="])
        roll = rng.random()
        if roll < 0.5 and self._matrices:
            name = self._pick_matrix()
            return f"sum({name}) {op} {self._literal()}"
        if roll < 0.8 and self._scalars:
            return f"{rng.choice(self._scalars)} {op} {self._literal()}"
        return f"{self._literal()} {op} {self._literal()}"

    # --- outputs ----------------------------------------------------------

    def _declare_outputs(self, lines: List[str]) -> List[Tuple[str, str]]:
        outputs: List[Tuple[str, str]] = []
        matrix_names = list(self._matrices)[-5:]
        for name in matrix_names:
            outputs.append((name, MATRIX))
        for name in self._ragged:
            out = f"qa_sum_{name}"
            lines.append(f"{out} = sum({name})")
            lines.append(f"qa_nrow_{name} = nrow({name})")
            outputs.append((out, SCALAR))
            outputs.append((f"qa_nrow_{name}", SCALAR))
        for name in self._scalars[-5:]:
            outputs.append((name, SCALAR))
        if not outputs:
            lines.append("qa_out = sum(M0)")
            outputs.append(("qa_out", SCALAR))
        return outputs
