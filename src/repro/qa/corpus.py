"""The replayable corpus of shrunk fuzzer findings.

Every divergence the fuzzer finds is shrunk and saved as one ``.dml``
file under ``tests/qa/corpus/``: plain DML source preceded by ``#``
header comments that carry the replay metadata (seed, diverging config,
divergence kind, declared outputs, and the deterministic input specs).
Because the metadata lives in comments, a corpus file is also directly
runnable with ``repro-dml`` while ``tests/qa/test_corpus_replay.py``
re-executes each entry across the lattice on every tier-1 run —
regression tests that were once live bugs.

Header format (order-insensitive, unknown keys ignored)::

    # repro-qa corpus entry
    # name: seed17-spark-sum
    # seed: 17
    # config: spark
    # kind: value
    # note: <free text, optional>
    # output: s scalar
    # input: M0 rows=5 cols=3 data_seed=123456

    s = sum(M0)
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from repro.qa.generator import InputSpec

_MAGIC = "# repro-qa corpus entry"


@dataclasses.dataclass
class CorpusEntry:
    """One shrunk reproducer: metadata plus replayable DML source."""

    name: str
    seed: int
    config: str
    kind: str
    source: str
    outputs: List[Tuple[str, str]]
    inputs: Dict[str, InputSpec] = dataclasses.field(default_factory=dict)
    note: Optional[str] = None

    @property
    def filename(self) -> str:
        return f"{self.name}.dml"

    def materialized_inputs(self):
        return {name: spec.materialize() for name, spec in self.inputs.items()}

    def render(self) -> str:
        lines = [
            _MAGIC,
            f"# name: {self.name}",
            f"# seed: {self.seed}",
            f"# config: {self.config}",
            f"# kind: {self.kind}",
        ]
        if self.note:
            lines.append(f"# note: {self.note}")
        for output_name, output_kind in self.outputs:
            lines.append(f"# output: {output_name} {output_kind}")
        for input_name, spec in sorted(self.inputs.items()):
            lines.append(
                f"# input: {input_name} rows={spec.rows} cols={spec.cols} "
                f"data_seed={spec.data_seed}"
            )
        return "\n".join(lines) + "\n\n" + self.source.rstrip("\n") + "\n"


def save_entry(directory: str, entry: CorpusEntry) -> str:
    """Write ``entry`` under ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, entry.filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(entry.render())
    return path


def load_entry(path: str) -> CorpusEntry:
    """Parse one corpus file back into a :class:`CorpusEntry`."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    fields: Dict[str, str] = {}
    outputs: List[Tuple[str, str]] = []
    inputs: Dict[str, InputSpec] = {}
    source_lines: List[str] = []
    in_header = True
    for line in text.splitlines():
        stripped = line.strip()
        if in_header and stripped.startswith("#"):
            body = stripped.lstrip("#").strip()
            if ":" not in body:
                continue
            key, __, value = body.partition(":")
            key, value = key.strip(), value.strip()
            if key == "output":
                parts = value.split()
                if len(parts) != 2:
                    raise ValueError(f"{path}: bad output line {value!r}")
                outputs.append((parts[0], parts[1]))
            elif key == "input":
                inputs.update([_parse_input(path, value)])
            else:
                fields[key] = value
        elif in_header and not stripped:
            continue
        else:
            in_header = False
            source_lines.append(line)
    missing = {"name", "seed", "config", "kind"} - set(fields)
    if missing:
        raise ValueError(f"{path}: missing header fields {sorted(missing)}")
    if not outputs:
        raise ValueError(f"{path}: corpus entry declares no outputs")
    return CorpusEntry(
        name=fields["name"],
        seed=int(fields["seed"]),
        config=fields["config"],
        kind=fields["kind"],
        note=fields.get("note"),
        source="\n".join(source_lines).strip("\n") + "\n",
        outputs=outputs,
        inputs=inputs,
    )


def _parse_input(path: str, value: str) -> Tuple[str, InputSpec]:
    parts = value.split()
    if not parts:
        raise ValueError(f"{path}: empty input line")
    name, attrs = parts[0], {}
    for part in parts[1:]:
        key, __, raw = part.partition("=")
        attrs[key] = int(raw)
    try:
        spec = InputSpec(
            rows=attrs["rows"], cols=attrs["cols"], data_seed=attrs["data_seed"]
        )
    except KeyError as exc:
        raise ValueError(f"{path}: input {name!r} missing {exc}") from exc
    return name, spec


def load_corpus(directory: str) -> List[CorpusEntry]:
    """All corpus entries under ``directory``, sorted by file name."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in sorted(os.listdir(directory)):
        if filename.endswith(".dml"):
            entries.append(load_entry(os.path.join(directory, filename)))
    return entries
