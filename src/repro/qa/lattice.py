"""The configuration lattice the differential runner sweeps.

Every :class:`LatticeConfig` names one point in the physical-plan space:
a set of :class:`repro.config.ReproConfig` overrides plus how its results
are compared (against which reference, bitwise or within tolerance) and
whether inputs are re-bound through federated sites.

The default lattice covers the axes the paper claims are semantically
transparent:

=================  =========================================================
name               what it exercises
=================  =========================================================
baseline           default config, tracing off — the pure-interpreter
                   reference for everything else
no_rewrites        rewrites/CSE/fusion/IPA off (raw HOP DAG semantics)
no_codegen         cell-template code generation off
no_recompile       dynamic recompilation off (static plans only)
python_kernels     non-BLAS tiled matmult kernel (SysDS vs. SysDS-B)
spark              distributed operators forced via a tiny operator budget
lineage_reuse      lineage tracing + full reuse of repeated subcomputations
traced             hot blocks fused into compiled traces; bit-identical
federated          inputs hosted on two federated sites, row-partitioned
chaos_spill        buffer-pool spill faults + retries; must be bit-identical
chaos_federated    federated request faults + failover; bit-identical
chaos_crash        crash mid-program + checkpoint resume; bit-identical
chaos_spark        distributed task faults + task retry; bit-identical
proc_federated     federated sites in real worker processes (proc
                   transport); bit-identical to the in-process twin
proc_spark         RDD tasks in real worker processes (proc transport);
                   bit-identical to the in-process spark twin
tcp                federated sites behind workers on real TCP addresses
                   (tcp transport); bit-identical to the in-process twin
chaos_tcp          tcp transport under seeded wire faults — partitions,
                   duplicated and bit-flipped frames — recovered by
                   reconnect + same-id resend + dedup; bit-identical
ooc                out-of-core: tiny pool + compressed spills + async
                   prefetch/writeback; bit-identical to the baseline
chaos_ooc          ooc under spill read/write faults + retries;
                   bit-identical (recovery must stay invisible)
ooc_cla_exec       ooc with compressed-space kernels on; tolerance-only
                   (compressed reductions reorder float arithmetic)
=================  =========================================================

Chaos configs compare *bitwise* against their fault-free twin: PR 3's
guarantee is that injected faults plus recovery never change a result.
Non-chaos configs compare within a small tolerance against ``baseline``
because different plans legitimately reorder float arithmetic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.config import ReproConfig

#: Overrides that force distributed operators on tiny test matrices: the
#: per-operator budget shrinks to ~214 bytes while the buffer pool keeps
#: its full 2 GiB, so every matrix op goes through the SimRDD backend.
_SPARK_OVERRIDES = {"operator_memory_fraction": 1e-7, "block_size": 4}

#: Fast-retry settings shared by all chaos configs (no real sleeping).
_CHAOS_RETRY = {
    "retry_budget": 5,
    "retry_backoff_ms": 0.0,
    "retry_backoff_max_ms": 0.0,
}

#: Out-of-core overrides: the CP plan stays the baseline plan (full
#: operator budget) while the buffer pool shrinks to ~500 bytes, so every
#: intermediate pages through compressed spills with async prefetch on.
_OOC_OVERRIDES = {
    "memory_budget": 16 * 1024,
    "operator_memory_fraction": 1.0,
    "bufferpool_fraction": 0.03,
    "spill_compress": True,
    "enable_prefetch": True,
}


@dataclasses.dataclass(frozen=True)
class LatticeConfig:
    """One named point of the configuration lattice."""

    name: str
    description: str
    overrides: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Host inputs on federated sites and rebind them via ``federated()``.
    federated: bool = False
    #: Compare bit-identically instead of within tolerance.
    bitwise: bool = False
    #: Run with checkpointing, crash the interpreter mid-program via an
    #: injected ``crash=`` fault, then resume from the manifest; the
    #: resumed outputs are what gets compared.
    crash_resume: bool = False
    #: Name of the config whose results this one must match
    #: (None = the lattice baseline).
    reference: Optional[str] = None
    rtol: float = 1e-9
    atol: float = 1e-9

    def build_config(self) -> ReproConfig:
        """A fresh ReproConfig carrying this point's overrides."""
        return ReproConfig(**self.overrides)


class Lattice:
    """An ordered set of lattice configs, baseline first."""

    def __init__(self, configs: Sequence[LatticeConfig]):
        if not configs:
            raise ValueError("lattice needs at least one config")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lattice config names: {names}")
        self._configs = list(configs)
        self._by_name = {c.name: c for c in self._configs}
        for config in self._configs:
            if config.reference is not None and config.reference not in self._by_name:
                raise ValueError(
                    f"config {config.name!r} references unknown "
                    f"config {config.reference!r}"
                )

    @property
    def baseline(self) -> LatticeConfig:
        return self._configs[0]

    @property
    def configs(self) -> List[LatticeConfig]:
        return list(self._configs)

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._configs]

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self):
        return iter(self._configs)

    def __getitem__(self, name: str) -> LatticeConfig:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def subset(self, names: Sequence[str]) -> "Lattice":
        """A sub-lattice keeping lattice order; the baseline (and any
        referenced fault-free twin) is always included."""
        requested = set(names)
        unknown = requested - set(self._by_name)
        if unknown:
            raise ValueError(
                f"unknown lattice configs: {sorted(unknown)}; "
                f"available: {self.names}"
            )
        keep = {self.baseline.name} | requested
        # pull in references transitively so comparisons stay well-defined
        changed = True
        while changed:
            changed = False
            for config in self._configs:
                if config.name in keep and config.reference is not None:
                    if config.reference not in keep:
                        keep.add(config.reference)
                        changed = True
        return Lattice([c for c in self._configs if c.name in keep])

    @classmethod
    def default(cls) -> "Lattice":
        """The full optimizer/backend/chaos lattice described above."""
        return cls([
            LatticeConfig(
                name="baseline",
                description="default configuration, tracing off "
                            "(pure-interpreter reference)",
                overrides={"enable_trace": False},
            ),
            LatticeConfig(
                name="no_rewrites",
                description="static/dynamic rewrites, CSE, fusion, IPA off",
                overrides={
                    "enable_rewrites": False,
                    "enable_cse": False,
                    "enable_fusion": False,
                    "enable_ipa": False,
                },
            ),
            LatticeConfig(
                name="no_codegen",
                description="cell-template operator fusion (codegen) off",
                overrides={"enable_codegen": False},
            ),
            LatticeConfig(
                name="no_recompile",
                description="dynamic recompilation off (static plans)",
                overrides={"enable_recompile": False},
            ),
            LatticeConfig(
                name="python_kernels",
                description="tiled non-BLAS matmult kernel (SysDS not SysDS-B)",
                overrides={"native_blas": False, "matmult_tile": 3},
            ),
            LatticeConfig(
                name="spark",
                description="distributed SimRDD operators forced via a tiny "
                            "operator memory budget",
                overrides=dict(_SPARK_OVERRIDES),
                rtol=1e-8,
                atol=1e-8,
            ),
            LatticeConfig(
                name="lineage_reuse",
                description="lineage tracing with full reuse",
                overrides={"enable_lineage": True, "reuse_policy": "full"},
            ),
            LatticeConfig(
                name="traced",
                description="hot basic blocks fused into compiled traces "
                            "(threshold 2); bit-identical to the untraced "
                            "pure-interpreter baseline",
                overrides={"trace_threshold": 2},
                bitwise=True,
                reference="baseline",
            ),
            LatticeConfig(
                name="federated",
                description="inputs row-partitioned across two federated sites",
                federated=True,
                rtol=1e-8,
                atol=1e-8,
            ),
            LatticeConfig(
                name="chaos_spill",
                description="buffer-pool eviction under a tiny pool plus "
                            "spill faults; bit-identical to the baseline "
                            "(CP plans are unchanged, only paging differs)",
                overrides={
                    # op budget stays far above fuzz-sized matrices (so the
                    # plan is the baseline CP plan) while the buffer pool
                    # shrinks to ~500 bytes and has to evict + restore blocks
                    "memory_budget": 16 * 1024,
                    "operator_memory_fraction": 1.0,
                    "bufferpool_fraction": 0.03,
                    "fault_spec": "spill.write:p=0.15;spill.read:fail=1",
                    "fault_seed": 99,
                    **_CHAOS_RETRY,
                },
                bitwise=True,
                reference="baseline",
            ),
            LatticeConfig(
                name="chaos_federated",
                description="federated request faults + retry/failover; "
                            "bit-identical to the fault-free federated run",
                federated=True,
                overrides={
                    "fault_spec": "site.request:p=0.1",
                    "fault_seed": 101,
                    **_CHAOS_RETRY,
                },
                bitwise=True,
                reference="federated",
            ),
            LatticeConfig(
                name="chaos_crash",
                description="interpreter killed mid-program by an injected "
                            "crash, then resumed from the last checkpoint; "
                            "bit-identical to the uninterrupted baseline",
                overrides={"enable_lineage": True},
                bitwise=True,
                reference="baseline",
                crash_resume=True,
            ),
            LatticeConfig(
                name="chaos_spark",
                description="distributed task faults + task retry; "
                            "bit-identical to the fault-free spark run",
                overrides={
                    **_SPARK_OVERRIDES,
                    "fault_spec": "rdd.task:p=0.1",
                    "fault_seed": 103,
                    **_CHAOS_RETRY,
                },
                bitwise=True,
                reference="spark",
            ),
            LatticeConfig(
                name="proc_federated",
                description="federated sites hosted by real spawn-context "
                            "worker processes over the frame protocol; "
                            "bit-identical to the in-process federated twin "
                            "(the transport must be semantically invisible)",
                federated=True,
                overrides={"transport": "proc"},
                bitwise=True,
                reference="federated",
            ),
            LatticeConfig(
                name="tcp",
                description="federated sites hosted by workers listening on "
                            "real TCP loopback addresses (dialable host:port "
                            "registry, reconnecting links); bit-identical to "
                            "the in-process federated twin",
                federated=True,
                overrides={"transport": "tcp"},
                bitwise=True,
                reference="federated",
            ),
            LatticeConfig(
                name="chaos_tcp",
                description="tcp transport under seeded wire-level chaos: "
                            "mid-stream partitions plus duplicated and "
                            "bit-flipped frames, recovered by reconnect + "
                            "same-id resend + dedup replay; bit-identical to "
                            "the in-process federated twin (recovery must be "
                            "semantically invisible)",
                federated=True,
                overrides={
                    "transport": "tcp",
                    # no net.drop here: dropped frames recover via the
                    # request timeout, which would stall fuzz sweeps
                    "fault_spec": "net.partition:fail=2;net.dup:p=0.05;"
                                  "net.corrupt:p=0.03",
                    "fault_seed": 109,
                    "heartbeat_interval_s": 0.05,
                    **_CHAOS_RETRY,
                },
                bitwise=True,
                reference="federated",
            ),
            LatticeConfig(
                name="ooc",
                description="out-of-core: ~500-byte pool with compressed "
                            "spills and async prefetch/writeback; "
                            "bit-identical to the baseline (the CLA spill "
                            "codec is bit-exact and layout-preserving)",
                overrides=dict(_OOC_OVERRIDES),
                bitwise=True,
                reference="baseline",
            ),
            LatticeConfig(
                name="chaos_ooc",
                description="out-of-core paging under spill read/write "
                            "faults on both the sync and async paths; "
                            "bit-identical to the baseline",
                overrides={
                    **_OOC_OVERRIDES,
                    "fault_spec": "spill.write:p=0.15;spill.read:p=0.1",
                    "fault_seed": 107,
                    **_CHAOS_RETRY,
                },
                bitwise=True,
                reference="baseline",
            ),
            LatticeConfig(
                name="ooc_cla_exec",
                description="out-of-core with compressed-space kernels "
                            "(scalar ops, aggregates, matmul on compressed "
                            "operands); tolerance-only because compressed "
                            "reductions legally reorder float arithmetic",
                overrides={**_OOC_OVERRIDES, "compressed_exec": True},
                rtol=1e-8,
                atol=1e-8,
            ),
            LatticeConfig(
                name="proc_spark",
                description="distributed RDD tasks executed in real worker "
                            "processes over the frame protocol; bit-identical "
                            "to the in-process spark twin",
                overrides={**_SPARK_OVERRIDES, "transport": "proc"},
                bitwise=True,
                reference="spark",
            ),
        ])

    #: Cheap sub-lattice for smoke runs (CI fuzz step, quick local checks).
    QUICK = (
        "baseline", "no_rewrites", "no_codegen", "spark", "lineage_reuse",
        "traced",
    )

    @classmethod
    def parse(cls, spec: str) -> "Lattice":
        """Parse a CLI ``--lattice`` value: ``all``, ``quick``, or a
        comma-separated list of config names."""
        full = cls.default()
        spec = spec.strip()
        if spec in ("", "all", "full"):
            return full
        if spec == "quick":
            return full.subset(cls.QUICK)
        return full.subset([part.strip() for part in spec.split(",") if part.strip()])
