"""``repro.qa`` — differential DML fuzzing across the optimizer/backend lattice.

The paper's core claim is that one declarative DML program yields the same
result under many physical plans: rewrites on/off, codegen on/off, local
vs. distributed vs. federated execution, lineage reuse, and (since PR 3)
seeded fault injection.  This package turns that claim into an executable
property:

* :class:`ProgramGenerator` emits whole, deterministic DML programs
  (control flow, user functions, indexing, builtins) from a per-seed RNG;
* :class:`Lattice` enumerates named configurations of the plan space;
* :class:`DifferentialRunner` executes each program under every
  configuration and compares all declared outputs against the reference
  configuration, bit-identically for chaos configs and within a small
  tolerance where plans legitimately reorder float arithmetic;
* :class:`Shrinker` delta-debugs a diverging program down to a minimal
  reproducer (statement-level, then expression-level);
* :mod:`repro.qa.corpus` stores shrunk reproducers under
  ``tests/qa/corpus/`` where ``tests/qa/test_corpus_replay.py`` replays
  them on every tier-1 run;
* the ``repro-fuzz`` CLI (:mod:`repro.qa.fuzz`) drives seeded campaigns.
"""

from repro.qa.corpus import CorpusEntry, load_corpus, load_entry, save_entry
from repro.qa.generator import GeneratedProgram, InputSpec, ProgramGenerator
from repro.qa.lattice import Lattice, LatticeConfig
from repro.qa.runner import DifferentialRunner, Divergence, FuzzStats, RunResult
from repro.qa.shrinker import Shrinker

__all__ = [
    "CorpusEntry",
    "DifferentialRunner",
    "Divergence",
    "FuzzStats",
    "GeneratedProgram",
    "InputSpec",
    "Lattice",
    "LatticeConfig",
    "ProgramGenerator",
    "RunResult",
    "Shrinker",
    "load_corpus",
    "load_entry",
    "save_entry",
]
