"""Delta-debugging shrinker for diverging DML programs.

Given a program that reproduces a divergence (as judged by a caller-
supplied ``check(source, outputs)`` predicate), the shrinker greedily
minimises it with three AST-level passes run to a fixed point:

1. **statement deletion** at every nesting level (program body, function
   bodies, ``if``/``while``/``for``/``parfor`` bodies) plus deletion of
   whole function definitions;
2. **body hoisting** — replacing a control-flow statement by its body,
   which strips loops and branches that are incidental to the bug;
3. **expression simplification** — replacing an assignment's right-hand
   side by one of its own sub-expressions or by a literal.

Outputs are pruned first (dropping compared outputs is the cheapest big
win).  Every candidate is round-tripped through the unparser
(:mod:`repro.lang.unparse`), so the result is always valid, replayable
DML source — which is what ends up in ``tests/qa/corpus/``.

The predicate must return ``True`` only when the candidate still
reproduces the *original* divergence (same config, same kind); the
driver in :mod:`repro.qa.fuzz` builds such a predicate from a
:class:`~repro.qa.runner.DifferentialRunner`.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.unparse import unparse

#: A body path: which statement list, and how to descend into it.
#: root = ("statements", None) | ("function", name); steps = [(index, field)].
_Root = Tuple[str, object]
_Steps = List[Tuple[int, str]]

_CONTROL_FIELDS = {
    ast.If: ("then_body", "else_body"),
    ast.While: ("body",),
    ast.For: ("body",),
    ast.ParFor: ("body",),
}


def _resolve(program: ast.Program, root: _Root, steps: _Steps) -> List[ast.Statement]:
    if root[0] == "statements":
        body = program.statements
    else:
        body = program.functions[root[1]].body
    for index, field in steps:
        body = getattr(body[index], field)
    return body


def _body_paths(program: ast.Program) -> List[Tuple[_Root, _Steps]]:
    paths: List[Tuple[_Root, _Steps]] = []

    def descend(root: _Root, steps: _Steps, body: Sequence[ast.Statement]) -> None:
        paths.append((root, list(steps)))
        for index, statement in enumerate(body):
            for fields in (_CONTROL_FIELDS.get(type(statement), ()),):
                for field in fields:
                    nested = getattr(statement, field, None)
                    if nested:
                        descend(root, steps + [(index, field)], nested)

    descend(("statements", None), [], program.statements)
    for name, function in program.functions.items():
        descend(("function", name), [], function.body)
    return paths


def _sub_expressions(expr: ast.Expr) -> List[ast.Expr]:
    """Direct sub-expressions a right-hand side could collapse to."""
    if isinstance(expr, ast.BinaryExpr):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryExpr):
        return [expr.operand]
    if isinstance(expr, ast.Call):
        return list(expr.args) + list(expr.named_args.values())
    if isinstance(expr, ast.IndexExpr):
        return [expr.target]
    return []


class Shrinker:
    """Greedy fixed-point minimiser over (source, outputs) candidates."""

    def __init__(
        self,
        check: Callable[[str, Sequence[Tuple[str, str]]], bool],
        max_checks: int = 500,
    ):
        self._check = check
        self.max_checks = max_checks
        self.checks_spent = 0

    # --- public ------------------------------------------------------------

    def shrink(
        self,
        source: str,
        outputs: Sequence[Tuple[str, str]],
    ) -> Tuple[str, List[Tuple[str, str]]]:
        """The smallest (source, outputs) found that still reproduces."""
        program = parse(source)
        outputs = list(outputs)
        outputs = self._prune_outputs(program, outputs)
        improved = True
        while improved and self._budget_left():
            improved = False
            for candidates in (
                self._deletions, self._hoists, self._simplifications
            ):
                accepted = self._first_improvement(candidates, program, outputs)
                if accepted is not None:
                    program = accepted
                    improved = True
                    break  # re-enumerate edits against the smaller program
        outputs = self._prune_outputs(program, outputs)
        return unparse(program), outputs

    # --- plumbing ----------------------------------------------------------

    def _budget_left(self) -> bool:
        return self.checks_spent < self.max_checks

    def _try(self, source: str, outputs: Sequence[Tuple[str, str]]) -> bool:
        if not self._budget_left():
            return False
        self.checks_spent += 1
        try:
            return bool(self._check(source, outputs))
        except Exception:  # noqa: BLE001 - a crashing candidate is a "no"
            return False

    def _first_improvement(self, candidates, program, outputs):
        for candidate in candidates(program):
            if not self._budget_left():
                return None
            try:
                source = unparse(candidate)
            except (TypeError, ValueError):
                continue
            if self._try(source, outputs):
                return candidate
        return None

    def _prune_outputs(self, program, outputs):
        source = unparse(program)
        index = len(outputs) - 1
        while index >= 0 and len(outputs) > 1 and self._budget_left():
            trial = outputs[:index] + outputs[index + 1:]
            if self._try(source, trial):
                outputs = trial
            index -= 1
        return outputs

    # --- candidate generators ----------------------------------------------

    def _deletions(self, program: ast.Program) -> Iterator[ast.Program]:
        for root, steps in _body_paths(program):
            body = _resolve(program, root, steps)
            for index in range(len(body) - 1, -1, -1):
                candidate = copy.deepcopy(program)
                del _resolve(candidate, root, steps)[index]
                yield candidate
        for name in list(program.functions):
            candidate = copy.deepcopy(program)
            del candidate.functions[name]
            yield candidate

    def _hoists(self, program: ast.Program) -> Iterator[ast.Program]:
        for root, steps in _body_paths(program):
            body = _resolve(program, root, steps)
            for index, statement in enumerate(body):
                fields = _CONTROL_FIELDS.get(type(statement))
                if not fields:
                    continue
                candidate = copy.deepcopy(program)
                target = _resolve(candidate, root, steps)
                hoisted: List[ast.Statement] = []
                for field in fields:
                    hoisted.extend(getattr(target[index], field, None) or [])
                target[index:index + 1] = hoisted
                yield candidate

    def _simplifications(self, program: ast.Program) -> Iterator[ast.Program]:
        literals = (
            ast.FloatLiteral(value=1.0),
            ast.FloatLiteral(value=0.0),
        )
        for root, steps in _body_paths(program):
            body = _resolve(program, root, steps)
            for index, statement in enumerate(body):
                if not isinstance(statement, (ast.Assign, ast.IndexedAssign)):
                    continue
                replacements = _sub_expressions(statement.value) + list(literals)
                for replacement in replacements:
                    candidate = copy.deepcopy(program)
                    _resolve(candidate, root, steps)[index].value = (
                        copy.deepcopy(replacement)
                    )
                    yield candidate
